//! Living with disguises: schema evolution and guarded application writes
//! (the paper's §7 open problems, implemented).
//!
//! A forum applies a reversible scrub, then keeps evolving: the schema
//! gains a column, the application tries to edit disguised rows (and is
//! stopped), specs are revalidated after a rename, and the old disguise
//! still reveals cleanly against the evolved schema.
//!
//! Run with `cargo run --example app_evolution`.

use std::collections::HashMap;

use edna::core::spec::{DisguiseSpecBuilder, Generator, Modifier};
use edna::core::{Disguiser, Error};
use edna::relational::{Database, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
         disabled BOOL NOT NULL DEFAULT FALSE);
         CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
         body TEXT, FOREIGN KEY (user_id) REFERENCES users(id));",
    )?;
    db.execute("INSERT INTO users (name) VALUES ('bea'), ('mel')")?;
    db.execute("INSERT INTO posts (user_id, body) VALUES (1, 'original thoughts'), (2, 'hi')")?;

    let edna = Disguiser::new(db.clone());
    edna.register(
        DisguiseSpecBuilder::new("Scrub")
            .user_scoped()
            .modify("posts", Some("user_id = $UID"), "body", Modifier::Redact)
            .decorrelate("posts", Some("user_id = $UID"), "user_id", "users")
            .remove("users", Some("id = $UID"))
            .placeholder("users", "name", Generator::Random)
            .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
            .build()?,
    )?;

    // 1. Bea scrubs herself.
    let report = edna.apply("Scrub", Some(&Value::Int(1)))?;
    println!("scrubbed bea (application id {})", report.disguise_id);

    // 2. The application tries to bulk-edit posts; the disguised row is
    //    protected (§7: prohibit updates to disguised data).
    let err = edna
        .guarded_update("posts", None, &HashMap::new(), |schema, row| {
            let i = schema.require_column("body")?;
            row[i] = Value::Text("MODERATED".into());
            Ok(())
        })
        .unwrap_err();
    println!("bulk edit rejected: {err}");
    assert!(matches!(err, Error::DisguisedData { .. }));

    // Editing only mel's (undisguised) post is fine.
    let pred = edna::relational::parse_expr("user_id = 2")?;
    let n = edna.guarded_update("posts", Some(&pred), &HashMap::new(), |schema, row| {
        let i = schema.require_column("body")?;
        row[i] = Value::Text("hi (edited)".into());
        Ok(())
    })?;
    println!("guarded edit of undisguised rows succeeded ({n} row)");

    // 3. The schema evolves while the disguise is active.
    db.execute("ALTER TABLE users ADD COLUMN karma INT NOT NULL DEFAULT 10")?;
    db.execute("ALTER TABLE posts RENAME COLUMN body TO content")?;
    println!("schema evolved: users.karma added, posts.body renamed to posts.content");

    // 4. Revalidation flags the stale spec; the developer ships a new one.
    let failures = edna.revalidate();
    for (name, why) in &failures {
        println!("spec {name} is stale after evolution: {why}");
    }
    assert_eq!(failures.len(), 1);
    edna.register(
        DisguiseSpecBuilder::new("Scrub")
            .user_scoped()
            .modify("posts", Some("user_id = $UID"), "content", Modifier::Redact)
            .decorrelate("posts", Some("user_id = $UID"), "user_id", "users")
            .remove("users", Some("id = $UID"))
            .placeholder("users", "name", Generator::Random)
            .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
            .build()?,
    )?;
    println!(
        "updated Scrub registered; revalidation: {:?} failures",
        edna.revalidate().len()
    );

    // 5. Bea returns. Her reveal was recorded against the OLD schema; the
    //    tool adapts: the reinserted user row gets karma's default, and the
    //    recorded restore of the renamed body column is dropped (the
    //    current content column keeps its present value).
    let reveal = edna.reveal(report.disguise_id)?;
    println!(
        "revealed with schema adaptation: {} row(s) adapted, {} restored, {} skipped",
        reveal.rows_schema_adapted, reveal.rows_restored, reveal.skipped_missing
    );
    let bea = db.execute("SELECT name, karma FROM users WHERE id = 1")?;
    println!(
        "bea is back: name = {}, karma = {}",
        bea.rows[0][0], bea.rows[0][1]
    );
    assert_eq!(bea.rows[0][1], Value::Int(10));
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM posts WHERE user_id = 1")?
            .scalar()?,
        &Value::Int(1)
    );
    println!("her post is re-attributed to her under the evolved schema");
    Ok(())
}
