//! Expiration and data decay (paper §2) driven by the policy scheduler.
//!
//! A forum ages: inactive users are automatically scrubbed (reversibly, so
//! they can return), and old comments gradually lose fidelity — first
//! coarsened timestamps, then truncated bodies — as the logical clock
//! advances.
//!
//! Run with `cargo run --example data_decay`.

use edna::core::policy::{DecayPolicy, DecayStage, ExpirationPolicy, Policy, Scheduler};
use edna::core::spec::{DisguiseSpecBuilder, Generator, Modifier};
use edna::core::Disguiser;
use edna::relational::{Database, Value};

const DAY: i64 = 86_400;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
         email TEXT, last_login INT NOT NULL DEFAULT 0, disabled BOOL NOT NULL DEFAULT FALSE);
         CREATE TABLE comments (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
         body TEXT, created_at INT NOT NULL DEFAULT 0, \
         FOREIGN KEY (user_id) REFERENCES users(id));",
    )?;
    // Two users: one active, one who last logged in on day 1.
    db.execute("INSERT INTO users (name, email, last_login) VALUES ('bea', 'b@x', 86400)")?;
    db.execute("INSERT INTO users (name, email, last_login) VALUES ('mel', 'm@x', 8640000)")?;
    for day in [1i64, 30, 90] {
        db.execute(&format!(
            "INSERT INTO comments (user_id, body, created_at) VALUES \
             (1, 'a long and detailed comment from day {day}', {})",
            day * DAY
        ))?;
        db.execute(&format!(
            "INSERT INTO comments (user_id, body, created_at) VALUES \
             (2, 'another long and detailed comment from day {day}', {})",
            day * DAY
        ))?;
    }

    let edna = Disguiser::new(db.clone());
    // Expiration: scrub long-inactive users (reversible — they can return).
    edna.register(
        DisguiseSpecBuilder::new("ExpireInactive")
            .user_scoped()
            .decorrelate("comments", Some("user_id = $UID"), "user_id", "users")
            .placeholder("users", "name", Generator::Random)
            .placeholder("users", "email", Generator::Default(Value::Null))
            .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
            .remove("users", Some("id = $UID"))
            .build()?,
    )?;
    // Decay ladder: bucket timestamps after 30 days, truncate bodies after
    // 60 (predicates reference NOW(), so the window advances with time).
    edna.register(
        DisguiseSpecBuilder::new("CoarsenTimestamps")
            .irreversible()
            .modify(
                "comments",
                Some(&format!("created_at < NOW() - {}", 30 * DAY)),
                "created_at",
                Modifier::Bucket(7 * DAY),
            )
            .build()?,
    )?;
    edna.register(
        DisguiseSpecBuilder::new("TruncateOldBodies")
            .irreversible()
            .modify(
                "comments",
                Some(&format!("created_at < NOW() - {}", 60 * DAY)),
                "body",
                Modifier::Truncate(10),
            )
            .build()?,
    )?;

    let mut scheduler = Scheduler::new();
    scheduler.add(Policy::Expiration(ExpirationPolicy {
        name: "expire-inactive-users".to_string(),
        disguise: "ExpireInactive".to_string(),
        inactive_after: 180 * DAY,
        user_query: "SELECT id FROM users WHERE last_login < $CUTOFF AND disabled = FALSE"
            .to_string(),
        cadence: DAY,
    }));
    scheduler.add(Policy::Decay(DecayPolicy {
        name: "decay-old-comments".to_string(),
        stages: vec![
            DecayStage {
                disguise: "CoarsenTimestamps".to_string(),
            },
            DecayStage {
                disguise: "TruncateOldBodies".to_string(),
            },
        ],
        cadence: DAY,
    }));

    // Fast-forward the logical clock; the scheduler fires as time passes.
    for day in [100i64, 200, 400] {
        let now = day * DAY;
        let reports = scheduler.tick(&edna, now)?;
        println!("day {day}: {} disguise application(s)", reports.len());
        for r in &reports {
            println!(
                "  {} (user {:?}): removed {}, decorrelated {}, modified {}",
                r.name, r.user_id, r.rows_removed, r.rows_decorrelated, r.rows_modified
            );
        }
    }

    println!("\nfinal comments:");
    let rows = db.execute("SELECT id, user_id, body, created_at FROM comments ORDER BY id")?;
    for row in &rows.rows {
        println!(
            "  #{:<3} user {:<6} created_at {:<12} body: {}",
            row[0], row[1], row[3], row[2]
        );
    }
    // The inactive user (bea) was expired: nothing attributed to user 1.
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM comments WHERE user_id = 1")?
            .scalar()?,
        &Value::Int(0)
    );
    // Old bodies decayed to at most 10 characters.
    let old = db.execute(&format!(
        "SELECT body FROM comments WHERE created_at < {}",
        340 * DAY
    ))?;
    for row in &old.rows {
        let len = row[0].to_string().chars().count();
        assert!(len <= 10, "decayed body should be short, got {len}");
    }
    println!("\nexpiration and decay policies held.");
    Ok(())
}
