//! The paper's Figure 2, end to end: user scrubbing in HotCRP.
//!
//! Bea deletes her account; her reviews are decorrelated onto anonymous
//! placeholder users ("Axolotl", "Fossa", ...) while referential integrity
//! holds — then the disguise is revealed and the original state returns.
//! Also demonstrates the §6 composition experiment at a small scale.
//!
//! Run with `cargo run --example hotcrp_scrub`.

use edna::apps::hotcrp::{self, generate::HotCrpConfig, workload};
use edna::core::{ApplyOptions, Disguiser};
use edna::relational::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = hotcrp::create_db()?;
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::small())?;
    let edna = Disguiser::new(db.clone());
    hotcrp::register_disguises(&edna)?;

    let bea = inst.pc_contact_ids[0];
    println!("== DISGUISE (Figure 2) ==");
    let before = db.execute(&format!(
        "SELECT r.reviewId, c.contactId, c.firstName, c.email FROM Review r \
         INNER JOIN ContactInfo c ON c.contactId = r.contactId \
         WHERE r.contactId = {bea} ORDER BY r.reviewId LIMIT 3"
    ))?;
    println!("Bea's reviews before scrubbing:");
    for row in &before.rows {
        println!(
            "  reviewId: {:<4} contactId: {:<4} name: {:<10} email: {}",
            row[0], row[1], row[2], row[3]
        );
    }

    let report = edna.apply("HotCRP-GDPR+", Some(&Value::Int(bea)))?;
    println!(
        "\napplied HotCRP-GDPR+ for contact {bea}: {} removed, {} decorrelated, \
         {} placeholders, {} statements",
        report.rows_removed,
        report.rows_decorrelated,
        report.placeholders_created,
        report.stats.statements
    );

    let review_ids: Vec<String> = before.rows.iter().map(|r| r[0].to_string()).collect();
    let after = db.execute(&format!(
        "SELECT r.reviewId, c.contactId, c.firstName, c.email, c.disabled \
         FROM Review r INNER JOIN ContactInfo c ON c.contactId = r.contactId \
         WHERE r.reviewId IN ({}) ORDER BY r.reviewId",
        review_ids.join(", ")
    ))?;
    println!("\nthe same reviews after scrubbing (distinct disabled placeholders):");
    for row in &after.rows {
        println!(
            "  reviewId: {:<4} contactId: {:<6} name: {:<10} email: {:<6} disabled: {}",
            row[0], row[1], row[2], row[3], row[4]
        );
    }

    // The application still works: paper list and review pages render.
    let papers = workload::paper_list(&db)?;
    println!(
        "\napplication still functions: {} papers listed",
        papers.rows.len()
    );

    println!("\n== REVEAL (Figure 2, right-to-left) ==");
    let reveal = edna.reveal(report.disguise_id)?;
    println!(
        "revealed: {} rows re-inserted, {} restored, {} placeholders removed; \
         re-applied: {:?}",
        reveal.rows_reinserted, reveal.rows_restored, reveal.placeholders_removed, reveal.reapplied
    );
    let back = db.execute(&format!(
        "SELECT COUNT(*) FROM Review WHERE contactId = {bea}"
    ))?;
    println!("Bea's attributed reviews after reveal: {}", back.scalar()?);

    println!("\n== COMPOSITION (§6, small scale) ==");
    let anon = edna.apply("HotCRP-ConfAnon", None)?;
    println!(
        "ConfAnon: {} decorrelated, {} modified, {} statements",
        anon.rows_decorrelated, anon.rows_modified, anon.stats.statements
    );
    let target = inst.pc_contact_ids[1];
    let naive = ApplyOptions {
        compose: true,
        optimize: false,
        use_transaction: true,
        ..ApplyOptions::default()
    };
    let report = edna.apply_with_options("HotCRP-GDPR+", Some(&Value::Int(target)), naive)?;
    println!(
        "GDPR+ after ConfAnon (naive): {} recorrelated, {} redone, {} statements",
        report.rows_recorrelated, report.rows_redone, report.stats.statements
    );
    Ok(())
}
