//! Quickstart: define a schema, write a disguise in the text DSL (the
//! paper's Figure 3 format), apply it, inspect the result, and reverse it.
//!
//! Run with `cargo run --example quickstart`.

use edna::core::Disguiser;
use edna::relational::{Database, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An application database: users and their posts.
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
         email TEXT, disabled BOOL NOT NULL DEFAULT FALSE);
         CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
         body TEXT, FOREIGN KEY (user_id) REFERENCES users(id));",
    )?;
    db.execute("INSERT INTO users (name, email) VALUES ('Bea', 'bea@uni.edu')")?;
    db.execute("INSERT INTO users (name, email) VALUES ('Mel', 'mel@uni.edu')")?;
    db.execute(
        "INSERT INTO posts (user_id, body) VALUES \
         (1, 'privacy heroes need data disguises'), \
         (1, 'vaults hold reveal functions'), \
         (2, 'hello world')",
    )?;

    // 2. The disguising tool, with a disguise spec in the Figure 3 DSL:
    //    delete the account, decorrelate the posts onto placeholders.
    let edna = Disguiser::new(db.clone());
    edna.register_dsl(
        r#"
disguise_name: "AccountDeletion"
user_to_disguise: $UID
tables: {
  users: {
    generate_placeholder: [
      (name, Random),
      (email, Default(NULL)),
      (disabled, Default(TRUE)),
    ],
  },
  posts: {
    transformations: [
      Decorrelate(pred: "user_id = $UID", foreign_key: (user_id, users)),
    ],
  },
  users: {
    transformations: [ Remove(pred: "id = $UID") ],
  },
}
assertions: [
  ("user owns no posts", posts, "user_id = $UID"),
]
"#,
    )?;

    // 3. Bea (user 1) deletes her account.
    let report = edna.apply("AccountDeletion", Some(&Value::Int(1)))?;
    println!(
        "applied {} (id {}): {} removed, {} decorrelated, {} placeholders",
        report.name,
        report.disguise_id,
        report.rows_removed,
        report.rows_decorrelated,
        report.placeholders_created
    );

    // Her posts survive, attributed to distinct disabled placeholders.
    let posts = db.execute(
        "SELECT p.body, u.name, u.disabled FROM posts p \
         INNER JOIN users u ON u.id = p.user_id ORDER BY p.id",
    )?;
    println!("\nposts after disguising:");
    for row in &posts.rows {
        println!("  {:<40} by {:<10} (disabled: {})", row[0], row[1], row[2]);
    }
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM posts WHERE user_id = 1")?
            .scalar()?,
        &Value::Int(0)
    );

    // 4. Bea changes her mind: reverse the disguise via the vault.
    let reveal = edna.reveal(report.disguise_id)?;
    println!(
        "\nrevealed: {} rows re-inserted, {} columns restored, {} placeholders removed",
        reveal.rows_reinserted, reveal.rows_restored, reveal.placeholders_removed
    );
    let bea = db.execute("SELECT name FROM users WHERE id = 1")?;
    println!("user 1 is back: {}", bea.rows[0][0]);
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM posts WHERE user_id = 1")?
            .scalar()?,
        &Value::Int(2)
    );
    Ok(())
}
