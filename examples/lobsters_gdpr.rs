//! Lobsters account deletion with encrypted, escrowed per-user vaults.
//!
//! Demonstrates the §4.2 vault machinery: the user-invoked GDPR disguise
//! writes its reveal functions to an encrypted per-user vault whose key is
//! 2-of-3 secret-shared among user, application, and a trusted third party
//! (footnote 1) — then the user returns and the disguise is reversed.
//!
//! Run with `cargo run --example lobsters_gdpr`.

use edna::apps::lobsters::{self, generate::LobstersConfig};
use edna::core::Disguiser;
use edna::relational::Value;
use edna::vault::{MemoryStore, TieredVault, Vault, VaultTier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = lobsters::create_db()?;
    let inst = lobsters::generate::generate(&db, &LobstersConfig::small())?;

    // Tier 1: global vault next to the app. Tier 2: encrypted per-user
    // vaults with threshold key escrow.
    let vaults = TieredVault::new(
        Vault::plain(MemoryStore::new()),
        Vault::encrypted(MemoryStore::new(), 42),
    );
    let edna = Disguiser::with_vaults(db.clone(), vaults);
    lobsters::register_disguises(&edna)?;

    let user = inst.user_ids[0];
    let username = db
        .execute(&format!("SELECT username FROM users WHERE id = {user}"))?
        .rows[0][0]
        .to_string();
    println!("user {user} ({username}) invokes Lobsters-GDPR");
    let report = edna.apply("Lobsters-GDPR", Some(&Value::Int(user)))?;
    println!(
        "  removed: {}, decorrelated: {}, modified: {}, placeholders: {}",
        report.rows_removed,
        report.rows_decorrelated,
        report.rows_modified,
        report.placeholders_created
    );

    // The reveal functions sit encrypted in the per-user tier.
    let tier = edna.vaults().tier(VaultTier::PerUser);
    println!(
        "  per-user vault: {} entr{} (encrypted: {})",
        tier.entry_count()?,
        if tier.entry_count()? == 1 { "y" } else { "ies" },
        tier.is_encrypted()
    );

    // The user takes their escrow share with them when they leave.
    let share = tier.user_escrow_share(&Value::Int(user))?;
    println!(
        "  user holds escrow share x={} ({} bytes); app + third party hold the others",
        share.x,
        share.data.len()
    );
    // If the user loses their share, app + third party can jointly
    // reconstruct the vault key (with the user's authorization).
    let _recovered = tier.recover_key_via_escrow(&Value::Int(user))?;
    println!("  2-of-3 escrow recovery works (app + third-party shares)");

    // Site keeps working: stories and comments survive, attributed to
    // placeholders; the user's comments read \"[deleted]\".
    let deleted = db
        .execute("SELECT COUNT(*) FROM comments WHERE comment = '[deleted]'")?
        .scalar()?
        .as_int()?;
    println!("  comments now reading \"[deleted]\": {deleted}");

    // The user returns.
    let reveal = edna.reveal(report.disguise_id)?;
    println!(
        "user returns: {} rows re-inserted, {} restored, {} placeholders removed",
        reveal.rows_reinserted, reveal.rows_restored, reveal.placeholders_removed
    );
    let back = db
        .execute(&format!("SELECT username FROM users WHERE id = {user}"))?
        .rows[0][0]
        .to_string();
    println!("welcome back, {back}");
    assert_eq!(back, username);
    Ok(())
}
