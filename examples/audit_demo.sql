-- Minimal forum schema for the `edna audit` counterexample walkthrough
-- (see README "edna audit"). Load with:
--
--   edna init <state> --schema examples/audit_demo.sql
--
-- then register the counterexample specs/policies and run
-- `edna audit <state>`.
CREATE TABLE users (
  id INT PRIMARY KEY AUTO_INCREMENT,
  name TEXT,
  last_login INT NOT NULL DEFAULT 0
);

CREATE TABLE comments (
  id INT PRIMARY KEY AUTO_INCREMENT,
  user_id INT NOT NULL,
  body TEXT,
  created_at INT NOT NULL DEFAULT 0,
  FOREIGN KEY (user_id) REFERENCES users(id)
);

INSERT INTO users (name, last_login) VALUES ('bea', 100), ('mel', 9000);
INSERT INTO comments (user_id, body, created_at) VALUES
  (1, 'first!', 120),
  (1, 'me again', 150),
  (2, 'hello', 9100);
