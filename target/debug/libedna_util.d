/root/repo/target/debug/libedna_util.rlib: /root/repo/crates/util/src/buf.rs /root/repo/crates/util/src/lib.rs /root/repo/crates/util/src/rng.rs /root/repo/crates/util/src/sha256.rs
