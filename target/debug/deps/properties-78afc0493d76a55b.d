/root/repo/target/debug/deps/properties-78afc0493d76a55b.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-78afc0493d76a55b.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
