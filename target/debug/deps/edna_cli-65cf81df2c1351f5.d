/root/repo/target/debug/deps/edna_cli-65cf81df2c1351f5.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedna_cli-65cf81df2c1351f5.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
