/root/repo/target/debug/deps/fig4_spec_complexity-a027ced7277e0672.d: crates/bench/src/bin/fig4_spec_complexity.rs

/root/repo/target/debug/deps/fig4_spec_complexity-a027ced7277e0672: crates/bench/src/bin/fig4_spec_complexity.rs

crates/bench/src/bin/fig4_spec_complexity.rs:
