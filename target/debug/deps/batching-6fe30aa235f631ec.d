/root/repo/target/debug/deps/batching-6fe30aa235f631ec.d: crates/bench/benches/batching.rs Cargo.toml

/root/repo/target/debug/deps/libbatching-6fe30aa235f631ec.rmeta: crates/bench/benches/batching.rs Cargo.toml

crates/bench/benches/batching.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
