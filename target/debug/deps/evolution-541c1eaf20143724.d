/root/repo/target/debug/deps/evolution-541c1eaf20143724.d: crates/core/tests/evolution.rs

/root/repo/target/debug/deps/evolution-541c1eaf20143724: crates/core/tests/evolution.rs

crates/core/tests/evolution.rs:
