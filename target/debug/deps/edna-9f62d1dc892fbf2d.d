/root/repo/target/debug/deps/edna-9f62d1dc892fbf2d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedna-9f62d1dc892fbf2d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
