/root/repo/target/debug/deps/edna_relational-20d0807d1a90fb3b.d: crates/relational/src/lib.rs crates/relational/src/access.rs crates/relational/src/database.rs crates/relational/src/error.rs crates/relational/src/exec.rs crates/relational/src/expr.rs crates/relational/src/lexer.rs crates/relational/src/parser.rs crates/relational/src/plan.rs crates/relational/src/schema.rs crates/relational/src/snapshot.rs crates/relational/src/stats.rs crates/relational/src/storage.rs crates/relational/src/txn.rs crates/relational/src/value.rs

/root/repo/target/debug/deps/edna_relational-20d0807d1a90fb3b: crates/relational/src/lib.rs crates/relational/src/access.rs crates/relational/src/database.rs crates/relational/src/error.rs crates/relational/src/exec.rs crates/relational/src/expr.rs crates/relational/src/lexer.rs crates/relational/src/parser.rs crates/relational/src/plan.rs crates/relational/src/schema.rs crates/relational/src/snapshot.rs crates/relational/src/stats.rs crates/relational/src/storage.rs crates/relational/src/txn.rs crates/relational/src/value.rs

crates/relational/src/lib.rs:
crates/relational/src/access.rs:
crates/relational/src/database.rs:
crates/relational/src/error.rs:
crates/relational/src/exec.rs:
crates/relational/src/expr.rs:
crates/relational/src/lexer.rs:
crates/relational/src/parser.rs:
crates/relational/src/plan.rs:
crates/relational/src/schema.rs:
crates/relational/src/snapshot.rs:
crates/relational/src/stats.rs:
crates/relational/src/storage.rs:
crates/relational/src/txn.rs:
crates/relational/src/value.rs:
