/root/repo/target/debug/deps/evolution-281dd6fbe103b35f.d: crates/core/tests/evolution.rs Cargo.toml

/root/repo/target/debug/deps/libevolution-281dd6fbe103b35f.rmeta: crates/core/tests/evolution.rs Cargo.toml

crates/core/tests/evolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
