/root/repo/target/debug/deps/fig4_spec_complexity-341efeb2362c4125.d: crates/bench/src/bin/fig4_spec_complexity.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_spec_complexity-341efeb2362c4125.rmeta: crates/bench/src/bin/fig4_spec_complexity.rs Cargo.toml

crates/bench/src/bin/fig4_spec_complexity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
