/root/repo/target/debug/deps/edna-5027cb3151662009.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/edna-5027cb3151662009: crates/cli/src/main.rs

crates/cli/src/main.rs:
