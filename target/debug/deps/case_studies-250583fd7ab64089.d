/root/repo/target/debug/deps/case_studies-250583fd7ab64089.d: crates/apps/tests/case_studies.rs

/root/repo/target/debug/deps/case_studies-250583fd7ab64089: crates/apps/tests/case_studies.rs

crates/apps/tests/case_studies.rs:
