/root/repo/target/debug/deps/edna_cli-4df7531493ba6819.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/edna_cli-4df7531493ba6819: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
