/root/repo/target/debug/deps/edna_util-456aba3a03714255.d: crates/util/src/lib.rs crates/util/src/buf.rs crates/util/src/rng.rs crates/util/src/sha256.rs

/root/repo/target/debug/deps/edna_util-456aba3a03714255: crates/util/src/lib.rs crates/util/src/buf.rs crates/util/src/rng.rs crates/util/src/sha256.rs

crates/util/src/lib.rs:
crates/util/src/buf.rs:
crates/util/src/rng.rs:
crates/util/src/sha256.rs:
