/root/repo/target/debug/deps/properties-3f00fe6b21f35afd.d: tests/properties.rs

/root/repo/target/debug/deps/properties-3f00fe6b21f35afd: tests/properties.rs

tests/properties.rs:
