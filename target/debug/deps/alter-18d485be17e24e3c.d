/root/repo/target/debug/deps/alter-18d485be17e24e3c.d: crates/relational/tests/alter.rs

/root/repo/target/debug/deps/alter-18d485be17e24e3c: crates/relational/tests/alter.rs

crates/relational/tests/alter.rs:
