/root/repo/target/debug/deps/edna_util-7c4e4838ee13beb4.d: crates/util/src/lib.rs crates/util/src/buf.rs crates/util/src/rng.rs crates/util/src/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libedna_util-7c4e4838ee13beb4.rmeta: crates/util/src/lib.rs crates/util/src/buf.rs crates/util/src/rng.rs crates/util/src/sha256.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/buf.rs:
crates/util/src/rng.rs:
crates/util/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
