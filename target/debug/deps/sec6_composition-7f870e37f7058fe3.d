/root/repo/target/debug/deps/sec6_composition-7f870e37f7058fe3.d: crates/bench/src/bin/sec6_composition.rs Cargo.toml

/root/repo/target/debug/deps/libsec6_composition-7f870e37f7058fe3.rmeta: crates/bench/src/bin/sec6_composition.rs Cargo.toml

crates/bench/src/bin/sec6_composition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
