/root/repo/target/debug/deps/edna-f8014942ca177f79.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedna-f8014942ca177f79.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
