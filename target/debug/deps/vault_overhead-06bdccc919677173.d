/root/repo/target/debug/deps/vault_overhead-06bdccc919677173.d: crates/bench/src/bin/vault_overhead.rs

/root/repo/target/debug/deps/vault_overhead-06bdccc919677173: crates/bench/src/bin/vault_overhead.rs

crates/bench/src/bin/vault_overhead.rs:
