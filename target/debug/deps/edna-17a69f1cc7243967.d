/root/repo/target/debug/deps/edna-17a69f1cc7243967.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libedna-17a69f1cc7243967.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
