/root/repo/target/debug/deps/composition-7f20f33aab2d676b.d: crates/bench/benches/composition.rs Cargo.toml

/root/repo/target/debug/deps/libcomposition-7f20f33aab2d676b.rmeta: crates/bench/benches/composition.rs Cargo.toml

crates/bench/benches/composition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
