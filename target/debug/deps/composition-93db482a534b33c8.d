/root/repo/target/debug/deps/composition-93db482a534b33c8.d: crates/bench/benches/composition.rs

/root/repo/target/debug/deps/composition-93db482a534b33c8: crates/bench/benches/composition.rs

crates/bench/benches/composition.rs:
