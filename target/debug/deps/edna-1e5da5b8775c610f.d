/root/repo/target/debug/deps/edna-1e5da5b8775c610f.d: src/lib.rs

/root/repo/target/debug/deps/libedna-1e5da5b8775c610f.rlib: src/lib.rs

/root/repo/target/debug/deps/libedna-1e5da5b8775c610f.rmeta: src/lib.rs

src/lib.rs:
