/root/repo/target/debug/deps/edna_bench-e1218fb2686b6d74.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/edna_bench-e1218fb2686b6d74: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
