/root/repo/target/debug/deps/caching-580153c4013917ae.d: crates/relational/tests/caching.rs

/root/repo/target/debug/deps/caching-580153c4013917ae: crates/relational/tests/caching.rs

crates/relational/tests/caching.rs:
