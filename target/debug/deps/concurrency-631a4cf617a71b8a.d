/root/repo/target/debug/deps/concurrency-631a4cf617a71b8a.d: tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-631a4cf617a71b8a.rmeta: tests/concurrency.rs Cargo.toml

tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
