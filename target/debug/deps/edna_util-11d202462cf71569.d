/root/repo/target/debug/deps/edna_util-11d202462cf71569.d: crates/util/src/lib.rs crates/util/src/buf.rs crates/util/src/rng.rs crates/util/src/sha256.rs

/root/repo/target/debug/deps/libedna_util-11d202462cf71569.rlib: crates/util/src/lib.rs crates/util/src/buf.rs crates/util/src/rng.rs crates/util/src/sha256.rs

/root/repo/target/debug/deps/libedna_util-11d202462cf71569.rmeta: crates/util/src/lib.rs crates/util/src/buf.rs crates/util/src/rng.rs crates/util/src/sha256.rs

crates/util/src/lib.rs:
crates/util/src/buf.rs:
crates/util/src/rng.rs:
crates/util/src/sha256.rs:
