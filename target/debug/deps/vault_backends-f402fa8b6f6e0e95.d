/root/repo/target/debug/deps/vault_backends-f402fa8b6f6e0e95.d: crates/bench/benches/vault_backends.rs

/root/repo/target/debug/deps/vault_backends-f402fa8b6f6e0e95: crates/bench/benches/vault_backends.rs

crates/bench/benches/vault_backends.rs:
