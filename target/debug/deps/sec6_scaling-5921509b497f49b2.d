/root/repo/target/debug/deps/sec6_scaling-5921509b497f49b2.d: crates/bench/src/bin/sec6_scaling.rs

/root/repo/target/debug/deps/sec6_scaling-5921509b497f49b2: crates/bench/src/bin/sec6_scaling.rs

crates/bench/src/bin/sec6_scaling.rs:
