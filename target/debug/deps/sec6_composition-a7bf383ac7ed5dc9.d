/root/repo/target/debug/deps/sec6_composition-a7bf383ac7ed5dc9.d: crates/bench/src/bin/sec6_composition.rs

/root/repo/target/debug/deps/sec6_composition-a7bf383ac7ed5dc9: crates/bench/src/bin/sec6_composition.rs

crates/bench/src/bin/sec6_composition.rs:
