/root/repo/target/debug/deps/case_studies-9c7a241dd6713294.d: crates/apps/tests/case_studies.rs Cargo.toml

/root/repo/target/debug/deps/libcase_studies-9c7a241dd6713294.rmeta: crates/apps/tests/case_studies.rs Cargo.toml

crates/apps/tests/case_studies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
