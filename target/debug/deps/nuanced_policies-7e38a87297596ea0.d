/root/repo/target/debug/deps/nuanced_policies-7e38a87297596ea0.d: crates/apps/tests/nuanced_policies.rs

/root/repo/target/debug/deps/nuanced_policies-7e38a87297596ea0: crates/apps/tests/nuanced_policies.rs

crates/apps/tests/nuanced_policies.rs:
