/root/repo/target/debug/deps/sec6_scaling-1fd5f90c35703385.d: crates/bench/src/bin/sec6_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libsec6_scaling-1fd5f90c35703385.rmeta: crates/bench/src/bin/sec6_scaling.rs Cargo.toml

crates/bench/src/bin/sec6_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
