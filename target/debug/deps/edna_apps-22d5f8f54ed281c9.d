/root/repo/target/debug/deps/edna_apps-22d5f8f54ed281c9.d: crates/apps/src/lib.rs crates/apps/src/hotcrp/mod.rs crates/apps/src/hotcrp/generate.rs crates/apps/src/hotcrp/workload.rs crates/apps/src/lobsters/mod.rs crates/apps/src/lobsters/generate.rs crates/apps/src/loc.rs crates/apps/src/names.rs crates/apps/src/hotcrp/../../sql/hotcrp.sql crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr.edna crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr_plus.edna crates/apps/src/hotcrp/../../disguises/hotcrp_confanon.edna crates/apps/src/lobsters/../../sql/lobsters.sql crates/apps/src/lobsters/../../disguises/lobsters_gdpr.edna

/root/repo/target/debug/deps/libedna_apps-22d5f8f54ed281c9.rlib: crates/apps/src/lib.rs crates/apps/src/hotcrp/mod.rs crates/apps/src/hotcrp/generate.rs crates/apps/src/hotcrp/workload.rs crates/apps/src/lobsters/mod.rs crates/apps/src/lobsters/generate.rs crates/apps/src/loc.rs crates/apps/src/names.rs crates/apps/src/hotcrp/../../sql/hotcrp.sql crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr.edna crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr_plus.edna crates/apps/src/hotcrp/../../disguises/hotcrp_confanon.edna crates/apps/src/lobsters/../../sql/lobsters.sql crates/apps/src/lobsters/../../disguises/lobsters_gdpr.edna

/root/repo/target/debug/deps/libedna_apps-22d5f8f54ed281c9.rmeta: crates/apps/src/lib.rs crates/apps/src/hotcrp/mod.rs crates/apps/src/hotcrp/generate.rs crates/apps/src/hotcrp/workload.rs crates/apps/src/lobsters/mod.rs crates/apps/src/lobsters/generate.rs crates/apps/src/loc.rs crates/apps/src/names.rs crates/apps/src/hotcrp/../../sql/hotcrp.sql crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr.edna crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr_plus.edna crates/apps/src/hotcrp/../../disguises/hotcrp_confanon.edna crates/apps/src/lobsters/../../sql/lobsters.sql crates/apps/src/lobsters/../../disguises/lobsters_gdpr.edna

crates/apps/src/lib.rs:
crates/apps/src/hotcrp/mod.rs:
crates/apps/src/hotcrp/generate.rs:
crates/apps/src/hotcrp/workload.rs:
crates/apps/src/lobsters/mod.rs:
crates/apps/src/lobsters/generate.rs:
crates/apps/src/loc.rs:
crates/apps/src/names.rs:
crates/apps/src/hotcrp/../../sql/hotcrp.sql:
crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr.edna:
crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr_plus.edna:
crates/apps/src/hotcrp/../../disguises/hotcrp_confanon.edna:
crates/apps/src/lobsters/../../sql/lobsters.sql:
crates/apps/src/lobsters/../../disguises/lobsters_gdpr.edna:
