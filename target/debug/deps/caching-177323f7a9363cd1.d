/root/repo/target/debug/deps/caching-177323f7a9363cd1.d: crates/relational/tests/caching.rs Cargo.toml

/root/repo/target/debug/deps/libcaching-177323f7a9363cd1.rmeta: crates/relational/tests/caching.rs Cargo.toml

crates/relational/tests/caching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
