/root/repo/target/debug/deps/sec6_composition-dd8413345d7cf660.d: crates/bench/src/bin/sec6_composition.rs

/root/repo/target/debug/deps/sec6_composition-dd8413345d7cf660: crates/bench/src/bin/sec6_composition.rs

crates/bench/src/bin/sec6_composition.rs:
