/root/repo/target/debug/deps/vault_backends-79e99af37943a945.d: crates/bench/benches/vault_backends.rs Cargo.toml

/root/repo/target/debug/deps/libvault_backends-79e99af37943a945.rmeta: crates/bench/benches/vault_backends.rs Cargo.toml

crates/bench/benches/vault_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
