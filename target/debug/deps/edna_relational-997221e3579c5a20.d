/root/repo/target/debug/deps/edna_relational-997221e3579c5a20.d: crates/relational/src/lib.rs crates/relational/src/access.rs crates/relational/src/database.rs crates/relational/src/error.rs crates/relational/src/exec.rs crates/relational/src/expr.rs crates/relational/src/lexer.rs crates/relational/src/parser.rs crates/relational/src/plan.rs crates/relational/src/schema.rs crates/relational/src/snapshot.rs crates/relational/src/stats.rs crates/relational/src/storage.rs crates/relational/src/txn.rs crates/relational/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libedna_relational-997221e3579c5a20.rmeta: crates/relational/src/lib.rs crates/relational/src/access.rs crates/relational/src/database.rs crates/relational/src/error.rs crates/relational/src/exec.rs crates/relational/src/expr.rs crates/relational/src/lexer.rs crates/relational/src/parser.rs crates/relational/src/plan.rs crates/relational/src/schema.rs crates/relational/src/snapshot.rs crates/relational/src/stats.rs crates/relational/src/storage.rs crates/relational/src/txn.rs crates/relational/src/value.rs Cargo.toml

crates/relational/src/lib.rs:
crates/relational/src/access.rs:
crates/relational/src/database.rs:
crates/relational/src/error.rs:
crates/relational/src/exec.rs:
crates/relational/src/expr.rs:
crates/relational/src/lexer.rs:
crates/relational/src/parser.rs:
crates/relational/src/plan.rs:
crates/relational/src/schema.rs:
crates/relational/src/snapshot.rs:
crates/relational/src/stats.rs:
crates/relational/src/storage.rs:
crates/relational/src/txn.rs:
crates/relational/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
