/root/repo/target/debug/deps/edna-e16cd9290e16ab9c.d: src/lib.rs

/root/repo/target/debug/deps/edna-e16cd9290e16ab9c: src/lib.rs

src/lib.rs:
