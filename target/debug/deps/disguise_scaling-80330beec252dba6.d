/root/repo/target/debug/deps/disguise_scaling-80330beec252dba6.d: crates/bench/benches/disguise_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libdisguise_scaling-80330beec252dba6.rmeta: crates/bench/benches/disguise_scaling.rs Cargo.toml

crates/bench/benches/disguise_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
