/root/repo/target/debug/deps/nuanced_policies-eddb96ef8c37d002.d: crates/apps/tests/nuanced_policies.rs Cargo.toml

/root/repo/target/debug/deps/libnuanced_policies-eddb96ef8c37d002.rmeta: crates/apps/tests/nuanced_policies.rs Cargo.toml

crates/apps/tests/nuanced_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
