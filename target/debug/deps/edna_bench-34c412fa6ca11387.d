/root/repo/target/debug/deps/edna_bench-34c412fa6ca11387.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libedna_bench-34c412fa6ca11387.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
