/root/repo/target/debug/deps/disguise_scaling-c8388d17420a8d3b.d: crates/bench/benches/disguise_scaling.rs

/root/repo/target/debug/deps/disguise_scaling-c8388d17420a8d3b: crates/bench/benches/disguise_scaling.rs

crates/bench/benches/disguise_scaling.rs:
