/root/repo/target/debug/deps/batching-beab621e8b6aecdf.d: crates/bench/benches/batching.rs

/root/repo/target/debug/deps/batching-beab621e8b6aecdf: crates/bench/benches/batching.rs

crates/bench/benches/batching.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
