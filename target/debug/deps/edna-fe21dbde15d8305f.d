/root/repo/target/debug/deps/edna-fe21dbde15d8305f.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libedna-fe21dbde15d8305f.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
