/root/repo/target/debug/deps/edna-e76b8f00036891bb.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/edna-e76b8f00036891bb: crates/cli/src/main.rs

crates/cli/src/main.rs:
