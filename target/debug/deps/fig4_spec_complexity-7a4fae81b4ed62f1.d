/root/repo/target/debug/deps/fig4_spec_complexity-7a4fae81b4ed62f1.d: crates/bench/src/bin/fig4_spec_complexity.rs

/root/repo/target/debug/deps/fig4_spec_complexity-7a4fae81b4ed62f1: crates/bench/src/bin/fig4_spec_complexity.rs

crates/bench/src/bin/fig4_spec_complexity.rs:
