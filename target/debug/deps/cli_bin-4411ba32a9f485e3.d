/root/repo/target/debug/deps/cli_bin-4411ba32a9f485e3.d: crates/cli/tests/cli_bin.rs

/root/repo/target/debug/deps/cli_bin-4411ba32a9f485e3: crates/cli/tests/cli_bin.rs

crates/cli/tests/cli_bin.rs:

# env-dep:CARGO_BIN_EXE_edna=/root/repo/target/debug/edna
