/root/repo/target/debug/deps/edna_apps-b58023a56f34e832.d: crates/apps/src/lib.rs crates/apps/src/hotcrp/mod.rs crates/apps/src/hotcrp/generate.rs crates/apps/src/hotcrp/workload.rs crates/apps/src/lobsters/mod.rs crates/apps/src/lobsters/generate.rs crates/apps/src/loc.rs crates/apps/src/names.rs crates/apps/src/hotcrp/../../sql/hotcrp.sql crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr.edna crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr_plus.edna crates/apps/src/hotcrp/../../disguises/hotcrp_confanon.edna crates/apps/src/lobsters/../../sql/lobsters.sql crates/apps/src/lobsters/../../disguises/lobsters_gdpr.edna Cargo.toml

/root/repo/target/debug/deps/libedna_apps-b58023a56f34e832.rmeta: crates/apps/src/lib.rs crates/apps/src/hotcrp/mod.rs crates/apps/src/hotcrp/generate.rs crates/apps/src/hotcrp/workload.rs crates/apps/src/lobsters/mod.rs crates/apps/src/lobsters/generate.rs crates/apps/src/loc.rs crates/apps/src/names.rs crates/apps/src/hotcrp/../../sql/hotcrp.sql crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr.edna crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr_plus.edna crates/apps/src/hotcrp/../../disguises/hotcrp_confanon.edna crates/apps/src/lobsters/../../sql/lobsters.sql crates/apps/src/lobsters/../../disguises/lobsters_gdpr.edna Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/hotcrp/mod.rs:
crates/apps/src/hotcrp/generate.rs:
crates/apps/src/hotcrp/workload.rs:
crates/apps/src/lobsters/mod.rs:
crates/apps/src/lobsters/generate.rs:
crates/apps/src/loc.rs:
crates/apps/src/names.rs:
crates/apps/src/hotcrp/../../sql/hotcrp.sql:
crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr.edna:
crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr_plus.edna:
crates/apps/src/hotcrp/../../disguises/hotcrp_confanon.edna:
crates/apps/src/lobsters/../../sql/lobsters.sql:
crates/apps/src/lobsters/../../disguises/lobsters_gdpr.edna:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
