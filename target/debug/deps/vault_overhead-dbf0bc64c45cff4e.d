/root/repo/target/debug/deps/vault_overhead-dbf0bc64c45cff4e.d: crates/bench/src/bin/vault_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libvault_overhead-dbf0bc64c45cff4e.rmeta: crates/bench/src/bin/vault_overhead.rs Cargo.toml

crates/bench/src/bin/vault_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
