/root/repo/target/debug/deps/_probe_count-7e2151e895d095a8.d: tests/_probe_count.rs

/root/repo/target/debug/deps/_probe_count-7e2151e895d095a8: tests/_probe_count.rs

tests/_probe_count.rs:
