/root/repo/target/debug/deps/concurrency-5b8c0053f6b1be58.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-5b8c0053f6b1be58: tests/concurrency.rs

tests/concurrency.rs:
