/root/repo/target/debug/deps/fault_sweep-b729abddb16ce6c7.d: tests/fault_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfault_sweep-b729abddb16ce6c7.rmeta: tests/fault_sweep.rs Cargo.toml

tests/fault_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
