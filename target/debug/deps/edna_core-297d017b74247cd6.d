/root/repo/target/debug/deps/edna_core-297d017b74247cd6.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/history.rs crates/core/src/placeholder.rs crates/core/src/policy.rs crates/core/src/reveal.rs crates/core/src/spec/mod.rs crates/core/src/spec/model.rs crates/core/src/spec/parser.rs crates/core/src/spec/render.rs crates/core/src/spec/validate.rs Cargo.toml

/root/repo/target/debug/deps/libedna_core-297d017b74247cd6.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/history.rs crates/core/src/placeholder.rs crates/core/src/policy.rs crates/core/src/reveal.rs crates/core/src/spec/mod.rs crates/core/src/spec/model.rs crates/core/src/spec/parser.rs crates/core/src/spec/render.rs crates/core/src/spec/validate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/apply.rs:
crates/core/src/error.rs:
crates/core/src/guard.rs:
crates/core/src/history.rs:
crates/core/src/placeholder.rs:
crates/core/src/policy.rs:
crates/core/src/reveal.rs:
crates/core/src/spec/mod.rs:
crates/core/src/spec/model.rs:
crates/core/src/spec/parser.rs:
crates/core/src/spec/render.rs:
crates/core/src/spec/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
