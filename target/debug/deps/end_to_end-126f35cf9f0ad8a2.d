/root/repo/target/debug/deps/end_to_end-126f35cf9f0ad8a2.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-126f35cf9f0ad8a2: tests/end_to_end.rs

tests/end_to_end.rs:
