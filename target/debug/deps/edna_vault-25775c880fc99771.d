/root/repo/target/debug/deps/edna_vault-25775c880fc99771.d: crates/vault/src/lib.rs crates/vault/src/backend/mod.rs crates/vault/src/backend/fault.rs crates/vault/src/backend/file.rs crates/vault/src/backend/memory.rs crates/vault/src/backend/thirdparty.rs crates/vault/src/crypto/mod.rs crates/vault/src/crypto/chacha20.rs crates/vault/src/crypto/hmac.rs crates/vault/src/entry.rs crates/vault/src/error.rs crates/vault/src/journal.rs crates/vault/src/retry.rs crates/vault/src/serialize.rs crates/vault/src/shamir.rs crates/vault/src/tiered.rs crates/vault/src/vault.rs crates/vault/src/wal.rs

/root/repo/target/debug/deps/edna_vault-25775c880fc99771: crates/vault/src/lib.rs crates/vault/src/backend/mod.rs crates/vault/src/backend/fault.rs crates/vault/src/backend/file.rs crates/vault/src/backend/memory.rs crates/vault/src/backend/thirdparty.rs crates/vault/src/crypto/mod.rs crates/vault/src/crypto/chacha20.rs crates/vault/src/crypto/hmac.rs crates/vault/src/entry.rs crates/vault/src/error.rs crates/vault/src/journal.rs crates/vault/src/retry.rs crates/vault/src/serialize.rs crates/vault/src/shamir.rs crates/vault/src/tiered.rs crates/vault/src/vault.rs crates/vault/src/wal.rs

crates/vault/src/lib.rs:
crates/vault/src/backend/mod.rs:
crates/vault/src/backend/fault.rs:
crates/vault/src/backend/file.rs:
crates/vault/src/backend/memory.rs:
crates/vault/src/backend/thirdparty.rs:
crates/vault/src/crypto/mod.rs:
crates/vault/src/crypto/chacha20.rs:
crates/vault/src/crypto/hmac.rs:
crates/vault/src/entry.rs:
crates/vault/src/error.rs:
crates/vault/src/journal.rs:
crates/vault/src/retry.rs:
crates/vault/src/serialize.rs:
crates/vault/src/shamir.rs:
crates/vault/src/tiered.rs:
crates/vault/src/vault.rs:
crates/vault/src/wal.rs:
