/root/repo/target/debug/deps/edna_core-7562c8bfed3b5b92.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/history.rs crates/core/src/placeholder.rs crates/core/src/policy.rs crates/core/src/reveal.rs crates/core/src/spec/mod.rs crates/core/src/spec/model.rs crates/core/src/spec/parser.rs crates/core/src/spec/render.rs crates/core/src/spec/validate.rs crates/core/src/spec/../../../apps/disguises/hotcrp_gdpr.edna crates/core/src/spec/../../../apps/disguises/hotcrp_gdpr_plus.edna crates/core/src/spec/../../../apps/disguises/hotcrp_confanon.edna crates/core/src/spec/../../../apps/disguises/lobsters_gdpr.edna

/root/repo/target/debug/deps/edna_core-7562c8bfed3b5b92: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/history.rs crates/core/src/placeholder.rs crates/core/src/policy.rs crates/core/src/reveal.rs crates/core/src/spec/mod.rs crates/core/src/spec/model.rs crates/core/src/spec/parser.rs crates/core/src/spec/render.rs crates/core/src/spec/validate.rs crates/core/src/spec/../../../apps/disguises/hotcrp_gdpr.edna crates/core/src/spec/../../../apps/disguises/hotcrp_gdpr_plus.edna crates/core/src/spec/../../../apps/disguises/hotcrp_confanon.edna crates/core/src/spec/../../../apps/disguises/lobsters_gdpr.edna

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/apply.rs:
crates/core/src/error.rs:
crates/core/src/guard.rs:
crates/core/src/history.rs:
crates/core/src/placeholder.rs:
crates/core/src/policy.rs:
crates/core/src/reveal.rs:
crates/core/src/spec/mod.rs:
crates/core/src/spec/model.rs:
crates/core/src/spec/parser.rs:
crates/core/src/spec/render.rs:
crates/core/src/spec/validate.rs:
crates/core/src/spec/../../../apps/disguises/hotcrp_gdpr.edna:
crates/core/src/spec/../../../apps/disguises/hotcrp_gdpr_plus.edna:
crates/core/src/spec/../../../apps/disguises/hotcrp_confanon.edna:
crates/core/src/spec/../../../apps/disguises/lobsters_gdpr.edna:
