/root/repo/target/debug/deps/edna_core-ff749a7d85887d1f.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/history.rs crates/core/src/placeholder.rs crates/core/src/policy.rs crates/core/src/reveal.rs crates/core/src/spec/mod.rs crates/core/src/spec/model.rs crates/core/src/spec/parser.rs crates/core/src/spec/render.rs crates/core/src/spec/validate.rs

/root/repo/target/debug/deps/libedna_core-ff749a7d85887d1f.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/history.rs crates/core/src/placeholder.rs crates/core/src/policy.rs crates/core/src/reveal.rs crates/core/src/spec/mod.rs crates/core/src/spec/model.rs crates/core/src/spec/parser.rs crates/core/src/spec/render.rs crates/core/src/spec/validate.rs

/root/repo/target/debug/deps/libedna_core-ff749a7d85887d1f.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/history.rs crates/core/src/placeholder.rs crates/core/src/policy.rs crates/core/src/reveal.rs crates/core/src/spec/mod.rs crates/core/src/spec/model.rs crates/core/src/spec/parser.rs crates/core/src/spec/render.rs crates/core/src/spec/validate.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/apply.rs:
crates/core/src/error.rs:
crates/core/src/guard.rs:
crates/core/src/history.rs:
crates/core/src/placeholder.rs:
crates/core/src/policy.rs:
crates/core/src/reveal.rs:
crates/core/src/spec/mod.rs:
crates/core/src/spec/model.rs:
crates/core/src/spec/parser.rs:
crates/core/src/spec/render.rs:
crates/core/src/spec/validate.rs:
