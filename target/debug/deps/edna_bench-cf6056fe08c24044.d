/root/repo/target/debug/deps/edna_bench-cf6056fe08c24044.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libedna_bench-cf6056fe08c24044.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libedna_bench-cf6056fe08c24044.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
