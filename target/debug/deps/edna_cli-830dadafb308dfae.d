/root/repo/target/debug/deps/edna_cli-830dadafb308dfae.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libedna_cli-830dadafb308dfae.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libedna_cli-830dadafb308dfae.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
