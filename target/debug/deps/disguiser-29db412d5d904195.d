/root/repo/target/debug/deps/disguiser-29db412d5d904195.d: crates/core/tests/disguiser.rs

/root/repo/target/debug/deps/disguiser-29db412d5d904195: crates/core/tests/disguiser.rs

crates/core/tests/disguiser.rs:
