/root/repo/target/debug/deps/fault_sweep-95fa38879f4d48ec.d: tests/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-95fa38879f4d48ec: tests/fault_sweep.rs

tests/fault_sweep.rs:
