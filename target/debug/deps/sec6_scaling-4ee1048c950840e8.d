/root/repo/target/debug/deps/sec6_scaling-4ee1048c950840e8.d: crates/bench/src/bin/sec6_scaling.rs

/root/repo/target/debug/deps/sec6_scaling-4ee1048c950840e8: crates/bench/src/bin/sec6_scaling.rs

crates/bench/src/bin/sec6_scaling.rs:
