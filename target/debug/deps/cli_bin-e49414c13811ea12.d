/root/repo/target/debug/deps/cli_bin-e49414c13811ea12.d: crates/cli/tests/cli_bin.rs Cargo.toml

/root/repo/target/debug/deps/libcli_bin-e49414c13811ea12.rmeta: crates/cli/tests/cli_bin.rs Cargo.toml

crates/cli/tests/cli_bin.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_edna=placeholder:edna
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
