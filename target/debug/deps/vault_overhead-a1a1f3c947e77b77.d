/root/repo/target/debug/deps/vault_overhead-a1a1f3c947e77b77.d: crates/bench/src/bin/vault_overhead.rs

/root/repo/target/debug/deps/vault_overhead-a1a1f3c947e77b77: crates/bench/src/bin/vault_overhead.rs

crates/bench/src/bin/vault_overhead.rs:
