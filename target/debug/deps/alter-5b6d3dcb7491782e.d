/root/repo/target/debug/deps/alter-5b6d3dcb7491782e.d: crates/relational/tests/alter.rs Cargo.toml

/root/repo/target/debug/deps/libalter-5b6d3dcb7491782e.rmeta: crates/relational/tests/alter.rs Cargo.toml

crates/relational/tests/alter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
