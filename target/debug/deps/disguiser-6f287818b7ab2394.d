/root/repo/target/debug/deps/disguiser-6f287818b7ab2394.d: crates/core/tests/disguiser.rs Cargo.toml

/root/repo/target/debug/deps/libdisguiser-6f287818b7ab2394.rmeta: crates/core/tests/disguiser.rs Cargo.toml

crates/core/tests/disguiser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
