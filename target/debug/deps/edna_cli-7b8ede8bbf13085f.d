/root/repo/target/debug/deps/edna_cli-7b8ede8bbf13085f.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedna_cli-7b8ede8bbf13085f.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
