/root/repo/target/debug/examples/hotcrp_scrub-51c525a4db3106e3.d: examples/hotcrp_scrub.rs

/root/repo/target/debug/examples/hotcrp_scrub-51c525a4db3106e3: examples/hotcrp_scrub.rs

examples/hotcrp_scrub.rs:
