/root/repo/target/debug/examples/_probe_abl_batch-a48575f46737e25b.d: examples/_probe_abl_batch.rs

/root/repo/target/debug/examples/_probe_abl_batch-a48575f46737e25b: examples/_probe_abl_batch.rs

examples/_probe_abl_batch.rs:
