/root/repo/target/debug/examples/lobsters_gdpr-55cdd7429a79772a.d: examples/lobsters_gdpr.rs

/root/repo/target/debug/examples/lobsters_gdpr-55cdd7429a79772a: examples/lobsters_gdpr.rs

examples/lobsters_gdpr.rs:
