/root/repo/target/debug/examples/app_evolution-78bccde273216d6f.d: examples/app_evolution.rs

/root/repo/target/debug/examples/app_evolution-78bccde273216d6f: examples/app_evolution.rs

examples/app_evolution.rs:
