/root/repo/target/debug/examples/quickstart-d6eec824d1d7f018.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d6eec824d1d7f018: examples/quickstart.rs

examples/quickstart.rs:
