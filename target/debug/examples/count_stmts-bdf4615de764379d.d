/root/repo/target/debug/examples/count_stmts-bdf4615de764379d.d: examples/count_stmts.rs

/root/repo/target/debug/examples/count_stmts-bdf4615de764379d: examples/count_stmts.rs

examples/count_stmts.rs:
