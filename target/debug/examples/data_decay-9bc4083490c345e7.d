/root/repo/target/debug/examples/data_decay-9bc4083490c345e7.d: examples/data_decay.rs

/root/repo/target/debug/examples/data_decay-9bc4083490c345e7: examples/data_decay.rs

examples/data_decay.rs:
