/root/repo/target/debug/examples/hotcrp_scrub-e8b8d21c7da47f61.d: examples/hotcrp_scrub.rs Cargo.toml

/root/repo/target/debug/examples/libhotcrp_scrub-e8b8d21c7da47f61.rmeta: examples/hotcrp_scrub.rs Cargo.toml

examples/hotcrp_scrub.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
