/root/repo/target/debug/examples/lobsters_gdpr-05fdd565b7d214e0.d: examples/lobsters_gdpr.rs Cargo.toml

/root/repo/target/debug/examples/liblobsters_gdpr-05fdd565b7d214e0.rmeta: examples/lobsters_gdpr.rs Cargo.toml

examples/lobsters_gdpr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
