/root/repo/target/debug/examples/data_decay-f57ce3155df700c0.d: examples/data_decay.rs Cargo.toml

/root/repo/target/debug/examples/libdata_decay-f57ce3155df700c0.rmeta: examples/data_decay.rs Cargo.toml

examples/data_decay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
