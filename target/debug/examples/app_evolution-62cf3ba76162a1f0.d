/root/repo/target/debug/examples/app_evolution-62cf3ba76162a1f0.d: examples/app_evolution.rs Cargo.toml

/root/repo/target/debug/examples/libapp_evolution-62cf3ba76162a1f0.rmeta: examples/app_evolution.rs Cargo.toml

examples/app_evolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
