/root/repo/target/release/examples/_verify_scratch-5ff398a2b0b0b120.d: examples/_verify_scratch.rs

/root/repo/target/release/examples/_verify_scratch-5ff398a2b0b0b120: examples/_verify_scratch.rs

examples/_verify_scratch.rs:
