/root/repo/target/release/examples/_probe_abl_batch-caed7f6bf6931470.d: examples/_probe_abl_batch.rs

/root/repo/target/release/examples/_probe_abl_batch-caed7f6bf6931470: examples/_probe_abl_batch.rs

examples/_probe_abl_batch.rs:
