/root/repo/target/release/deps/fig4_spec_complexity-a8aa3f1560e71158.d: crates/bench/src/bin/fig4_spec_complexity.rs

/root/repo/target/release/deps/fig4_spec_complexity-a8aa3f1560e71158: crates/bench/src/bin/fig4_spec_complexity.rs

crates/bench/src/bin/fig4_spec_complexity.rs:
