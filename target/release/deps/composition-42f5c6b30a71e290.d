/root/repo/target/release/deps/composition-42f5c6b30a71e290.d: crates/bench/benches/composition.rs

/root/repo/target/release/deps/composition-42f5c6b30a71e290: crates/bench/benches/composition.rs

crates/bench/benches/composition.rs:
