/root/repo/target/release/deps/sec6_composition-6947c244797f309b.d: crates/bench/src/bin/sec6_composition.rs

/root/repo/target/release/deps/sec6_composition-6947c244797f309b: crates/bench/src/bin/sec6_composition.rs

crates/bench/src/bin/sec6_composition.rs:
