/root/repo/target/release/deps/edna_cli-64583919aac14613.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libedna_cli-64583919aac14613.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libedna_cli-64583919aac14613.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
