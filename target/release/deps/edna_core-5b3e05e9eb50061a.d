/root/repo/target/release/deps/edna_core-5b3e05e9eb50061a.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/history.rs crates/core/src/placeholder.rs crates/core/src/policy.rs crates/core/src/reveal.rs crates/core/src/spec/mod.rs crates/core/src/spec/model.rs crates/core/src/spec/parser.rs crates/core/src/spec/render.rs crates/core/src/spec/validate.rs

/root/repo/target/release/deps/libedna_core-5b3e05e9eb50061a.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/history.rs crates/core/src/placeholder.rs crates/core/src/policy.rs crates/core/src/reveal.rs crates/core/src/spec/mod.rs crates/core/src/spec/model.rs crates/core/src/spec/parser.rs crates/core/src/spec/render.rs crates/core/src/spec/validate.rs

/root/repo/target/release/deps/libedna_core-5b3e05e9eb50061a.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/error.rs crates/core/src/guard.rs crates/core/src/history.rs crates/core/src/placeholder.rs crates/core/src/policy.rs crates/core/src/reveal.rs crates/core/src/spec/mod.rs crates/core/src/spec/model.rs crates/core/src/spec/parser.rs crates/core/src/spec/render.rs crates/core/src/spec/validate.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/apply.rs:
crates/core/src/error.rs:
crates/core/src/guard.rs:
crates/core/src/history.rs:
crates/core/src/placeholder.rs:
crates/core/src/policy.rs:
crates/core/src/reveal.rs:
crates/core/src/spec/mod.rs:
crates/core/src/spec/model.rs:
crates/core/src/spec/parser.rs:
crates/core/src/spec/render.rs:
crates/core/src/spec/validate.rs:
