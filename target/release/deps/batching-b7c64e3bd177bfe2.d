/root/repo/target/release/deps/batching-b7c64e3bd177bfe2.d: crates/bench/benches/batching.rs

/root/repo/target/release/deps/batching-b7c64e3bd177bfe2: crates/bench/benches/batching.rs

crates/bench/benches/batching.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
