/root/repo/target/release/deps/edna_bench-de11dbc701551a70.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libedna_bench-de11dbc701551a70.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libedna_bench-de11dbc701551a70.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
