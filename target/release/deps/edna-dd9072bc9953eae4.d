/root/repo/target/release/deps/edna-dd9072bc9953eae4.d: crates/cli/src/main.rs

/root/repo/target/release/deps/edna-dd9072bc9953eae4: crates/cli/src/main.rs

crates/cli/src/main.rs:
