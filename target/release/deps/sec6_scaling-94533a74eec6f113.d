/root/repo/target/release/deps/sec6_scaling-94533a74eec6f113.d: crates/bench/src/bin/sec6_scaling.rs

/root/repo/target/release/deps/sec6_scaling-94533a74eec6f113: crates/bench/src/bin/sec6_scaling.rs

crates/bench/src/bin/sec6_scaling.rs:
