/root/repo/target/release/deps/vault_overhead-63eaa809f48f0538.d: crates/bench/src/bin/vault_overhead.rs

/root/repo/target/release/deps/vault_overhead-63eaa809f48f0538: crates/bench/src/bin/vault_overhead.rs

crates/bench/src/bin/vault_overhead.rs:
