/root/repo/target/release/deps/edna-a174678bbca1f168.d: src/lib.rs

/root/repo/target/release/deps/libedna-a174678bbca1f168.rlib: src/lib.rs

/root/repo/target/release/deps/libedna-a174678bbca1f168.rmeta: src/lib.rs

src/lib.rs:
