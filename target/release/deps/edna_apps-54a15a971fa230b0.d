/root/repo/target/release/deps/edna_apps-54a15a971fa230b0.d: crates/apps/src/lib.rs crates/apps/src/hotcrp/mod.rs crates/apps/src/hotcrp/generate.rs crates/apps/src/hotcrp/workload.rs crates/apps/src/lobsters/mod.rs crates/apps/src/lobsters/generate.rs crates/apps/src/loc.rs crates/apps/src/names.rs crates/apps/src/hotcrp/../../sql/hotcrp.sql crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr.edna crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr_plus.edna crates/apps/src/hotcrp/../../disguises/hotcrp_confanon.edna crates/apps/src/lobsters/../../sql/lobsters.sql crates/apps/src/lobsters/../../disguises/lobsters_gdpr.edna

/root/repo/target/release/deps/libedna_apps-54a15a971fa230b0.rlib: crates/apps/src/lib.rs crates/apps/src/hotcrp/mod.rs crates/apps/src/hotcrp/generate.rs crates/apps/src/hotcrp/workload.rs crates/apps/src/lobsters/mod.rs crates/apps/src/lobsters/generate.rs crates/apps/src/loc.rs crates/apps/src/names.rs crates/apps/src/hotcrp/../../sql/hotcrp.sql crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr.edna crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr_plus.edna crates/apps/src/hotcrp/../../disguises/hotcrp_confanon.edna crates/apps/src/lobsters/../../sql/lobsters.sql crates/apps/src/lobsters/../../disguises/lobsters_gdpr.edna

/root/repo/target/release/deps/libedna_apps-54a15a971fa230b0.rmeta: crates/apps/src/lib.rs crates/apps/src/hotcrp/mod.rs crates/apps/src/hotcrp/generate.rs crates/apps/src/hotcrp/workload.rs crates/apps/src/lobsters/mod.rs crates/apps/src/lobsters/generate.rs crates/apps/src/loc.rs crates/apps/src/names.rs crates/apps/src/hotcrp/../../sql/hotcrp.sql crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr.edna crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr_plus.edna crates/apps/src/hotcrp/../../disguises/hotcrp_confanon.edna crates/apps/src/lobsters/../../sql/lobsters.sql crates/apps/src/lobsters/../../disguises/lobsters_gdpr.edna

crates/apps/src/lib.rs:
crates/apps/src/hotcrp/mod.rs:
crates/apps/src/hotcrp/generate.rs:
crates/apps/src/hotcrp/workload.rs:
crates/apps/src/lobsters/mod.rs:
crates/apps/src/lobsters/generate.rs:
crates/apps/src/loc.rs:
crates/apps/src/names.rs:
crates/apps/src/hotcrp/../../sql/hotcrp.sql:
crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr.edna:
crates/apps/src/hotcrp/../../disguises/hotcrp_gdpr_plus.edna:
crates/apps/src/hotcrp/../../disguises/hotcrp_confanon.edna:
crates/apps/src/lobsters/../../sql/lobsters.sql:
crates/apps/src/lobsters/../../disguises/lobsters_gdpr.edna:
