/root/repo/target/release/deps/edna_util-d8faea59e8deae6b.d: crates/util/src/lib.rs crates/util/src/buf.rs crates/util/src/rng.rs crates/util/src/sha256.rs

/root/repo/target/release/deps/libedna_util-d8faea59e8deae6b.rlib: crates/util/src/lib.rs crates/util/src/buf.rs crates/util/src/rng.rs crates/util/src/sha256.rs

/root/repo/target/release/deps/libedna_util-d8faea59e8deae6b.rmeta: crates/util/src/lib.rs crates/util/src/buf.rs crates/util/src/rng.rs crates/util/src/sha256.rs

crates/util/src/lib.rs:
crates/util/src/buf.rs:
crates/util/src/rng.rs:
crates/util/src/sha256.rs:
