/root/repo/target/release/deps/edna_vault-1225f099820a5770.d: crates/vault/src/lib.rs crates/vault/src/backend/mod.rs crates/vault/src/backend/fault.rs crates/vault/src/backend/file.rs crates/vault/src/backend/memory.rs crates/vault/src/backend/thirdparty.rs crates/vault/src/crypto/mod.rs crates/vault/src/crypto/chacha20.rs crates/vault/src/crypto/hmac.rs crates/vault/src/entry.rs crates/vault/src/error.rs crates/vault/src/journal.rs crates/vault/src/retry.rs crates/vault/src/serialize.rs crates/vault/src/shamir.rs crates/vault/src/tiered.rs crates/vault/src/vault.rs crates/vault/src/wal.rs

/root/repo/target/release/deps/libedna_vault-1225f099820a5770.rlib: crates/vault/src/lib.rs crates/vault/src/backend/mod.rs crates/vault/src/backend/fault.rs crates/vault/src/backend/file.rs crates/vault/src/backend/memory.rs crates/vault/src/backend/thirdparty.rs crates/vault/src/crypto/mod.rs crates/vault/src/crypto/chacha20.rs crates/vault/src/crypto/hmac.rs crates/vault/src/entry.rs crates/vault/src/error.rs crates/vault/src/journal.rs crates/vault/src/retry.rs crates/vault/src/serialize.rs crates/vault/src/shamir.rs crates/vault/src/tiered.rs crates/vault/src/vault.rs crates/vault/src/wal.rs

/root/repo/target/release/deps/libedna_vault-1225f099820a5770.rmeta: crates/vault/src/lib.rs crates/vault/src/backend/mod.rs crates/vault/src/backend/fault.rs crates/vault/src/backend/file.rs crates/vault/src/backend/memory.rs crates/vault/src/backend/thirdparty.rs crates/vault/src/crypto/mod.rs crates/vault/src/crypto/chacha20.rs crates/vault/src/crypto/hmac.rs crates/vault/src/entry.rs crates/vault/src/error.rs crates/vault/src/journal.rs crates/vault/src/retry.rs crates/vault/src/serialize.rs crates/vault/src/shamir.rs crates/vault/src/tiered.rs crates/vault/src/vault.rs crates/vault/src/wal.rs

crates/vault/src/lib.rs:
crates/vault/src/backend/mod.rs:
crates/vault/src/backend/fault.rs:
crates/vault/src/backend/file.rs:
crates/vault/src/backend/memory.rs:
crates/vault/src/backend/thirdparty.rs:
crates/vault/src/crypto/mod.rs:
crates/vault/src/crypto/chacha20.rs:
crates/vault/src/crypto/hmac.rs:
crates/vault/src/entry.rs:
crates/vault/src/error.rs:
crates/vault/src/journal.rs:
crates/vault/src/retry.rs:
crates/vault/src/serialize.rs:
crates/vault/src/shamir.rs:
crates/vault/src/tiered.rs:
crates/vault/src/vault.rs:
crates/vault/src/wal.rs:
