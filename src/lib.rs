//! Edna: data disguising for relational web applications.
//!
//! This is the workspace facade crate: it re-exports the component crates
//! under short names and hosts the cross-crate integration tests and the
//! runnable examples. See `README.md` for a tour, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the paper-vs-measured
//! evaluation record.
//!
//! - [`core`] — the disguising tool (specs, apply, reveal, composition,
//!   assertions, policies, guards);
//! - [`relational`] — the in-process SQL engine substrate;
//! - [`vault`] — reveal-function storage, encryption, and key escrow;
//! - [`apps`] — the HotCRP and Lobsters case-study substrates.
//!
//! # Examples
//!
//! ```
//! use edna::core::Disguiser;
//! use edna::relational::{Database, Value};
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE users (id INT PRIMARY KEY, email TEXT)").unwrap();
//! db.execute("INSERT INTO users VALUES (19, 'bea@uni.edu')").unwrap();
//!
//! let edna = Disguiser::new(db.clone());
//! edna.register_dsl(r#"
//! disguise_name: "GDPR"
//! user_to_disguise: $UID
//! tables: {
//!   users: { transformations: [ Remove(pred: "id = $UID") ] },
//! }
//! "#).unwrap();
//!
//! let report = edna.apply("GDPR", Some(&Value::Int(19))).unwrap();
//! assert_eq!(db.row_count("users").unwrap(), 0);
//! edna.reveal(report.disguise_id).unwrap();
//! assert_eq!(db.row_count("users").unwrap(), 1);
//! ```

#![warn(missing_docs)]

pub use edna_apps as apps;
pub use edna_core as core;
pub use edna_relational as relational;
pub use edna_util as util;
pub use edna_vault as vault;
