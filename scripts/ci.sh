#!/usr/bin/env bash
# The repository's offline CI gate: formatting, lints, build, tests.
# Everything runs without network access (the workspace has no external
# dependencies), so this is exactly what a checkout needs to pass.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

echo "CI green."
