#!/usr/bin/env bash
# The repository's offline CI gate: formatting, lints, build, tests.
# Everything runs without network access (the workspace has no external
# dependencies), so this is exactly what a checkout needs to pass.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> edna check (static analysis over every bundled spec)"
CHECK_DIR=$(mktemp -d)
trap 'rm -rf "$CHECK_DIR"' EXIT
target/release/edna demo "$CHECK_DIR/hotcrp" hotcrp --scale 0.02
target/release/edna check "$CHECK_DIR/hotcrp" --all --deny-warnings
target/release/edna demo "$CHECK_DIR/lobsters" lobsters
target/release/edna check "$CHECK_DIR/lobsters" --all --deny-warnings
# The intentionally flawed example spec must be rejected.
if target/release/edna check "$CHECK_DIR/hotcrp" examples/flawed_scrub.edna; then
    echo "examples/flawed_scrub.edna unexpectedly passed edna check" >&2
    exit 1
fi
echo "edna check OK"

echo "==> edna audit (interleaving proofs over the demo workspaces)"
# The bundled demos must audit clean — reveal-reachability proven for
# every disguise pair, warnings denied.
target/release/edna audit "$CHECK_DIR/hotcrp" --deny-warnings
target/release/edna audit "$CHECK_DIR/lobsters" --deny-warnings
# Both counterexamples must be rejected with their documented codes.
target/release/edna init "$CHECK_DIR/trap"
target/release/edna load-sql "$CHECK_DIR/trap" examples/audit_demo.sql
target/release/edna register "$CHECK_DIR/trap" examples/vault_trap_keep.edna
target/release/edna register "$CHECK_DIR/trap" examples/vault_trap_purge.edna
if target/release/edna audit "$CHECK_DIR/trap" > "$CHECK_DIR/trap.out"; then
    echo "vault-trap counterexample unexpectedly passed edna audit" >&2
    exit 1
fi
grep -q 'error\[E050\]' "$CHECK_DIR/trap.out"
grep -q 'error\[E051\]' "$CHECK_DIR/trap.out"
target/release/edna init "$CHECK_DIR/decay"
target/release/edna load-sql "$CHECK_DIR/decay" examples/audit_demo.sql
target/release/edna register "$CHECK_DIR/decay" examples/endless_decay.edna
target/release/edna register "$CHECK_DIR/decay" examples/endless_decay_policy.edna
if target/release/edna audit "$CHECK_DIR/decay" > "$CHECK_DIR/decay.out"; then
    echo "endless-decay counterexample unexpectedly passed edna audit" >&2
    exit 1
fi
grep -q 'error\[E052\]' "$CHECK_DIR/decay.out"
# The JSON format is a valid document with the expected shape.
target/release/edna audit "$CHECK_DIR/trap" --format json \
    > "$CHECK_DIR/trap.json" || true
if command -v python3 >/dev/null 2>&1; then
    python3 - "$CHECK_DIR/trap.json" <<'EOF'
import json
import sys

d = json.load(open(sys.argv[1]))
assert d["tool"] == "edna audit", d
assert d["summary"]["errors"] >= 2, d
diags = d["reports"][0]["diagnostics"]
codes = {x["code"] for x in diags}
assert {"E050", "E051"} <= codes, codes
for x in diags:
    for key in ("severity", "code", "disguise", "table",
                "column", "context", "message", "help"):
        assert key in x, f"diagnostic missing {key!r}: {x}"
EOF
else
    grep -q '"code":"E051"' "$CHECK_DIR/trap.json"
fi
echo "edna audit OK"

echo "==> trace smoke (apply with --trace-out, stats sidecar, trace tree)"
target/release/edna apply "$CHECK_DIR/hotcrp" HotCRP-GDPR --user 1 \
    --trace-out "$CHECK_DIR/trace.jsonl"
if command -v python3 >/dev/null 2>&1; then
    # Every line must be valid JSON.
    python3 -c 'import json,sys
for line in open(sys.argv[1]):
    json.loads(line)' "$CHECK_DIR/trace.jsonl"
fi
for span in disguise_apply transform vault_write vault_put statement; do
    grep -q "\"label\":\"$span\"" "$CHECK_DIR/trace.jsonl" || {
        echo "trace.jsonl missing $span span" >&2
        exit 1
    }
done
target/release/edna trace "$CHECK_DIR/trace.jsonl" | grep -q "disguise_apply"
target/release/edna stats "$CHECK_DIR/hotcrp" | grep -q "edna_statements_total"
echo "trace smoke OK"

echo "==> crash-sweep (WAL kill sweep + recover --verify smoke)"
# The kill sweep crashes disguise application at every WAL frame in
# every crash style and asserts recovery lands on a consistent state;
# release mode so the sweep exercises the same codegen users run.
cargo test --release -p edna-relational --test durability --quiet
cargo test --release -p edna-core --test crash_recovery --quiet
cargo test --release -p edna-cli --test recovery --quiet
# A disguise was applied to the hotcrp demo above; recover must find a
# quiescent, structurally intact state.
target/release/edna recover "$CHECK_DIR/hotcrp" --verify | grep -q "integrity: ok"
echo "crash-sweep OK"

echo "==> serve soak (SIGKILL sweep over the network layer, 20 iterations)"
# Serve a workspace under concurrent mixed sql/apply/reveal traffic,
# SIGKILL the server at a random instant, then require
# `edna recover --verify` to pass and the state to re-serve cleanly.
# 20 iterations in CI; plain `cargo test` runs a fast 4-iteration smoke.
EDNA_SOAK_ITERS=20 cargo test --release -p edna-cli --test serve_soak --quiet
echo "serve soak OK"

echo "==> failover chaos (replication kill sweep, 6 iterations)"
# A primary with one synchronous standby takes mixed traffic and is
# SIGKILLed at a random instant; the standby is drained, promoted, and
# re-served. The gate asserts zero acknowledged loss in
# --sync-replicas 1 mode — every acked commit, vault entry, capability
# token, and idempotency-ledger row survives on the new primary —
# plus green `recover --verify` on both sides and stale-epoch fencing
# of the deposed primary. The hostile-replica suite rides along: torn,
# oversized, corrupt, and stale-epoch stream input must drop that
# follower without wedging group commit.
EDNA_CHAOS_ITERS=6 cargo test --release -p edna-cli --test failover --quiet
cargo test --release -p edna-server --test repl_hostile --quiet
echo "failover chaos OK"

echo "==> decay soak (SIGKILL sweep with ticking policies, 10 iterations)"
# Serve with the decay daemon ticking a registered policy every 50ms
# under mixed traffic, SIGKILL at a random instant, require
# `recover --verify` to pass, and — restart regression — require a
# re-serve NOT to re-fire policies whose last run is inside the cadence.
EDNA_SOAK_ITERS=10 cargo test --release -p edna-cli --test decay_soak --quiet
# The daemon's observability surface: the policy metrics must appear in
# the Prometheus exposition a served-then-drained workspace leaves in
# its stats sidecar.
DECAY_DIR="$CHECK_DIR/decay_metrics"
target/release/edna init "$DECAY_DIR"
target/release/edna sql "$DECAY_DIR" \
    "CREATE TABLE notes (id INT PRIMARY KEY AUTO_INCREMENT, body TEXT, created_at INT NOT NULL DEFAULT 0)"
target/release/edna sql "$DECAY_DIR" \
    "INSERT INTO notes (body, created_at) VALUES ('old-a', 0), ('old-b', 0)"
cat > "$CHECK_DIR/age_notes.edna" <<'EOF'
disguise_name: "AgeNotes"
reversible: false
tables: {
  notes: { transformations: [ Modify(pred: "created_at < 100", column: body, modifier: Truncate(1)) ] },
}
EOF
cat > "$CHECK_DIR/aging.edna" <<'EOF'
policy_name: "aging"
kind: decay
cadence: 1
stages: [ "AgeNotes" ]
EOF
target/release/edna register "$DECAY_DIR" "$CHECK_DIR/age_notes.edna"
target/release/edna register "$DECAY_DIR" "$CHECK_DIR/aging.edna"
target/release/edna serve "$DECAY_DIR" --policy-tick-ms 50 --checkpoint-secs 1 \
    > "$CHECK_DIR/decay_serve.out" &
SERVE_PID=$!
# The background checkpointer rewrites the Prometheus sidecar from the
# serving process's registry every second; once the daemon has ticked,
# the policy metrics (including the per-policy duration histogram) must
# appear in that exposition. Grep the sidecar while the server is alive:
# a later `edna` open rewrites it from a registry without them.
DECAY_SIDECAR="$DECAY_DIR.metrics"
METRICS_OK=0
for _ in $(seq 1 100); do
    if grep -q "edna_policy_runs_total" "$DECAY_SIDECAR" 2>/dev/null \
        && grep -q "edna_decay_rows_total" "$DECAY_SIDECAR" \
        && grep -q "edna_policy_tick_us_aging" "$DECAY_SIDECAR"; then
        METRICS_OK=1
        break
    fi
    sleep 0.1
done
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
if [ "$METRICS_OK" != 1 ]; then
    echo "policy metrics never appeared in $DECAY_SIDECAR" >&2
    cat "$DECAY_SIDECAR" 2>/dev/null >&2 || true
    exit 1
fi
target/release/edna recover "$DECAY_DIR" --verify | grep -q "integrity: ok"
echo "decay soak OK"

echo "==> bench smoke (ABL-BATCH at tiny scale)"
BATCHING_SCALE=0.02 BATCHING_USERS=2 BATCHING_SAMPLES=10 \
    cargo bench -p edna-bench --bench batching
if [ ! -s BENCH_batching.json ]; then
    echo "BENCH_batching.json missing or empty" >&2
    exit 1
fi
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool BENCH_batching.json >/dev/null
else
    grep -q '"parallel_beats_sequential"' BENCH_batching.json
fi
echo "BENCH_batching.json OK"

echo "==> write-scaling smoke (group-commit WAL + sharded apply_many)"
# Reduced sweep: two thread counts, a small cohort, and a 500us fsync
# floor so group-commit effects are visible on any host. The gate is
# shape + direction: concurrent committers must out-run a solo one.
WRITE_SCALING_THREADS=1,8 WRITE_SCALING_TXNS=60 WRITE_SCALING_USERS=60 \
WRITE_SCALING_SHARDS=8 WRITE_SCALING_FSYNC_FLOOR_US=500 \
    cargo bench -p edna-bench --bench write_scaling
if [ ! -s BENCH_write_scaling.json ]; then
    echo "BENCH_write_scaling.json missing or empty" >&2
    exit 1
fi
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json

d = json.load(open("BENCH_write_scaling.json"))
for key in ("threads", "host_parallelism", "fsync_floor_us",
            "commit_sweep", "apply_many"):
    assert key in d, f"BENCH_write_scaling.json missing {key!r}"
pts = d["commit_sweep"]
assert len(pts) >= 2, "commit sweep needs at least two thread counts"
for p in pts:
    for key in ("threads", "throughput_txn_per_s", "p50_us", "p99_us",
                "fsyncs_per_txn", "frames_per_fsync"):
        assert key in p, f"sweep point missing {key!r}"
lo, hi = pts[0], pts[-1]
assert hi["throughput_txn_per_s"] > lo["throughput_txn_per_s"], (
    f"group commit not scaling: {hi['threads']} threads at "
    f"{hi['throughput_txn_per_s']} txn/s <= {lo['threads']} thread(s) at "
    f"{lo['throughput_txn_per_s']} txn/s")
assert hi["fsyncs_per_txn"] < 1.0, "concurrent committers must share fsyncs"
assert d["apply_many"]["speedup"] > 1.0, "sharded apply_many slower than sequential"
print("write-scaling smoke: "
      f"{hi['throughput_txn_per_s']:.0f} txn/s at {hi['threads']} threads vs "
      f"{lo['throughput_txn_per_s']:.0f} at {lo['threads']}, "
      f"apply_many speedup {d['apply_many']['speedup']:.2f}x")
EOF
else
    grep -q '"commit_sweep"' BENCH_write_scaling.json
    grep -q '"apply_many"' BENCH_write_scaling.json
fi
echo "BENCH_write_scaling.json OK"

echo "CI green."
