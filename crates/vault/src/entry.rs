//! Vault entries and reveal operations.
//!
//! A reveal function (paper §4.2) is stored as a list of [`RevealOp`]s
//! computed from "the original and updated states of objects touched by a
//! reversible disguise" (paper §5). Applying the ops in order restores the
//! pre-disguise state; the disguising tool is responsible for re-applying
//! any disguises that happened in between (handled in `edna-core`).

use edna_util::buf::{Bytes, BytesMut};

use edna_relational::Value;

use crate::error::{Error, Result};
use crate::serialize::{
    read_opt_i64, read_row, read_string, read_value, write_opt_i64, write_row, write_string,
    write_value,
};

/// Format version byte leading every serialized payload.
const PAYLOAD_VERSION: u8 = 1;

/// One inverse operation recorded when a disguise transformed a row.
#[derive(Debug, Clone, PartialEq)]
pub enum RevealOp {
    /// The disguise removed a row; reveal re-inserts it. Column names are
    /// recorded alongside the values so the row can be adapted if the
    /// schema evolved in between (paper §7).
    ReinsertRow {
        /// Table the row belonged to.
        table: String,
        /// Column names at recording time, aligned with `row`.
        columns: Vec<String>,
        /// The original row values.
        row: Vec<Value>,
    },
    /// The disguise modified or decorrelated columns of a surviving row;
    /// reveal restores the listed columns, locating the row by primary key.
    RestoreColumns {
        /// Table of the affected row.
        table: String,
        /// Primary-key column used to relocate the row.
        pk_column: String,
        /// Primary-key value of the affected row.
        pk: Value,
        /// `(column, original value)` pairs to restore.
        columns: Vec<(String, Value)>,
    },
    /// The disguise created a placeholder row; reveal deletes it once no
    /// remaining rows reference it.
    RemovePlaceholder {
        /// Table the placeholder lives in.
        table: String,
        /// Primary-key column of that table.
        pk_column: String,
        /// Primary-key value of the placeholder row.
        pk: Value,
    },
}

impl RevealOp {
    /// The table this op touches.
    pub fn table(&self) -> &str {
        match self {
            RevealOp::ReinsertRow { table, .. }
            | RevealOp::RestoreColumns { table, .. }
            | RevealOp::RemovePlaceholder { table, .. } => table,
        }
    }
}

/// A fully decoded vault entry: the reveal function for one application of
/// one disguise to one user (or to the global scope).
#[derive(Debug, Clone, PartialEq)]
pub struct VaultEntry {
    /// Id of the disguise application (from the disguise history log).
    pub disguise_id: u64,
    /// Human-readable disguise name (e.g. `HotCRP-GDPR+`).
    pub disguise_name: String,
    /// The disguised user's id, or NULL for global (cross-user) disguises.
    pub user_id: Value,
    /// Inverse operations, in the order they should be applied.
    pub ops: Vec<RevealOp>,
    /// Logical timestamp of disguise application.
    pub created_at: i64,
    /// Optional expiry; past it the entry may be purged, making the
    /// disguise irreversible (paper §4.2).
    pub expires_at: Option<i64>,
}

/// Plaintext metadata stored alongside the (possibly encrypted) payload:
/// what a store needs to find, expire, and delete entries without
/// decrypting them.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryMeta {
    /// Id of the disguise application.
    pub disguise_id: u64,
    /// Disguise name.
    pub disguise_name: String,
    /// Creation timestamp.
    pub created_at: i64,
    /// Optional expiry timestamp.
    pub expires_at: Option<i64>,
}

/// A stored entry: plaintext metadata plus opaque payload bytes (the
/// serialized ops, sealed if the vault is encrypted).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEntry {
    /// Plaintext metadata.
    pub meta: EntryMeta,
    /// Opaque payload (serialized, possibly encrypted, ops + user id).
    pub payload: Vec<u8>,
}

impl VaultEntry {
    /// Splits this entry into plaintext metadata and a serialized payload.
    pub fn encode(&self) -> (EntryMeta, Vec<u8>) {
        let meta = EntryMeta {
            disguise_id: self.disguise_id,
            disguise_name: self.disguise_name.clone(),
            created_at: self.created_at,
            expires_at: self.expires_at,
        };
        let mut buf = BytesMut::new();
        buf.put_u8(PAYLOAD_VERSION);
        write_value(&mut buf, &self.user_id);
        buf.put_u32_le(self.ops.len() as u32);
        for op in &self.ops {
            match op {
                RevealOp::ReinsertRow {
                    table,
                    columns,
                    row,
                } => {
                    buf.put_u8(0);
                    write_string(&mut buf, table);
                    buf.put_u32_le(columns.len() as u32);
                    for c in columns {
                        write_string(&mut buf, c);
                    }
                    write_row(&mut buf, row);
                }
                RevealOp::RestoreColumns {
                    table,
                    pk_column,
                    pk,
                    columns,
                } => {
                    buf.put_u8(1);
                    write_string(&mut buf, table);
                    write_string(&mut buf, pk_column);
                    write_value(&mut buf, pk);
                    buf.put_u32_le(columns.len() as u32);
                    for (c, v) in columns {
                        write_string(&mut buf, c);
                        write_value(&mut buf, v);
                    }
                }
                RevealOp::RemovePlaceholder {
                    table,
                    pk_column,
                    pk,
                } => {
                    buf.put_u8(2);
                    write_string(&mut buf, table);
                    write_string(&mut buf, pk_column);
                    write_value(&mut buf, pk);
                }
            }
        }
        (meta, buf.to_vec())
    }

    /// Reassembles an entry from metadata and a decrypted payload.
    pub fn decode(meta: &EntryMeta, payload: &[u8]) -> Result<VaultEntry> {
        let mut buf = Bytes::copy_from_slice(payload);
        if buf.remaining() < 1 {
            return Err(Error::Codec("empty payload".to_string()));
        }
        let version = buf.get_u8();
        if version != PAYLOAD_VERSION {
            return Err(Error::Codec(format!(
                "unsupported payload version {version}"
            )));
        }
        let user_id = read_value(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(Error::Codec("truncated op count".to_string()));
        }
        let n = buf.get_u32_le() as usize;
        if n > buf.remaining() {
            return Err(Error::Codec("op count exceeds payload".to_string()));
        }
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            if buf.remaining() < 1 {
                return Err(Error::Codec("truncated op tag".to_string()));
            }
            let op = match buf.get_u8() {
                0 => {
                    let table = read_string(&mut buf)?;
                    if buf.remaining() < 4 {
                        return Err(Error::Codec("truncated column count".to_string()));
                    }
                    let n = buf.get_u32_le() as usize;
                    if n > buf.remaining() {
                        return Err(Error::Codec("column count exceeds payload".to_string()));
                    }
                    let mut columns = Vec::with_capacity(n);
                    for _ in 0..n {
                        columns.push(read_string(&mut buf)?);
                    }
                    RevealOp::ReinsertRow {
                        table,
                        columns,
                        row: read_row(&mut buf)?,
                    }
                }
                1 => {
                    let table = read_string(&mut buf)?;
                    let pk_column = read_string(&mut buf)?;
                    let pk = read_value(&mut buf)?;
                    if buf.remaining() < 4 {
                        return Err(Error::Codec("truncated column count".to_string()));
                    }
                    let k = buf.get_u32_le() as usize;
                    if k > buf.remaining() {
                        return Err(Error::Codec("column count exceeds payload".to_string()));
                    }
                    let mut columns = Vec::with_capacity(k);
                    for _ in 0..k {
                        let c = read_string(&mut buf)?;
                        let v = read_value(&mut buf)?;
                        columns.push((c, v));
                    }
                    RevealOp::RestoreColumns {
                        table,
                        pk_column,
                        pk,
                        columns,
                    }
                }
                2 => RevealOp::RemovePlaceholder {
                    table: read_string(&mut buf)?,
                    pk_column: read_string(&mut buf)?,
                    pk: read_value(&mut buf)?,
                },
                t => return Err(Error::Codec(format!("unknown op tag {t}"))),
            };
            ops.push(op);
        }
        Ok(VaultEntry {
            disguise_id: meta.disguise_id,
            disguise_name: meta.disguise_name.clone(),
            user_id,
            ops,
            created_at: meta.created_at,
            expires_at: meta.expires_at,
        })
    }
}

impl EntryMeta {
    /// Serializes the metadata (used by the file-backed store).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.disguise_id);
        write_string(&mut buf, &self.disguise_name);
        buf.put_i64_le(self.created_at);
        write_opt_i64(&mut buf, self.expires_at);
        buf.to_vec()
    }

    /// Deserializes metadata written by [`EntryMeta::encode`].
    pub fn decode(bytes: &mut Bytes) -> Result<EntryMeta> {
        if bytes.remaining() < 8 {
            return Err(Error::Codec("truncated meta".to_string()));
        }
        let disguise_id = bytes.get_u64_le();
        let disguise_name = read_string(bytes)?;
        if bytes.remaining() < 8 {
            return Err(Error::Codec("truncated meta timestamp".to_string()));
        }
        let created_at = bytes.get_i64_le();
        let expires_at = read_opt_i64(bytes)?;
        Ok(EntryMeta {
            disguise_id,
            disguise_name,
            created_at,
            expires_at,
        })
    }

    /// Whether the entry is expired at logical time `now`.
    pub fn is_expired(&self, now: i64) -> bool {
        self.expires_at.is_some_and(|e| e <= now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> VaultEntry {
        VaultEntry {
            disguise_id: 42,
            disguise_name: "HotCRP-GDPR+".to_string(),
            user_id: Value::Int(19),
            ops: vec![
                RevealOp::ReinsertRow {
                    table: "ContactInfo".to_string(),
                    columns: vec![
                        "contactId".to_string(),
                        "name".to_string(),
                        "email".to_string(),
                    ],
                    row: vec![Value::Int(19), Value::Text("Bea".into()), Value::Null],
                },
                RevealOp::RestoreColumns {
                    table: "Review".to_string(),
                    pk_column: "reviewId".to_string(),
                    pk: Value::Int(8),
                    columns: vec![("contactId".to_string(), Value::Int(19))],
                },
                RevealOp::RemovePlaceholder {
                    table: "ContactInfo".to_string(),
                    pk_column: "contactId".to_string(),
                    pk: Value::Int(295),
                },
            ],
            created_at: 1000,
            expires_at: Some(2000),
        }
    }

    #[test]
    fn entry_round_trip() {
        let e = sample_entry();
        let (meta, payload) = e.encode();
        let back = VaultEntry::decode(&meta, &payload).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn meta_round_trip() {
        let e = sample_entry();
        let (meta, _) = e.encode();
        let bytes = meta.encode();
        let mut buf = Bytes::from(bytes);
        assert_eq!(EntryMeta::decode(&mut buf).unwrap(), meta);
    }

    #[test]
    fn payload_truncation_rejected() {
        let (meta, payload) = sample_entry().encode();
        for cut in 0..payload.len() {
            assert!(
                VaultEntry::decode(&meta, &payload[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn version_mismatch_rejected() {
        let (meta, mut payload) = sample_entry().encode();
        payload[0] = 99;
        assert!(VaultEntry::decode(&meta, &payload).is_err());
    }

    #[test]
    fn expiry_check() {
        let meta = EntryMeta {
            disguise_id: 1,
            disguise_name: "d".to_string(),
            created_at: 0,
            expires_at: Some(100),
        };
        assert!(!meta.is_expired(99));
        assert!(meta.is_expired(100));
        let forever = EntryMeta {
            disguise_id: 1,
            disguise_name: "d".into(),
            created_at: 0,
            expires_at: None,
        };
        assert!(!forever.is_expired(i64::MAX));
    }
}
