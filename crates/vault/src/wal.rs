//! Checksummed record framing, shared with the relational WAL.
//!
//! The codec lives in [`edna_util::frame`] so the vault files, the
//! pending-write journal, and `edna-relational`'s write-ahead log all
//! speak the same `[len][body][sha256]` wire format; this module
//! re-exports it under the vault crate's historical path.

pub use edna_util::frame::{append_record, encode_record, scan_records, ScanOutcome};
