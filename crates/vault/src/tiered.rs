//! Multi-tier vault manager.
//!
//! Paper §4.2: "An alternative might be to provide multi-tier security:
//! the first tier stores reveal functions of non-GDPR disguises in a global
//! vault accessible to the disguising tool and application, while the
//! second tier stores reveal functions from user-invoked disguises in
//! external, per-user encrypted vaults."

use edna_relational::Value;

use crate::entry::VaultEntry;
use crate::error::Result;
use crate::vault::Vault;

/// Which tier an entry is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VaultTier {
    /// Tier 1: application-accessible global vault (non-GDPR,
    /// bulk/automatic disguises such as `ConfAnon` or decay).
    Global,
    /// Tier 2: external per-user vault (user-invoked disguises such as
    /// GDPR account deletion — compliance requires external storage).
    PerUser,
}

/// A two-tier vault: routes entries by [`VaultTier`] and reads across both.
pub struct TieredVault {
    global: Vault,
    per_user: Vault,
}

impl TieredVault {
    /// Builds a tiered vault from a tier-1 (global) and tier-2 (per-user)
    /// vault. The per-user tier should normally be encrypted.
    pub fn new(global: Vault, per_user: Vault) -> TieredVault {
        TieredVault { global, per_user }
    }

    /// Stores `entry` in the given tier.
    pub fn put(&self, tier: VaultTier, entry: &VaultEntry) -> Result<()> {
        self.tier(tier).put(entry)
    }

    /// Stores a batch of entries in the given tier with one backend round
    /// trip (see [`Vault::put_all`]). Not atomic on error.
    pub fn put_all(&self, tier: VaultTier, entries: &[VaultEntry]) -> Result<()> {
        self.tier(tier).put_all(entries)
    }

    /// Entries for `user_id` across both tiers, oldest first.
    pub fn entries_for(&self, user_id: &Value) -> Result<Vec<VaultEntry>> {
        let mut out = self.global.entries_for(user_id)?;
        out.extend(self.per_user.entries_for(user_id)?);
        out.sort_by_key(|e| (e.created_at, e.disguise_id));
        Ok(out)
    }

    /// Entries for one `(user, disguise_id)` across both tiers.
    pub fn entries_for_disguise(
        &self,
        user_id: &Value,
        disguise_id: u64,
    ) -> Result<Vec<VaultEntry>> {
        Ok(self
            .entries_for(user_id)?
            .into_iter()
            .filter(|e| e.disguise_id == disguise_id)
            .collect())
    }

    /// Removes `(user, disguise_id)` entries from both tiers.
    pub fn remove(&self, user_id: &Value, disguise_id: u64) -> Result<usize> {
        Ok(self.global.remove(user_id, disguise_id)?
            + self.per_user.remove(user_id, disguise_id)?)
    }

    /// Purges expired entries from both tiers.
    pub fn purge_expired(&self, now: i64) -> Result<usize> {
        Ok(self.global.purge_expired(now)? + self.per_user.purge_expired(now)?)
    }

    /// Total bytes at rest across both tiers.
    pub fn storage_bytes(&self) -> Result<usize> {
        Ok(self.global.storage_bytes()? + self.per_user.storage_bytes()?)
    }

    /// Backend operational counters summed across both tiers.
    pub fn store_stats(&self) -> crate::backend::StoreStats {
        self.global.store_stats().merge(self.per_user.store_stats())
    }

    /// Installs (or with `None` removes) a tracer on both tiers; see
    /// [`Vault::set_tracer`].
    pub fn set_tracer(&self, tracer: Option<edna_obs::Tracer>) {
        self.global.set_tracer(tracer.clone());
        self.per_user.set_tracer(tracer);
    }

    /// Direct access to one tier.
    pub fn tier(&self, tier: VaultTier) -> &Vault {
        match tier {
            VaultTier::Global => &self.global,
            VaultTier::PerUser => &self.per_user,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryStore;
    use crate::entry::RevealOp;

    fn entry(id: u64, created_at: i64) -> VaultEntry {
        VaultEntry {
            disguise_id: id,
            disguise_name: format!("d{id}"),
            user_id: Value::Int(19),
            ops: vec![RevealOp::RemovePlaceholder {
                table: "t".to_string(),
                pk_column: "id".to_string(),
                pk: Value::Int(1),
            }],
            created_at,
            expires_at: None,
        }
    }

    fn tiered() -> TieredVault {
        TieredVault::new(
            Vault::plain(MemoryStore::new()),
            Vault::encrypted(MemoryStore::new(), 3),
        )
    }

    #[test]
    fn routes_by_tier_and_merges_reads() {
        let tv = tiered();
        tv.put(VaultTier::Global, &entry(1, 100)).unwrap();
        tv.put(VaultTier::PerUser, &entry(2, 50)).unwrap();
        let all = tv.entries_for(&Value::Int(19)).unwrap();
        // Merged and sorted by creation time.
        assert_eq!(
            all.iter().map(|e| e.disguise_id).collect::<Vec<_>>(),
            vec![2, 1]
        );
        assert_eq!(tv.tier(VaultTier::Global).entry_count().unwrap(), 1);
        assert_eq!(tv.tier(VaultTier::PerUser).entry_count().unwrap(), 1);
    }

    #[test]
    fn remove_spans_tiers() {
        let tv = tiered();
        tv.put(VaultTier::Global, &entry(1, 1)).unwrap();
        tv.put(VaultTier::PerUser, &entry(1, 2)).unwrap();
        assert_eq!(tv.remove(&Value::Int(19), 1).unwrap(), 2);
        assert!(tv.entries_for(&Value::Int(19)).unwrap().is_empty());
    }

    #[test]
    fn per_user_tier_is_encrypted() {
        let tv = tiered();
        assert!(!tv.tier(VaultTier::Global).is_encrypted());
        assert!(tv.tier(VaultTier::PerUser).is_encrypted());
    }
}
