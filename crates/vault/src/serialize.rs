//! Compact binary serialization for vault payloads.
//!
//! A small, self-contained wire format (no external serializer): values are
//! tagged, integers are little-endian fixed width, and strings/blobs are
//! length-prefixed with `u32`. The format is versioned by a leading magic
//! byte per payload so future evolution stays detectable.

use edna_util::buf::{Bytes, BytesMut};

use edna_relational::Value;

use crate::error::{Error, Result};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BOOL_FALSE: u8 = 4;
const TAG_BOOL_TRUE: u8 = 5;
const TAG_BYTES: u8 = 6;

/// Serializes one [`Value`].
pub fn write_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(x) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*x);
        }
        Value::Text(s) => {
            buf.put_u8(TAG_TEXT);
            write_bytes(buf, s.as_bytes());
        }
        Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        Value::Bytes(b) => {
            buf.put_u8(TAG_BYTES);
            write_bytes(buf, b);
        }
    }
}

/// Deserializes one [`Value`].
pub fn read_value(buf: &mut Bytes) -> Result<Value> {
    if buf.remaining() < 1 {
        return Err(Error::Codec("truncated value".to_string()));
    }
    match buf.get_u8() {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => {
            ensure(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        TAG_FLOAT => {
            ensure(buf, 8)?;
            Ok(Value::Float(buf.get_f64_le()))
        }
        TAG_TEXT => {
            let b = read_bytes(buf)?;
            String::from_utf8(b)
                .map(Value::Text)
                .map_err(|_| Error::Codec("invalid UTF-8 in text value".to_string()))
        }
        TAG_BOOL_FALSE => Ok(Value::Bool(false)),
        TAG_BOOL_TRUE => Ok(Value::Bool(true)),
        TAG_BYTES => Ok(Value::Bytes(read_bytes(buf)?)),
        t => Err(Error::Codec(format!("unknown value tag {t}"))),
    }
}

/// Serializes a length-prefixed byte run.
pub fn write_bytes(buf: &mut BytesMut, data: &[u8]) {
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(data);
}

/// Deserializes a length-prefixed byte run.
pub fn read_bytes(buf: &mut Bytes) -> Result<Vec<u8>> {
    ensure(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    ensure(buf, len)?;
    let mut out = vec![0u8; len];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

/// Serializes a length-prefixed string.
pub fn write_string(buf: &mut BytesMut, s: &str) {
    write_bytes(buf, s.as_bytes());
}

/// Deserializes a length-prefixed string.
pub fn read_string(buf: &mut Bytes) -> Result<String> {
    String::from_utf8(read_bytes(buf)?)
        .map_err(|_| Error::Codec("invalid UTF-8 in string".to_string()))
}

/// Serializes a row (value list).
pub fn write_row(buf: &mut BytesMut, row: &[Value]) {
    buf.put_u32_le(row.len() as u32);
    for v in row {
        write_value(buf, v);
    }
}

/// Deserializes a row (value list).
pub fn read_row(buf: &mut Bytes) -> Result<Vec<Value>> {
    ensure(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    if n > buf.remaining() {
        // Each value takes at least one byte; cheap sanity bound.
        return Err(Error::Codec("row length exceeds payload".to_string()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_value(buf)?);
    }
    Ok(out)
}

/// Serializes an optional i64 (presence byte + value).
pub fn write_opt_i64(buf: &mut BytesMut, v: Option<i64>) {
    match v {
        Some(x) => {
            buf.put_u8(1);
            buf.put_i64_le(x);
        }
        None => buf.put_u8(0),
    }
}

/// Deserializes an optional i64.
pub fn read_opt_i64(buf: &mut Bytes) -> Result<Option<i64>> {
    ensure(buf, 1)?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => {
            ensure(buf, 8)?;
            Ok(Some(buf.get_i64_le()))
        }
        t => Err(Error::Codec(format!("bad option tag {t}"))),
    }
}

fn ensure(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(Error::Codec(format!("truncated payload: need {n} bytes")))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let mut buf = BytesMut::new();
        write_value(&mut buf, &v);
        let mut bytes = buf.freeze();
        assert_eq!(read_value(&mut bytes).unwrap(), v);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn value_round_trips() {
        round_trip(Value::Null);
        round_trip(Value::Int(i64::MIN));
        round_trip(Value::Int(0));
        round_trip(Value::Float(-1.5e300));
        round_trip(Value::Text("héllo 'quoted'".into()));
        round_trip(Value::Text(String::new()));
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
        round_trip(Value::Bytes(vec![0, 255, 3]));
    }

    #[test]
    fn row_round_trip() {
        let row = vec![Value::Int(1), Value::Null, Value::Text("x".into())];
        let mut buf = BytesMut::new();
        write_row(&mut buf, &row);
        let mut bytes = buf.freeze();
        assert_eq!(read_row(&mut bytes).unwrap(), row);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = BytesMut::new();
        write_value(&mut buf, &Value::Text("hello world".into()));
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut part = full.slice(..cut);
            assert!(read_value(&mut part).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bogus_tags_rejected() {
        let mut bytes = Bytes::from_static(&[99]);
        assert!(read_value(&mut bytes).is_err());
        let mut opt = Bytes::from_static(&[7]);
        assert!(read_opt_i64(&mut opt).is_err());
    }

    #[test]
    fn oversized_row_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        let mut bytes = buf.freeze();
        assert!(read_row(&mut bytes).is_err());
    }
}
