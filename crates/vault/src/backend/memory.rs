//! In-memory vault store: the application-adjacent deployment model.
//!
//! This mirrors the paper's prototype, which "represents vaults as
//! (currently unencrypted) per-user database tables" (§5): entries live
//! next to the application, giving the disguising tool cheap access but the
//! weakest isolation.

use std::collections::HashMap;

use std::sync::Mutex;

use crate::entry::StoredEntry;
use crate::error::Result;

use super::VaultStore;

/// A thread-safe in-memory store.
#[derive(Default)]
pub struct MemoryStore {
    entries: Mutex<HashMap<String, Vec<StoredEntry>>>,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }
}

impl VaultStore for MemoryStore {
    fn put(&self, user: &str, entry: StoredEntry) -> Result<()> {
        self.entries
            .lock()
            .unwrap()
            .entry(user.to_string())
            .or_default()
            .push(entry);
        Ok(())
    }

    fn list(&self, user: &str) -> Result<Vec<StoredEntry>> {
        Ok(self
            .entries
            .lock()
            .unwrap()
            .get(user)
            .cloned()
            .unwrap_or_default())
    }

    fn users(&self) -> Result<Vec<String>> {
        let map = self.entries.lock().unwrap();
        let mut users: Vec<String> = map
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| k.clone())
            .collect();
        users.sort();
        Ok(users)
    }

    fn remove(&self, user: &str, disguise_id: u64) -> Result<usize> {
        let mut map = self.entries.lock().unwrap();
        let Some(list) = map.get_mut(user) else {
            return Ok(0);
        };
        let before = list.len();
        list.retain(|e| e.meta.disguise_id != disguise_id);
        Ok(before - list.len())
    }

    fn purge_expired(&self, now: i64) -> Result<usize> {
        let mut map = self.entries.lock().unwrap();
        let mut purged = 0;
        for list in map.values_mut() {
            let before = list.len();
            list.retain(|e| !e.meta.is_expired(now));
            purged += before - list.len();
        }
        Ok(purged)
    }

    fn entry_count(&self) -> Result<usize> {
        Ok(self.entries.lock().unwrap().values().map(Vec::len).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryMeta;

    fn entry(id: u64, expires_at: Option<i64>) -> StoredEntry {
        StoredEntry {
            meta: EntryMeta {
                disguise_id: id,
                disguise_name: format!("d{id}"),
                created_at: 0,
                expires_at,
            },
            payload: vec![id as u8],
        }
    }

    #[test]
    fn put_list_remove() {
        let s = MemoryStore::new();
        s.put("19", entry(1, None)).unwrap();
        s.put("19", entry(2, None)).unwrap();
        s.put("20", entry(3, None)).unwrap();
        assert_eq!(s.list("19").unwrap().len(), 2);
        assert_eq!(s.users().unwrap(), vec!["19".to_string(), "20".to_string()]);
        assert_eq!(s.remove("19", 1).unwrap(), 1);
        assert_eq!(s.list("19").unwrap().len(), 1);
        assert_eq!(s.remove("19", 99).unwrap(), 0);
        assert_eq!(s.entry_count().unwrap(), 2);
    }

    #[test]
    fn purge_expired_only_drops_expired() {
        let s = MemoryStore::new();
        s.put("u", entry(1, Some(100))).unwrap();
        s.put("u", entry(2, Some(200))).unwrap();
        s.put("u", entry(3, None)).unwrap();
        assert_eq!(s.purge_expired(150).unwrap(), 1);
        assert_eq!(s.list("u").unwrap().len(), 2);
    }
}
