//! Simulated third-party vault service.
//!
//! Paper §4.2: vaults may be "stored entirely by some third party or
//! locally by the user, with an API for disguise tool access". No such
//! service exists in this environment, so this wrapper injects a
//! configurable per-request latency (plus optional user-approval gating)
//! in front of any inner store, letting benchmarks explore the cost of
//! remote vault access.
//!
//! Remote services fail transiently; a [`RetryPolicy`] (off by default)
//! re-issues requests that come back with transient errors, charging the
//! per-request latency again each attempt — a retry is another round
//! trip. Attempts are observable via [`ThirdPartyStore::request_count`]
//! and [`VaultStore::stats`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Duration;

use edna_obs::Tracer;
use edna_util::sync::{read_unpoisoned, write_unpoisoned};

use crate::entry::StoredEntry;
use crate::error::{Error, Result};
use crate::retry::RetryPolicy;

use super::{StoreStats, VaultStore};

/// A latency-injecting, approval-gated wrapper around another store.
pub struct ThirdPartyStore<S> {
    inner: S,
    per_request: Duration,
    requests: AtomicU64,
    retry: RetryPolicy,
    retries: AtomicU64,
    /// When true, every access requires prior user approval (paper §4.2:
    /// "access might require explicit approval by the user").
    require_approval: AtomicBool,
    approved: AtomicBool,
    tracer: RwLock<Option<Tracer>>,
}

impl<S: VaultStore> ThirdPartyStore<S> {
    /// Wraps `inner`, charging `per_request` for every store operation.
    /// No retries; see [`ThirdPartyStore::with_retry`].
    pub fn new(inner: S, per_request: Duration) -> ThirdPartyStore<S> {
        Self::with_retry(inner, per_request, RetryPolicy::NONE)
    }

    /// Like [`ThirdPartyStore::new`], re-issuing transiently failed
    /// requests per `retry`.
    pub fn with_retry(inner: S, per_request: Duration, retry: RetryPolicy) -> ThirdPartyStore<S> {
        ThirdPartyStore {
            inner,
            per_request,
            requests: AtomicU64::new(0),
            retry,
            retries: AtomicU64::new(0),
            require_approval: AtomicBool::new(false),
            approved: AtomicBool::new(false),
            tracer: RwLock::new(None),
        }
    }

    /// Enables the user-approval requirement.
    pub fn require_approval(&self) {
        self.require_approval.store(true, Ordering::SeqCst);
    }

    /// Records the user's approval (or revocation).
    pub fn set_approved(&self, approved: bool) {
        self.approved.store(approved, Ordering::SeqCst);
    }

    /// Number of requests issued (retries are separate round trips).
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests re-issued by the retry policy.
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::SeqCst)
    }

    fn charge(&self) -> Result<()> {
        if self.require_approval.load(Ordering::SeqCst) && !self.approved.load(Ordering::SeqCst) {
            return Err(Error::Crypto(
                "third-party vault access requires user approval".to_string(),
            ));
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !self.per_request.is_zero() {
            // Sleep (rather than spin) so concurrent requests overlap.
            std::thread::sleep(self.per_request);
        }
        Ok(())
    }

    /// One possibly-retried round trip: approval + latency, then `op`.
    fn request<T>(&self, label: &str, mut op: impl FnMut(&S) -> Result<T>) -> Result<T> {
        let tracer = read_unpoisoned(&self.tracer).clone();
        self.retry
            .run_traced(&self.retries, tracer.as_ref(), label, || {
                self.charge()?;
                op(&self.inner)
            })
    }
}

impl<S: VaultStore> VaultStore for ThirdPartyStore<S> {
    fn put(&self, user: &str, entry: StoredEntry) -> Result<()> {
        self.request("remote_put", |s| s.put(user, entry.clone()))
    }

    fn list(&self, user: &str) -> Result<Vec<StoredEntry>> {
        self.request("remote_list", |s| s.list(user))
    }

    fn users(&self) -> Result<Vec<String>> {
        self.request("remote_users", |s| s.users())
    }

    fn remove(&self, user: &str, disguise_id: u64) -> Result<usize> {
        self.request("remote_remove", |s| s.remove(user, disguise_id))
    }

    fn purge_expired(&self, now: i64) -> Result<usize> {
        self.request("remote_purge", |s| s.purge_expired(now))
    }

    fn entry_count(&self) -> Result<usize> {
        self.request("remote_count", |s| s.entry_count())
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            retries: self.retries.load(Ordering::SeqCst),
            ..StoreStats::default()
        }
        .merge(self.inner.stats())
    }

    fn set_tracer(&self, tracer: Option<Tracer>) {
        self.inner.set_tracer(tracer.clone());
        *write_unpoisoned(&self.tracer) = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultPlan, FaultyStore, MemoryStore};
    use crate::entry::EntryMeta;

    fn entry(id: u64) -> StoredEntry {
        StoredEntry {
            meta: EntryMeta {
                disguise_id: id,
                disguise_name: "d".to_string(),
                created_at: 0,
                expires_at: None,
            },
            payload: vec![],
        }
    }

    fn fast_retry(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(1),
            deadline: Duration::from_secs(2),
            jitter_seed: 3,
        }
    }

    #[test]
    fn delegates_and_counts() {
        let s = ThirdPartyStore::new(MemoryStore::new(), Duration::ZERO);
        s.put("u", entry(1)).unwrap();
        assert_eq!(s.list("u").unwrap().len(), 1);
        assert_eq!(s.request_count(), 2);
    }

    #[test]
    fn latency_is_charged() {
        let s = ThirdPartyStore::new(MemoryStore::new(), Duration::from_millis(3));
        let t0 = std::time::Instant::now();
        s.put("u", entry(1)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(3));
    }

    #[test]
    fn approval_gating() {
        let s = ThirdPartyStore::new(MemoryStore::new(), Duration::ZERO);
        s.require_approval();
        assert!(s.list("u").is_err());
        s.set_approved(true);
        assert!(s.list("u").is_ok());
        s.set_approved(false);
        assert!(s.list("u").is_err());
    }

    #[test]
    fn retry_absorbs_transient_outage() {
        // The first op fails transiently: the put still lands, with every
        // attempt visible as a separate round trip.
        let flaky = FaultyStore::new(
            MemoryStore::new(),
            FaultPlan::new(1).fail_nth(0).transient(),
        );
        let s = ThirdPartyStore::with_retry(flaky, Duration::ZERO, fast_retry(8));
        s.put("u", entry(1)).unwrap();
        assert_eq!(s.retry_count(), 1);
        assert_eq!(s.request_count(), 2, "retry is a second round trip");
        assert_eq!(s.list("u").unwrap().len(), 1);
    }

    #[test]
    fn permanent_outage_fails_within_deadline_with_observable_retries() {
        let dead = FaultyStore::new(MemoryStore::new(), FaultPlan::new(1).error_rate(1.0));
        // Permanent injected faults are not retried at all.
        let s = ThirdPartyStore::with_retry(dead, Duration::ZERO, fast_retry(8));
        assert!(s.put("u", entry(1)).is_err());
        assert_eq!(s.retry_count(), 0);

        // A *transiently* failing store that never recovers: bounded
        // attempts, deadline respected, retry count observable.
        let dead = FaultyStore::new(
            MemoryStore::new(),
            FaultPlan::new(1).error_rate(1.0).transient(),
        );
        let s = ThirdPartyStore::with_retry(dead, Duration::ZERO, fast_retry(5));
        let t0 = std::time::Instant::now();
        let err = s.put("u", entry(1)).unwrap_err();
        assert!(t0.elapsed() < Duration::from_secs(2) + Duration::from_millis(500));
        assert!(matches!(err, Error::RetriesExhausted { attempts: 6, .. }));
        assert_eq!(s.retry_count(), 5);
        assert_eq!(s.stats().retries, 5);
    }

    #[test]
    fn disk_full_and_read_only_fs_fail_fast() {
        // ENOSPC/EROFS cannot be cured by retrying: the policy must
        // surface them on the first attempt instead of burning the
        // backoff budget (and masking the condition).
        for kind in [
            std::io::ErrorKind::StorageFull,
            std::io::ErrorKind::ReadOnlyFilesystem,
        ] {
            let full = FaultyStore::new(
                MemoryStore::new(),
                FaultPlan::new(1).error_rate(1.0).io_error_kind(kind),
            );
            let s = ThirdPartyStore::with_retry(full, Duration::ZERO, fast_retry(8));
            let err = s.put("u", entry(1)).unwrap_err();
            assert!(
                matches!(&err, Error::Io(e) if e.kind() == kind),
                "got {err}"
            );
            assert_eq!(s.retry_count(), 0, "{kind:?} must not be retried");
            assert_eq!(s.request_count(), 1, "{kind:?}: exactly one attempt");
        }
        // Generic I/O hiccups stay retryable.
        let flaky = FaultyStore::new(
            MemoryStore::new(),
            FaultPlan::new(1)
                .fail_nth(0)
                .io_error_kind(std::io::ErrorKind::Interrupted),
        );
        let s = ThirdPartyStore::with_retry(flaky, Duration::ZERO, fast_retry(8));
        s.put("u", entry(1)).unwrap();
        assert_eq!(s.retry_count(), 1);
    }

    #[test]
    fn approval_denial_is_not_retried() {
        let s = ThirdPartyStore::with_retry(MemoryStore::new(), Duration::ZERO, fast_retry(8));
        s.require_approval();
        assert!(s.list("u").is_err());
        assert_eq!(s.retry_count(), 0, "denial is permanent, no retries");
        assert_eq!(s.request_count(), 0);
    }
}
