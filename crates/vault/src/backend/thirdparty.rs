//! Simulated third-party vault service.
//!
//! Paper §4.2: vaults may be "stored entirely by some third party or
//! locally by the user, with an API for disguise tool access". No such
//! service exists in this environment, so this wrapper injects a
//! configurable per-request latency (plus optional user-approval gating)
//! in front of any inner store, letting benchmarks explore the cost of
//! remote vault access.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use crate::entry::StoredEntry;
use crate::error::{Error, Result};

use super::VaultStore;

/// A latency-injecting, approval-gated wrapper around another store.
pub struct ThirdPartyStore<S> {
    inner: S,
    per_request: Duration,
    requests: AtomicU64,
    /// When true, every access requires prior user approval (paper §4.2:
    /// "access might require explicit approval by the user").
    require_approval: AtomicBool,
    approved: AtomicBool,
}

impl<S: VaultStore> ThirdPartyStore<S> {
    /// Wraps `inner`, charging `per_request` for every store operation.
    pub fn new(inner: S, per_request: Duration) -> ThirdPartyStore<S> {
        ThirdPartyStore {
            inner,
            per_request,
            requests: AtomicU64::new(0),
            require_approval: AtomicBool::new(false),
            approved: AtomicBool::new(false),
        }
    }

    /// Enables the user-approval requirement.
    pub fn require_approval(&self) {
        self.require_approval.store(true, Ordering::SeqCst);
    }

    /// Records the user's approval (or revocation).
    pub fn set_approved(&self, approved: bool) {
        self.approved.store(approved, Ordering::SeqCst);
    }

    /// Number of requests served.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    fn charge(&self) -> Result<()> {
        if self.require_approval.load(Ordering::SeqCst) && !self.approved.load(Ordering::SeqCst) {
            return Err(Error::Crypto(
                "third-party vault access requires user approval".to_string(),
            ));
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !self.per_request.is_zero() {
            // Sleep (rather than spin) so concurrent requests overlap.
            std::thread::sleep(self.per_request);
        }
        Ok(())
    }
}

impl<S: VaultStore> VaultStore for ThirdPartyStore<S> {
    fn put(&self, user: &str, entry: StoredEntry) -> Result<()> {
        self.charge()?;
        self.inner.put(user, entry)
    }

    fn list(&self, user: &str) -> Result<Vec<StoredEntry>> {
        self.charge()?;
        self.inner.list(user)
    }

    fn users(&self) -> Result<Vec<String>> {
        self.charge()?;
        self.inner.users()
    }

    fn remove(&self, user: &str, disguise_id: u64) -> Result<usize> {
        self.charge()?;
        self.inner.remove(user, disguise_id)
    }

    fn purge_expired(&self, now: i64) -> Result<usize> {
        self.charge()?;
        self.inner.purge_expired(now)
    }

    fn entry_count(&self) -> Result<usize> {
        self.charge()?;
        self.inner.entry_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryStore;
    use crate::entry::EntryMeta;

    fn entry(id: u64) -> StoredEntry {
        StoredEntry {
            meta: EntryMeta {
                disguise_id: id,
                disguise_name: "d".to_string(),
                created_at: 0,
                expires_at: None,
            },
            payload: vec![],
        }
    }

    #[test]
    fn delegates_and_counts() {
        let s = ThirdPartyStore::new(MemoryStore::new(), Duration::ZERO);
        s.put("u", entry(1)).unwrap();
        assert_eq!(s.list("u").unwrap().len(), 1);
        assert_eq!(s.request_count(), 2);
    }

    #[test]
    fn latency_is_charged() {
        let s = ThirdPartyStore::new(MemoryStore::new(), Duration::from_millis(3));
        let t0 = std::time::Instant::now();
        s.put("u", entry(1)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(3));
    }

    #[test]
    fn approval_gating() {
        let s = ThirdPartyStore::new(MemoryStore::new(), Duration::ZERO);
        s.require_approval();
        assert!(s.list("u").is_err());
        s.set_approved(true);
        assert!(s.list("u").is_ok());
        s.set_approved(false);
        assert!(s.list("u").is_err());
    }
}
