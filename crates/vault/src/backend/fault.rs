//! Fault injection for vault backends.
//!
//! [`FaultPlan`] is a seedable, deterministic description of *which* vault
//! operations misbehave and *how*: fail the nth operation, fail a random
//! fraction of operations, add a latency spike, or tear a write in half
//! (persist only a prefix of the record, as a crash mid-`write` would).
//! [`FaultyStore`] wraps any [`VaultStore`] and consults the plan before
//! delegating, so the whole storage stack above it — retry policies,
//! degradation handling, crash recovery — can be exercised without real
//! disks or networks misbehaving on cue.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use edna_util::rng::{Rng, SplitMix64};

use crate::entry::StoredEntry;
use crate::error::{Error, Result};

use super::{StoreStats, VaultStore};

/// What the plan decided for one operation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Decision {
    /// Let the operation through untouched.
    Pass,
    /// Fail the operation with an injected error.
    Fail,
    /// Delay, then let the operation through.
    Delay(Duration),
    /// For writes: persist only `keep` (a fraction in `0.0..1.0`) of the
    /// record's bytes, then report success — a torn write.
    Torn(f64),
}

/// A deterministic, seedable fault schedule for a vault backend.
///
/// Operations are counted across the whole store (puts, lists, removals,
/// …) in call order; the counter is what `fail_nth` indexes. All
/// randomness comes from a [`SplitMix64`] stream seeded at construction,
/// so a failing schedule reproduces exactly from its seed.
///
/// # Examples
///
/// ```
/// use edna_vault::{FaultPlan, FaultyStore, MemoryStore, VaultStore};
///
/// // Fail the second operation the store sees, permanently.
/// let store = FaultyStore::new(MemoryStore::new(), FaultPlan::new(7).fail_nth(1));
/// assert!(store.users().is_ok());
/// assert!(store.users().is_err());
/// assert!(store.users().is_ok());
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    rng: Mutex<SplitMix64>,
    ops: AtomicU64,
    injected: AtomicU64,
    fail_nth: Option<u64>,
    error_rate: f64,
    transient: bool,
    io_kind: Option<std::io::ErrorKind>,
    latency_nth: Option<u64>,
    latency: Duration,
    torn_nth: Option<u64>,
    torn_keep: f64,
}

impl FaultPlan {
    /// A plan that injects nothing yet; combine with the builder methods.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: Mutex::new(SplitMix64::new(seed)),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            fail_nth: None,
            error_rate: 0.0,
            transient: false,
            io_kind: None,
            latency_nth: None,
            latency: Duration::ZERO,
            torn_nth: None,
            torn_keep: 0.5,
        }
    }

    /// Fail the `n`th operation (0-based, counted across all ops).
    pub fn fail_nth(mut self, n: u64) -> FaultPlan {
        self.fail_nth = Some(n);
        self
    }

    /// Fail each operation independently with probability `p`.
    pub fn error_rate(mut self, p: f64) -> FaultPlan {
        self.error_rate = p.clamp(0.0, 1.0);
        self
    }

    /// Injected failures are transient ([`Error::is_transient`] is true),
    /// so retry policies may absorb them. Default: permanent.
    pub fn transient(mut self) -> FaultPlan {
        self.transient = true;
        self
    }

    /// Injected failures surface as [`Error::Io`] with the given kind
    /// (e.g. [`std::io::ErrorKind::StorageFull`] for a full disk) instead
    /// of [`Error::Injected`] — their retry classification then follows
    /// the real I/O rules, so fail-fast behavior on ENOSPC/EROFS can be
    /// exercised without actually filling a disk.
    pub fn io_error_kind(mut self, kind: std::io::ErrorKind) -> FaultPlan {
        self.io_kind = Some(kind);
        self
    }

    /// Delay the `n`th operation by `latency` (a latency spike) instead of
    /// failing it.
    pub fn latency_spike(mut self, n: u64, latency: Duration) -> FaultPlan {
        self.latency_nth = Some(n);
        self.latency = latency;
        self
    }

    /// Tear the `n`th operation *if it is a write*: persist only `keep`
    /// (a fraction in `0.0..1.0`) of the record bytes, then report
    /// success — what a crash between `write` and `fsync` leaves behind.
    /// Non-write operations at that index pass through.
    pub fn torn_write_nth(mut self, n: u64, keep: f64) -> FaultPlan {
        self.torn_nth = Some(n);
        self.torn_keep = keep.clamp(0.0, 1.0);
        self
    }

    /// Operations the plan has seen so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Faults injected so far (failures and torn writes, not delays).
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Consumes one operation slot and decides its fate. `is_write`
    /// enables torn-write decisions.
    fn decide(&self, is_write: bool) -> (u64, Decision) {
        let index = self.ops.fetch_add(1, Ordering::SeqCst);
        if self.torn_nth == Some(index) && is_write {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return (index, Decision::Torn(self.torn_keep));
        }
        if self.fail_nth == Some(index) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return (index, Decision::Fail);
        }
        if self.error_rate > 0.0 {
            let roll = {
                let mut rng = self.rng.lock().unwrap();
                // Map the top 53 bits to [0, 1), as `Rng::gen_bool` does.
                (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
            };
            if roll < self.error_rate {
                self.injected.fetch_add(1, Ordering::SeqCst);
                return (index, Decision::Fail);
            }
        }
        if self.latency_nth == Some(index) {
            return (index, Decision::Delay(self.latency));
        }
        (index, Decision::Pass)
    }
}

/// A [`VaultStore`] wrapper that injects the faults of a [`FaultPlan`].
pub struct FaultyStore<S> {
    inner: S,
    plan: Arc<FaultPlan>,
}

impl<S: VaultStore> FaultyStore<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyStore<S> {
        FaultyStore {
            inner,
            plan: Arc::new(plan),
        }
    }

    /// The shared plan (for asserting on counters after a run).
    pub fn plan(&self) -> Arc<FaultPlan> {
        Arc::clone(&self.plan)
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Applies the plan's decision for one non-write op, then runs `f`.
    fn guard<T>(&self, op: &str, f: impl FnOnce(&S) -> Result<T>) -> Result<T> {
        let (index, decision) = self.plan.decide(false);
        match decision {
            Decision::Fail => Err(self.injected(op, index)),
            Decision::Delay(d) => {
                std::thread::sleep(d);
                f(&self.inner)
            }
            // Torn is write-only; decide() never returns it here.
            Decision::Pass | Decision::Torn(_) => f(&self.inner),
        }
    }

    fn injected(&self, op: &str, index: u64) -> Error {
        match self.plan.io_kind {
            Some(kind) => Error::Io(std::io::Error::new(
                kind,
                format!("injected I/O fault on vault op {op} (op index {index})"),
            )),
            None => Error::Injected {
                op: op.to_string(),
                index,
                transient: self.plan.transient,
            },
        }
    }
}

impl<S: VaultStore> VaultStore for FaultyStore<S> {
    fn put(&self, user: &str, entry: StoredEntry) -> Result<()> {
        let (index, decision) = self.plan.decide(true);
        match decision {
            Decision::Fail => Err(self.injected("put", index)),
            Decision::Torn(keep) => self.inner.put_torn(user, entry, keep),
            Decision::Delay(d) => {
                std::thread::sleep(d);
                self.inner.put(user, entry)
            }
            Decision::Pass => self.inner.put(user, entry),
        }
    }

    fn list(&self, user: &str) -> Result<Vec<StoredEntry>> {
        self.guard("list", |s| s.list(user))
    }

    fn users(&self) -> Result<Vec<String>> {
        self.guard("users", |s| s.users())
    }

    fn remove(&self, user: &str, disguise_id: u64) -> Result<usize> {
        self.guard("remove", |s| s.remove(user, disguise_id))
    }

    fn purge_expired(&self, now: i64) -> Result<usize> {
        self.guard("purge_expired", |s| s.purge_expired(now))
    }

    fn entry_count(&self) -> Result<usize> {
        self.guard("entry_count", |s| s.entry_count())
    }

    fn storage_bytes(&self) -> Result<usize> {
        self.guard("storage_bytes", |s| s.storage_bytes())
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn set_tracer(&self, tracer: Option<edna_obs::Tracer>) {
        self.inner.set_tracer(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryStore;
    use crate::entry::EntryMeta;

    fn entry(id: u64) -> StoredEntry {
        StoredEntry {
            meta: EntryMeta {
                disguise_id: id,
                disguise_name: "d".to_string(),
                created_at: 0,
                expires_at: None,
            },
            payload: vec![1, 2, 3],
        }
    }

    #[test]
    fn fail_nth_hits_exactly_one_op() {
        let store = FaultyStore::new(MemoryStore::new(), FaultPlan::new(1).fail_nth(2));
        store.put("u", entry(1)).unwrap(); // op 0
        store.put("u", entry(2)).unwrap(); // op 1
        let err = store.put("u", entry(3)).unwrap_err(); // op 2
        assert!(matches!(err, Error::Injected { index: 2, .. }));
        store.put("u", entry(4)).unwrap(); // op 3
        assert_eq!(store.inner().entry_count().unwrap(), 3);
        assert_eq!(store.plan().faults_injected(), 1);
    }

    #[test]
    fn error_rate_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let store = FaultyStore::new(MemoryStore::new(), FaultPlan::new(seed).error_rate(0.5));
            (0..64)
                .map(|i| store.put("u", entry(i)).is_err())
                .collect::<Vec<bool>>()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same schedule");
        assert_ne!(a, run(43), "different seed, different schedule");
        let failures = a.iter().filter(|x| **x).count();
        assert!(
            (10..=54).contains(&failures),
            "rate ~0.5, got {failures}/64"
        );
    }

    #[test]
    fn transient_flag_controls_classification() {
        let permanent = FaultyStore::new(MemoryStore::new(), FaultPlan::new(1).fail_nth(0));
        assert!(!permanent.users().unwrap_err().is_transient());
        let transient = FaultyStore::new(
            MemoryStore::new(),
            FaultPlan::new(1).fail_nth(0).transient(),
        );
        assert!(transient.users().unwrap_err().is_transient());
    }

    #[test]
    fn latency_spike_delays_but_succeeds() {
        let store = FaultyStore::new(
            MemoryStore::new(),
            FaultPlan::new(1).latency_spike(0, Duration::from_millis(20)),
        );
        let start = std::time::Instant::now();
        store.put("u", entry(1)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
        store.put("u", entry(2)).unwrap();
        assert_eq!(store.inner().entry_count().unwrap(), 2);
    }

    #[test]
    fn torn_write_unsupported_on_memory_store() {
        // MemoryStore can't model partial persistence; the default
        // `put_torn` reports that instead of silently dropping the write.
        let store = FaultyStore::new(MemoryStore::new(), FaultPlan::new(1).torn_write_nth(0, 0.5));
        assert!(store.put("u", entry(1)).is_err());
    }

    #[test]
    fn torn_decision_skips_reads() {
        let store = FaultyStore::new(MemoryStore::new(), FaultPlan::new(1).torn_write_nth(0, 0.5));
        // Op 0 is a read: the torn decision does not apply to it.
        assert!(store.users().is_ok());
    }
}
