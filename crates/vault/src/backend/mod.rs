//! Vault storage backends.
//!
//! The paper (§4.2) sketches several vault deployment models: application-
//! adjacent storage, offline storage, and third-party/user-held storage.
//! Each maps to a [`VaultStore`] implementation here:
//!
//! - [`MemoryStore`] — application-adjacent tables (what the prototype uses);
//! - [`FileStore`] — offline storage on a filesystem path;
//! - [`ThirdPartyStore`] — a latency-injecting wrapper simulating a remote
//!   third-party vault service;
//! - [`FaultyStore`] — a fault-injecting wrapper driven by a seedable
//!   [`FaultPlan`], for robustness testing.
//!
//! Encryption is orthogonal: it is applied by [`crate::Vault`] before the
//! payload reaches a store, so every deployment model can be encrypted.

pub mod fault;
pub mod file;
pub mod memory;
pub mod thirdparty;

pub use fault::{FaultPlan, FaultyStore};
pub use file::FileStore;
pub use memory::MemoryStore;
pub use thirdparty::ThirdPartyStore;

use crate::entry::StoredEntry;
use crate::error::{Error, Result};

/// Operational counters a store accumulates over its lifetime, exposed so
/// callers can observe retries and crash recovery (tests assert on them,
/// and `edna-core` surfaces the retry count in its disguise reports).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Operations re-attempted by a retry policy (excludes first tries).
    pub retries: u64,
    /// Complete records salvaged while truncating a torn tail.
    pub recovered_records: u64,
    /// Bytes of torn tail discarded during open-time recovery.
    pub truncated_bytes: u64,
}

impl StoreStats {
    /// Element-wise sum of two counters (for aggregating across tiers).
    pub fn merge(self, other: StoreStats) -> StoreStats {
        StoreStats {
            retries: self.retries + other.retries,
            recovered_records: self.recovered_records + other.recovered_records,
            truncated_bytes: self.truncated_bytes + other.truncated_bytes,
        }
    }
}

/// Storage interface for opaque vault entries, keyed by user.
///
/// The `user` key is the SQL-literal rendering of the user id, or
/// [`GLOBAL_USER`] for global (cross-user) vault entries.
pub trait VaultStore: Send + Sync {
    /// Appends an entry to `user`'s vault.
    fn put(&self, user: &str, entry: StoredEntry) -> Result<()>;

    /// Appends a batch of entries, each to its user's vault. Stores that
    /// can amortize per-call overhead (locks, file opens) override this;
    /// the default just loops [`VaultStore::put`]. Not atomic: on error a
    /// prefix of the batch may already be stored, so callers that retry
    /// must dedup (see `edna-core`'s idempotent journal flush).
    fn put_many(&self, items: Vec<(String, StoredEntry)>) -> Result<()> {
        for (user, entry) in items {
            self.put(&user, entry)?;
        }
        Ok(())
    }

    /// All entries in `user`'s vault, oldest first.
    fn list(&self, user: &str) -> Result<Vec<StoredEntry>>;

    /// All user keys with at least one entry.
    fn users(&self) -> Result<Vec<String>>;

    /// Removes all entries for `(user, disguise_id)`; returns how many.
    fn remove(&self, user: &str, disguise_id: u64) -> Result<usize>;

    /// Drops every entry whose expiry has passed; returns how many. Expired
    /// entries make their disguises irreversible (paper §4.2).
    fn purge_expired(&self, now: i64) -> Result<usize>;

    /// Total number of stored entries (for tests and benches).
    fn entry_count(&self) -> Result<usize>;

    /// Total bytes at rest across all entries (metadata + payload). The
    /// default sums over [`VaultStore::users`] and [`VaultStore::list`].
    fn storage_bytes(&self) -> Result<usize> {
        let mut total = 0;
        for user in self.users()? {
            for e in self.list(&user)? {
                total += e.meta.encode().len() + e.payload.len();
            }
        }
        Ok(total)
    }

    /// Persists only `keep` (a fraction in `0.0..1.0`) of the encoded
    /// record, then reports success — simulating a crash mid-write. Used
    /// by [`FaultyStore`] to exercise crash recovery; only durable stores
    /// can model it, so the default declines.
    fn put_torn(&self, _user: &str, _entry: StoredEntry, _keep: f64) -> Result<()> {
        Err(Error::Unavailable(
            "this backend cannot model torn writes".to_string(),
        ))
    }

    /// Operational counters (retries, crash recovery). Stores without any
    /// report zeros.
    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }

    /// Installs (or with `None` removes) a tracer; stores that support it
    /// emit one span per backend request. The default ignores the tracer
    /// (in-memory stores have nothing worth timing).
    fn set_tracer(&self, _tracer: Option<edna_obs::Tracer>) {}
}

/// The reserved user key for the global vault scope.
pub const GLOBAL_USER: &str = "__global__";
