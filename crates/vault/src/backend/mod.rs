//! Vault storage backends.
//!
//! The paper (§4.2) sketches several vault deployment models: application-
//! adjacent storage, offline storage, and third-party/user-held storage.
//! Each maps to a [`VaultStore`] implementation here:
//!
//! - [`MemoryStore`] — application-adjacent tables (what the prototype uses);
//! - [`FileStore`] — offline storage on a filesystem path;
//! - [`ThirdPartyStore`] — a latency-injecting wrapper simulating a remote
//!   third-party vault service.
//!
//! Encryption is orthogonal: it is applied by [`crate::Vault`] before the
//! payload reaches a store, so every deployment model can be encrypted.

pub mod file;
pub mod memory;
pub mod thirdparty;

pub use file::FileStore;
pub use memory::MemoryStore;
pub use thirdparty::ThirdPartyStore;

use crate::entry::StoredEntry;
use crate::error::Result;

/// Storage interface for opaque vault entries, keyed by user.
///
/// The `user` key is the SQL-literal rendering of the user id, or
/// [`GLOBAL_USER`] for global (cross-user) vault entries.
pub trait VaultStore: Send + Sync {
    /// Appends an entry to `user`'s vault.
    fn put(&self, user: &str, entry: StoredEntry) -> Result<()>;

    /// All entries in `user`'s vault, oldest first.
    fn list(&self, user: &str) -> Result<Vec<StoredEntry>>;

    /// All user keys with at least one entry.
    fn users(&self) -> Result<Vec<String>>;

    /// Removes all entries for `(user, disguise_id)`; returns how many.
    fn remove(&self, user: &str, disguise_id: u64) -> Result<usize>;

    /// Drops every entry whose expiry has passed; returns how many. Expired
    /// entries make their disguises irreversible (paper §4.2).
    fn purge_expired(&self, now: i64) -> Result<usize>;

    /// Total number of stored entries (for tests and benches).
    fn entry_count(&self) -> Result<usize>;

    /// Total bytes at rest across all entries (metadata + payload). The
    /// default sums over [`VaultStore::users`] and [`VaultStore::list`].
    fn storage_bytes(&self) -> Result<usize> {
        let mut total = 0;
        for user in self.users()? {
            for e in self.list(&user)? {
                total += e.meta.encode().len() + e.payload.len();
            }
        }
        Ok(total)
    }
}

/// The reserved user key for the global vault scope.
pub const GLOBAL_USER: &str = "__global__";
