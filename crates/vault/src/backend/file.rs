//! File-backed vault store: the offline-storage deployment model.
//!
//! Paper §4.2: "the records required to reverse account deletion might be
//! in offline storage". Each user's vault is one append-only file of
//! checksummed records (see [`crate::wal`]) under a root directory; user
//! keys are hex-encoded into file names so arbitrary id renderings are
//! safe.
//!
//! Crash consistency: appends are framed with per-record SHA-256
//! checksums, rewrites (remove/purge) go through temp-file + atomic
//! rename, and reads recover from a torn tail — the partial record a
//! crash mid-append leaves behind — by truncating the file back to the
//! last complete record instead of failing to load. [`FileStore::open`]
//! also sweeps leftover `.tmp` files from interrupted rewrites.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use edna_obs::Tracer;
use edna_util::buf::{Bytes, BytesMut};
use edna_util::sync::{read_unpoisoned, write_unpoisoned};

use crate::entry::{EntryMeta, StoredEntry};
use crate::error::Result;
use crate::retry::RetryPolicy;
use crate::serialize::{read_bytes, write_bytes};
use crate::ship::{ShipKind, ShipSlot};
use crate::wal;

use super::{StoreStats, VaultStore};

/// A vault store persisting each user's entries to one file.
pub struct FileStore {
    root: PathBuf,
    // Serializes rewrites (remove/purge) against appends.
    lock: Mutex<()>,
    retry: RetryPolicy,
    retries: AtomicU64,
    recovered_records: AtomicU64,
    truncated_bytes: AtomicU64,
    tracer: RwLock<Option<Tracer>>,
    /// Replication tap: every durable append/rewrite of a user file is
    /// emitted here (as raw file bytes — sealed payloads ship sealed).
    ship: ShipSlot,
}

impl FileStore {
    /// Opens (creating if needed) a store rooted at `root`, removing any
    /// temp files a crashed rewrite left behind. Torn record tails are
    /// recovered lazily, on the first read of each user file.
    pub fn open(root: impl AsRef<Path>) -> Result<FileStore> {
        Self::open_with_retry(root, RetryPolicy::NONE)
    }

    /// Like [`FileStore::open`], with transient I/O errors retried per
    /// `retry`.
    pub fn open_with_retry(root: impl AsRef<Path>, retry: RetryPolicy) -> Result<FileStore> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        for entry in fs::read_dir(&root)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                fs::remove_file(&path)?;
            }
        }
        Ok(FileStore {
            root,
            lock: Mutex::new(()),
            retry,
            retries: AtomicU64::new(0),
            recovered_records: AtomicU64::new(0),
            truncated_bytes: AtomicU64::new(0),
            tracer: RwLock::new(None),
            ship: ShipSlot::new(),
        })
    }

    /// A clone of this store's replication tap slot: installing a hook
    /// into it (even after the store has been boxed behind a
    /// [`VaultStore`]) observes every durable file mutation. See
    /// [`crate::ship`].
    pub fn ship_slot(&self) -> ShipSlot {
        self.ship.clone()
    }

    /// Scans every user file now, truncating torn tails; returns how many
    /// bytes were discarded. Useful right after reopening a store that may
    /// have crashed mid-append (the CLI calls this on workspace open).
    pub fn recover(&self) -> Result<usize> {
        let users = self.users()?;
        let _g = self.lock.lock().unwrap();
        let before = self.truncated_bytes.load(Ordering::SeqCst);
        for user in users {
            self.read_all(&self.user_path(&user))?;
        }
        Ok((self.truncated_bytes.load(Ordering::SeqCst) - before) as usize)
    }

    fn user_path(&self, user: &str) -> PathBuf {
        let hex: String = user.bytes().map(|b| format!("{b:02x}")).collect();
        self.root.join(format!("vault_{hex}.bin"))
    }

    fn user_from_path(path: &Path) -> Option<String> {
        let stem = path.file_stem()?.to_str()?;
        let hex = stem.strip_prefix("vault_")?;
        if hex.len() % 2 != 0 {
            return None;
        }
        let bytes: Option<Vec<u8>> = (0..hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).ok())
            .collect();
        String::from_utf8(bytes?).ok()
    }

    /// Reads every complete record; a torn tail is truncated away on the
    /// spot (and counted in [`StoreStats`]) rather than failing the read.
    /// Caller must hold `self.lock`.
    fn read_all(&self, path: &Path) -> Result<Vec<StoredEntry>> {
        // A missing file means "no entries", not a transient fault to retry.
        let data = match self.with_retry("file_read", || match fs::read(path) {
            Ok(d) => Ok(Some(d)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        })? {
            Some(d) => d,
            None => return Ok(Vec::new()),
        };
        let scan = wal::scan_records(&data);
        if scan.valid_len < data.len() {
            let torn = scan.torn_bytes(data.len());
            self.with_retry("file_truncate", || {
                let f = fs::OpenOptions::new().write(true).open(path)?;
                f.set_len(scan.valid_len as u64)?;
                f.sync_all()?;
                Ok(())
            })?;
            self.truncated_bytes
                .fetch_add(torn as u64, Ordering::SeqCst);
            self.recovered_records
                .fetch_add(scan.records.len() as u64, Ordering::SeqCst);
        }
        scan.records
            .iter()
            .map(|body| Self::decode_record(body))
            .collect()
    }

    /// Caller must hold `self.lock`.
    fn write_all(&self, path: &Path, entries: &[StoredEntry]) -> Result<()> {
        if entries.is_empty() {
            self.with_retry("file_remove", || match fs::remove_file(path) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e.into()),
            })?;
            self.ship
                .emit(ShipKind::Replace, &Self::file_name(path), &[]);
            return Ok(());
        }
        let mut buf = BytesMut::new();
        for e in entries {
            wal::append_record(&mut buf, &Self::record_body(e));
        }
        // Write-then-rename for crash atomicity.
        let tmp = path.with_extension("tmp");
        self.with_retry("file_rewrite", || {
            fs::write(&tmp, &buf)?;
            fs::rename(&tmp, path)?;
            Ok(())
        })?;
        self.ship
            .emit(ShipKind::Replace, &Self::file_name(path), buf.as_ref());
        Ok(())
    }

    fn file_name(path: &Path) -> String {
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    }

    fn record_body(entry: &StoredEntry) -> Vec<u8> {
        let mut buf = BytesMut::new();
        write_bytes(&mut buf, &entry.meta.encode());
        write_bytes(&mut buf, &entry.payload);
        buf.to_vec()
    }

    fn decode_record(body: &[u8]) -> Result<StoredEntry> {
        let mut buf = Bytes::copy_from_slice(body);
        let meta_bytes = read_bytes(&mut buf)?;
        let payload = read_bytes(&mut buf)?;
        let mut mb = Bytes::from(meta_bytes);
        let meta = EntryMeta::decode(&mut mb)?;
        Ok(StoredEntry { meta, payload })
    }

    fn with_retry<T>(&self, label: &str, op: impl FnMut() -> Result<T>) -> Result<T> {
        let tracer = read_unpoisoned(&self.tracer).clone();
        self.retry
            .run_traced(&self.retries, tracer.as_ref(), label, op)
    }

    fn append_bytes(&self, user: &str, bytes: &[u8]) -> Result<()> {
        let path = self.user_path(user);
        self.with_retry("file_append", || {
            use std::io::Write;
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)?;
            f.write_all(bytes)?;
            Ok(())
        })?;
        self.ship
            .emit(ShipKind::Append, &Self::file_name(&path), bytes);
        Ok(())
    }
}

impl VaultStore for FileStore {
    fn put(&self, user: &str, entry: StoredEntry) -> Result<()> {
        let _g = self.lock.lock().unwrap();
        self.append_bytes(user, &wal::encode_record(&Self::record_body(&entry)))
    }

    fn put_many(&self, items: Vec<(String, StoredEntry)>) -> Result<()> {
        // One lock acquisition and one file open per distinct user for the
        // whole batch: entries are grouped by user (stably, so per-user
        // order is preserved) and appended as a single concatenated write.
        let _g = self.lock.lock().unwrap();
        let mut grouped: Vec<(String, BytesMut)> = Vec::new();
        for (user, entry) in items {
            let record = wal::encode_record(&Self::record_body(&entry));
            match grouped.iter_mut().find(|(u, _)| *u == user) {
                Some((_, buf)) => buf.put_slice(&record),
                None => {
                    let mut buf = BytesMut::new();
                    buf.put_slice(&record);
                    grouped.push((user, buf));
                }
            }
        }
        for (user, buf) in grouped {
            self.append_bytes(&user, buf.as_ref())?;
        }
        Ok(())
    }

    fn list(&self, user: &str) -> Result<Vec<StoredEntry>> {
        let _g = self.lock.lock().unwrap();
        self.read_all(&self.user_path(user))
    }

    fn users(&self) -> Result<Vec<String>> {
        let _g = self.lock.lock().unwrap();
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "bin") {
                if let Some(user) = Self::user_from_path(&path) {
                    out.push(user);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn remove(&self, user: &str, disguise_id: u64) -> Result<usize> {
        let _g = self.lock.lock().unwrap();
        let path = self.user_path(user);
        let mut entries = self.read_all(&path)?;
        let before = entries.len();
        entries.retain(|e| e.meta.disguise_id != disguise_id);
        let removed = before - entries.len();
        if removed > 0 {
            self.write_all(&path, &entries)?;
        }
        Ok(removed)
    }

    fn purge_expired(&self, now: i64) -> Result<usize> {
        let users = self.users()?;
        let _g = self.lock.lock().unwrap();
        let mut purged = 0;
        for user in users {
            let path = self.user_path(&user);
            let mut entries = self.read_all(&path)?;
            let before = entries.len();
            entries.retain(|e| !e.meta.is_expired(now));
            if entries.len() != before {
                purged += before - entries.len();
                self.write_all(&path, &entries)?;
            }
        }
        Ok(purged)
    }

    fn entry_count(&self) -> Result<usize> {
        let users = self.users()?;
        let mut n = 0;
        for user in users {
            n += self.list(&user)?.len();
        }
        Ok(n)
    }

    fn put_torn(&self, user: &str, entry: StoredEntry, keep: f64) -> Result<()> {
        let _g = self.lock.lock().unwrap();
        let record = wal::encode_record(&Self::record_body(&entry));
        // Keep at least nothing and strictly less than the whole record,
        // so the write is really torn.
        let cut = ((record.len() as f64 * keep) as usize).min(record.len() - 1);
        self.append_bytes(user, &record[..cut])
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            retries: self.retries.load(Ordering::SeqCst),
            recovered_records: self.recovered_records.load(Ordering::SeqCst),
            truncated_bytes: self.truncated_bytes.load(Ordering::SeqCst),
        }
    }

    fn set_tracer(&self, tracer: Option<Tracer>) {
        *write_unpoisoned(&self.tracer) = tracer;
    }
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("root", &self.root)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryMeta;

    fn entry(id: u64, expires_at: Option<i64>) -> StoredEntry {
        StoredEntry {
            meta: EntryMeta {
                disguise_id: id,
                disguise_name: format!("d{id}"),
                created_at: 7,
                expires_at,
            },
            payload: vec![1, 2, 3, id as u8],
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("edna_vault_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persist_and_reload() {
        let dir = tempdir("persist");
        {
            let s = FileStore::open(&dir).unwrap();
            s.put("19", entry(1, None)).unwrap();
            s.put("19", entry(2, None)).unwrap();
            s.put("user'weird\"id", entry(3, None)).unwrap();
        }
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.list("19").unwrap().len(), 2);
        assert_eq!(s.list("19").unwrap()[0], entry(1, None));
        assert_eq!(s.list("user'weird\"id").unwrap().len(), 1);
        assert_eq!(
            s.users().unwrap().len(),
            2,
            "both user files should be discovered"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_many_groups_appends_per_user() {
        let dir = tempdir("put_many");
        let s = FileStore::open(&dir).unwrap();
        s.put("a", entry(1, None)).unwrap();
        s.put_many(vec![
            ("a".to_string(), entry(2, None)),
            ("b".to_string(), entry(3, None)),
            ("a".to_string(), entry(4, None)),
        ])
        .unwrap();
        // Per-user order is preserved and everything round-trips.
        assert_eq!(
            s.list("a").unwrap(),
            vec![entry(1, None), entry(2, None), entry(4, None)]
        );
        assert_eq!(s.list("b").unwrap(), vec![entry(3, None)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_rewrites_file() {
        let dir = tempdir("remove");
        let s = FileStore::open(&dir).unwrap();
        s.put("u", entry(1, None)).unwrap();
        s.put("u", entry(2, None)).unwrap();
        assert_eq!(s.remove("u", 1).unwrap(), 1);
        assert_eq!(s.list("u").unwrap(), vec![entry(2, None)]);
        // Removing the last entry deletes the file (user disappears).
        assert_eq!(s.remove("u", 2).unwrap(), 1);
        assert!(s.users().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn purge_expired_on_disk() {
        let dir = tempdir("purge");
        let s = FileStore::open(&dir).unwrap();
        s.put("u", entry(1, Some(10))).unwrap();
        s.put("u", entry(2, None)).unwrap();
        assert_eq!(s.purge_expired(10).unwrap(), 1);
        assert_eq!(s.entry_count().unwrap(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tempdir("torn");
        let s = FileStore::open(&dir).unwrap();
        s.put("u", entry(1, None)).unwrap();
        s.put("u", entry(2, None)).unwrap();
        let path = s.user_path("u");
        let full = fs::read(&path).unwrap();
        // Tear the file at every point inside the second record: the first
        // record must always survive, and a reload must settle the file.
        let first_record_len = {
            let scan = wal::scan_records(&full);
            assert_eq!(scan.records.len(), 2);
            let mut one = BytesMut::new();
            wal::append_record(&mut one, &scan.records[0]);
            one.len()
        };
        // Strictly inside the second record: a cut at the boundary is a
        // complete file, not a torn one.
        for cut in first_record_len + 1..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let s = FileStore::open(&dir).unwrap();
            let got = s.list("u").unwrap();
            assert_eq!(got, vec![entry(1, None)], "cut at {cut}");
            assert_eq!(
                fs::metadata(&path).unwrap().len(),
                first_record_len as u64,
                "file truncated back to the last complete record at cut {cut}"
            );
            let stats = s.stats();
            assert_eq!(stats.recovered_records, 1);
            assert_eq!(stats.truncated_bytes as usize, cut - first_record_len);
            // After recovery, appends resume cleanly.
            s.put("u", entry(3, None)).unwrap();
            assert_eq!(s.list("u").unwrap().len(), 2);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_torn_leaves_recoverable_tail() {
        let dir = tempdir("put_torn");
        let s = FileStore::open(&dir).unwrap();
        s.put("u", entry(1, None)).unwrap();
        for keep in [0.0, 0.33, 0.5, 0.9, 1.0] {
            s.put_torn("u", entry(2, None), keep).unwrap();
            // The torn record is invisible and gets truncated away.
            assert_eq!(s.list("u").unwrap(), vec![entry(1, None)], "keep {keep}");
        }
        assert!(s.stats().truncated_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explicit_recover_sweeps_all_users() {
        let dir = tempdir("recover");
        let s = FileStore::open(&dir).unwrap();
        s.put("a", entry(1, None)).unwrap();
        s.put_torn("a", entry(2, None), 0.5).unwrap();
        s.put("b", entry(3, None)).unwrap();
        drop(s);
        let s = FileStore::open(&dir).unwrap();
        let torn = s.recover().unwrap();
        assert!(torn > 0);
        assert_eq!(s.recover().unwrap(), 0, "second pass finds nothing");
        assert_eq!(s.entry_count().unwrap(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_files_are_swept_on_open() {
        let dir = tempdir("tmp_sweep");
        let s = FileStore::open(&dir).unwrap();
        s.put("u", entry(1, None)).unwrap();
        let tmp = s.user_path("u").with_extension("tmp");
        fs::write(&tmp, b"half a rewrite").unwrap();
        drop(s);
        let s = FileStore::open(&dir).unwrap();
        assert!(!tmp.exists(), "crashed rewrite's temp file is removed");
        assert_eq!(s.list("u").unwrap(), vec![entry(1, None)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_mid_file_stops_at_first_bad_record() {
        let dir = tempdir("bitflip");
        let s = FileStore::open(&dir).unwrap();
        s.put("u", entry(1, None)).unwrap();
        s.put("u", entry(2, None)).unwrap();
        let path = s.user_path("u");
        let mut data = fs::read(&path).unwrap();
        // Flip a byte in the first record's body: nothing can be trusted.
        data[6] ^= 0xFF;
        fs::write(&path, &data).unwrap();
        assert!(s.list("u").unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
