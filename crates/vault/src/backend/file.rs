//! File-backed vault store: the offline-storage deployment model.
//!
//! Paper §4.2: "the records required to reverse account deletion might be
//! in offline storage". Each user's vault is one append-friendly file of
//! length-prefixed `(meta, payload)` records under a root directory. User
//! keys are hex-encoded into file names so arbitrary id renderings are
//! safe.

use std::fs;
use std::path::{Path, PathBuf};

use bytes::{Buf, Bytes, BytesMut};
use parking_lot::Mutex;

use crate::entry::{EntryMeta, StoredEntry};
use crate::error::Result;
use crate::serialize::{read_bytes, write_bytes};

use super::VaultStore;

/// A vault store persisting each user's entries to one file.
pub struct FileStore {
    root: PathBuf,
    // Serializes rewrites (remove/purge) against appends.
    lock: Mutex<()>,
}

impl FileStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<FileStore> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(FileStore {
            root,
            lock: Mutex::new(()),
        })
    }

    fn user_path(&self, user: &str) -> PathBuf {
        let hex: String = user.bytes().map(|b| format!("{b:02x}")).collect();
        self.root.join(format!("vault_{hex}.bin"))
    }

    fn user_from_path(path: &Path) -> Option<String> {
        let stem = path.file_stem()?.to_str()?;
        let hex = stem.strip_prefix("vault_")?;
        if hex.len() % 2 != 0 {
            return None;
        }
        let bytes: Option<Vec<u8>> = (0..hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).ok())
            .collect();
        String::from_utf8(bytes?).ok()
    }

    fn read_all(&self, path: &Path) -> Result<Vec<StoredEntry>> {
        let data = match fs::read(path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut buf = Bytes::from(data);
        let mut out = Vec::new();
        while buf.has_remaining() {
            let meta_bytes = read_bytes(&mut buf)?;
            let payload = read_bytes(&mut buf)?;
            let mut mb = Bytes::from(meta_bytes);
            let meta = EntryMeta::decode(&mut mb)?;
            out.push(StoredEntry { meta, payload });
        }
        Ok(out)
    }

    fn write_all(&self, path: &Path, entries: &[StoredEntry]) -> Result<()> {
        if entries.is_empty() {
            match fs::remove_file(path) {
                Ok(()) => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
        let mut buf = BytesMut::new();
        for e in entries {
            write_bytes(&mut buf, &e.meta.encode());
            write_bytes(&mut buf, &e.payload);
        }
        // Write-then-rename for crash atomicity.
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, &buf)?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    fn record_bytes(entry: &StoredEntry) -> Vec<u8> {
        let mut buf = BytesMut::new();
        write_bytes(&mut buf, &entry.meta.encode());
        write_bytes(&mut buf, &entry.payload);
        buf.to_vec()
    }
}

impl VaultStore for FileStore {
    fn put(&self, user: &str, entry: StoredEntry) -> Result<()> {
        let _g = self.lock.lock();
        let path = self.user_path(user);
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(&Self::record_bytes(&entry))?;
        Ok(())
    }

    fn list(&self, user: &str) -> Result<Vec<StoredEntry>> {
        let _g = self.lock.lock();
        self.read_all(&self.user_path(user))
    }

    fn users(&self) -> Result<Vec<String>> {
        let _g = self.lock.lock();
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "bin") {
                if let Some(user) = Self::user_from_path(&path) {
                    out.push(user);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn remove(&self, user: &str, disguise_id: u64) -> Result<usize> {
        let _g = self.lock.lock();
        let path = self.user_path(user);
        let mut entries = self.read_all(&path)?;
        let before = entries.len();
        entries.retain(|e| e.meta.disguise_id != disguise_id);
        let removed = before - entries.len();
        if removed > 0 {
            self.write_all(&path, &entries)?;
        }
        Ok(removed)
    }

    fn purge_expired(&self, now: i64) -> Result<usize> {
        let users = self.users()?;
        let _g = self.lock.lock();
        let mut purged = 0;
        for user in users {
            let path = self.user_path(&user);
            let mut entries = self.read_all(&path)?;
            let before = entries.len();
            entries.retain(|e| !e.meta.is_expired(now));
            if entries.len() != before {
                purged += before - entries.len();
                self.write_all(&path, &entries)?;
            }
        }
        Ok(purged)
    }

    fn entry_count(&self) -> Result<usize> {
        let users = self.users()?;
        let mut n = 0;
        for user in users {
            n += self.list(&user)?.len();
        }
        Ok(n)
    }
}

/// Maps malformed vault files to codec errors rather than panicking.
impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("root", &self.root)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryMeta;

    fn entry(id: u64, expires_at: Option<i64>) -> StoredEntry {
        StoredEntry {
            meta: EntryMeta {
                disguise_id: id,
                disguise_name: format!("d{id}"),
                created_at: 7,
                expires_at,
            },
            payload: vec![1, 2, 3, id as u8],
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("edna_vault_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persist_and_reload() {
        let dir = tempdir("persist");
        {
            let s = FileStore::open(&dir).unwrap();
            s.put("19", entry(1, None)).unwrap();
            s.put("19", entry(2, None)).unwrap();
            s.put("user'weird\"id", entry(3, None)).unwrap();
        }
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.list("19").unwrap().len(), 2);
        assert_eq!(s.list("19").unwrap()[0], entry(1, None));
        assert_eq!(s.list("user'weird\"id").unwrap().len(), 1);
        assert_eq!(
            s.users().unwrap().len(),
            2,
            "both user files should be discovered"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_rewrites_file() {
        let dir = tempdir("remove");
        let s = FileStore::open(&dir).unwrap();
        s.put("u", entry(1, None)).unwrap();
        s.put("u", entry(2, None)).unwrap();
        assert_eq!(s.remove("u", 1).unwrap(), 1);
        assert_eq!(s.list("u").unwrap(), vec![entry(2, None)]);
        // Removing the last entry deletes the file (user disappears).
        assert_eq!(s.remove("u", 2).unwrap(), 1);
        assert!(s.users().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn purge_expired_on_disk() {
        let dir = tempdir("purge");
        let s = FileStore::open(&dir).unwrap();
        s.put("u", entry(1, Some(10))).unwrap();
        s.put("u", entry(2, None)).unwrap();
        assert_eq!(s.purge_expired(10).unwrap(), 1);
        assert_eq!(s.entry_count().unwrap(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_an_error() {
        let dir = tempdir("corrupt");
        let s = FileStore::open(&dir).unwrap();
        s.put("u", entry(1, None)).unwrap();
        let path = s.user_path("u");
        let mut data = fs::read(&path).unwrap();
        data.truncate(data.len() - 1);
        fs::write(&path, data).unwrap();
        assert!(s.list("u").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
