//! Replication tap for vault-side files.
//!
//! The relational WAL replicates itself frame by frame, but the vault
//! tiers and the pending-write journal are separate append-only files
//! outside the log. A [`ShipSlot`] is the choke point that lets a
//! replication hub observe every durable mutation of those files — as
//! raw bytes, *below* the encryption layer, so encrypted payloads ship
//! sealed and a follower needs no key material to mirror them.
//!
//! Two event shapes cover every mutation the file backends perform:
//!
//! - [`ShipKind::Append`]: `bytes` were appended to the named file
//!   (entry puts, journal appends);
//! - [`ShipKind::Replace`]: the named file now contains exactly `bytes`
//!   (entry removal / expiry purges and journal compaction rewrite via
//!   temp-file + rename; empty `bytes` means the file was removed).
//!
//! Hooks run synchronously inside the store's lock, after the mutation
//! is durable locally — they must only enqueue, never block.

use std::sync::{Arc, RwLock};

use edna_util::sync::{read_unpoisoned, write_unpoisoned};

/// How a shipped mutation changes the receiving file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipKind {
    /// The bytes are appended to the file.
    Append,
    /// The file is replaced wholesale with the bytes (empty = removed).
    Replace,
}

/// The hook signature: `(kind, file name, bytes)`. The file name is the
/// bare name within the emitting store's directory (e.g.
/// `vault_3139.bin` or `pending.journal`); the installer is expected to
/// wrap the hook with whatever tier prefix it needs.
pub type ShipFn = dyn Fn(ShipKind, &str, &[u8]) + Send + Sync;

/// A shared, late-bindable hook slot. File backends are constructed
/// before any replication hub exists and are then moved behind trait
/// objects, so they hand out a clone of this slot at construction time;
/// installing a hook later reaches the live store through it.
#[derive(Clone, Default)]
pub struct ShipSlot {
    hook: Arc<RwLock<Option<Arc<ShipFn>>>>,
}

impl ShipSlot {
    /// A slot with no hook installed.
    pub fn new() -> ShipSlot {
        ShipSlot::default()
    }

    /// Installs (or with `None` removes) the hook.
    pub fn install(&self, hook: Option<Arc<ShipFn>>) {
        *write_unpoisoned(&self.hook) = hook;
    }

    /// Emits one mutation to the installed hook, if any.
    pub fn emit(&self, kind: ShipKind, name: &str, bytes: &[u8]) {
        if let Some(h) = read_unpoisoned(&self.hook).as_ref() {
            h(kind, name, bytes);
        }
    }
}

impl std::fmt::Debug for ShipSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShipSlot")
            .field("installed", &read_unpoisoned(&self.hook).is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    type SeenLog = Arc<Mutex<Vec<(ShipKind, String, Vec<u8>)>>>;

    #[test]
    fn emit_reaches_installed_hook_and_uninstall_stops_it() {
        let slot = ShipSlot::new();
        let seen: SeenLog = Arc::new(Mutex::new(Vec::new()));
        slot.emit(ShipKind::Append, "quiet", b"dropped"); // no hook yet
        let sink = Arc::clone(&seen);
        slot.install(Some(Arc::new(move |kind, name, bytes: &[u8]| {
            sink.lock()
                .unwrap()
                .push((kind, name.to_string(), bytes.to_vec()));
        })));
        let clone = slot.clone(); // clones share the slot
        clone.emit(ShipKind::Append, "a.bin", b"xy");
        slot.emit(ShipKind::Replace, "b.bin", b"");
        slot.install(None);
        slot.emit(ShipKind::Append, "late", b"dropped");
        let seen = seen.lock().unwrap();
        assert_eq!(
            *seen,
            vec![
                (ShipKind::Append, "a.bin".to_string(), b"xy".to_vec()),
                (ShipKind::Replace, "b.bin".to_string(), Vec::new()),
            ]
        );
    }
}
