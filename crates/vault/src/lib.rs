//! `edna-vault`: secure storage for reveal functions.
//!
//! Vaults (paper §4.2) are "storage locations not accessible to application
//! queries that store reveal functions for applied disguises". This crate
//! provides:
//!
//! - typed vault entries ([`VaultEntry`]) holding [`RevealOp`]s, with a
//!   compact self-contained binary codec;
//! - deployment models as pluggable stores: in-memory (application-
//!   adjacent), file-backed (offline), and a simulated third-party service
//!   with latency and approval gating;
//! - optional encryption at rest (ChaCha20 + HMAC-SHA-256, from scratch)
//!   with 2-of-3 Shamir threshold key escrow among user / application /
//!   third party (footnote 1);
//! - the multi-tier design ([`TieredVault`]): global tier for bulk
//!   disguises, external per-user encrypted tier for user-invoked ones;
//! - entry expiry, making the corresponding disguises irreversible;
//! - robustness plumbing: seedable fault injection ([`FaultPlan`]),
//!   bounded retry with deterministic jitter ([`RetryPolicy`]), a durable
//!   spool for vault writes that could not reach their backend
//!   ([`VaultJournal`]), and crash-consistent checksummed record framing
//!   with torn-tail recovery ([`wal`]).
//!
//! # Examples
//!
//! ```
//! use edna_vault::{backend::MemoryStore, RevealOp, Vault, VaultEntry};
//! use edna_relational::Value;
//!
//! let vault = Vault::encrypted(MemoryStore::new(), 42);
//! vault.put(&VaultEntry {
//!     disguise_id: 1,
//!     disguise_name: "GDPR".into(),
//!     user_id: Value::Int(19),
//!     ops: vec![RevealOp::ReinsertRow {
//!         table: "users".into(),
//!         columns: vec!["id".into(), "name".into()],
//!         row: vec![Value::Int(19), Value::Text("Bea".into())],
//!     }],
//!     created_at: 0,
//!     expires_at: None,
//! }).unwrap();
//! assert_eq!(vault.entries_for(&Value::Int(19)).unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod crypto;
pub mod entry;
pub mod error;
pub mod journal;
pub mod retry;
pub mod serialize;
pub mod shamir;
pub mod ship;
pub mod tiered;
pub mod vault;
pub mod wal;

pub use backend::{
    FaultPlan, FaultyStore, FileStore, MemoryStore, StoreStats, ThirdPartyStore, VaultStore,
    GLOBAL_USER,
};
pub use crypto::VaultKey;
pub use entry::{EntryMeta, RevealOp, StoredEntry, VaultEntry};
pub use error::{Error, ErrorClass, Result};
pub use journal::VaultJournal;
pub use retry::RetryPolicy;
pub use shamir::{recover, split, Share, ThresholdKey};
pub use ship::{ShipFn, ShipKind, ShipSlot};
pub use tiered::{TieredVault, VaultTier};
pub use vault::Vault;
