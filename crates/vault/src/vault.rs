//! The typed vault façade: reveal-function storage with optional
//! per-user encryption and threshold key escrow.

use std::collections::HashMap;

use edna_util::rng::Prng;
use edna_util::sync::{read_unpoisoned, write_unpoisoned};
use std::sync::{Mutex, RwLock};

use edna_obs::Tracer;
use edna_relational::Value;

use crate::backend::{VaultStore, GLOBAL_USER};
use crate::crypto::{open, seal, VaultKey};
use crate::entry::{StoredEntry, VaultEntry};
use crate::error::{Error, Result};
use crate::shamir::ThresholdKey;

/// How payloads are protected at rest.
enum Protection {
    /// Plaintext payloads — the paper prototype's "(currently unencrypted)
    /// per-user database tables" (§5).
    Plain,
    /// Per-user ChaCha20 + HMAC sealed payloads with 2-of-3 threshold key
    /// escrow among user / application / third party (§4.2, footnote 1).
    Encrypted {
        keys: Mutex<HashMap<String, UserKeys>>,
        rng: Mutex<Prng>,
    },
    /// Per-user keys derived from a passphrase (KDF over passphrase and
    /// user key), so the vault can be reopened across processes (used by
    /// the CLI). No escrow: the passphrase is the root secret.
    Derived {
        passphrase: String,
        rng: Mutex<Prng>,
    },
}

/// Key material tracked per user in an encrypted vault.
struct UserKeys {
    key: VaultKey,
    escrow: ThresholdKey,
}

/// A vault: typed [`VaultEntry`] storage over any [`VaultStore`] backend.
pub struct Vault {
    store: Box<dyn VaultStore>,
    protection: Protection,
    tracer: RwLock<Option<Tracer>>,
}

impl Vault {
    /// Creates an unencrypted vault over `store`.
    pub fn plain(store: impl VaultStore + 'static) -> Vault {
        Vault {
            store: Box::new(store),
            protection: Protection::Plain,
            tracer: RwLock::new(None),
        }
    }

    /// Creates an encrypted vault over `store`; per-user keys are generated
    /// on first use and 2-of-3 escrowed. `seed` makes tests and benches
    /// reproducible.
    pub fn encrypted(store: impl VaultStore + 'static, seed: u64) -> Vault {
        Vault {
            store: Box::new(store),
            protection: Protection::Encrypted {
                keys: Mutex::new(HashMap::new()),
                rng: Mutex::new(Prng::seed_from_u64(seed)),
            },
            tracer: RwLock::new(None),
        }
    }

    /// Creates an encrypted vault whose per-user keys are derived from
    /// `passphrase`, so the same vault can be reopened by a later process
    /// holding the passphrase. `seed` drives the sealing nonces.
    pub fn encrypted_derived(
        store: impl VaultStore + 'static,
        passphrase: &str,
        seed: u64,
    ) -> Vault {
        Vault {
            store: Box::new(store),
            protection: Protection::Derived {
                passphrase: passphrase.to_string(),
                rng: Mutex::new(Prng::seed_from_u64(seed)),
            },
            tracer: RwLock::new(None),
        }
    }

    /// Whether payloads are encrypted at rest.
    pub fn is_encrypted(&self) -> bool {
        matches!(
            self.protection,
            Protection::Encrypted { .. } | Protection::Derived { .. }
        )
    }

    /// Renders a user id as the store key.
    pub fn user_key(user_id: &Value) -> String {
        if user_id.is_null() {
            GLOBAL_USER.to_string()
        } else {
            user_id.to_sql_literal()
        }
    }

    /// Installs (or with `None` removes) a tracer: each stored entry emits
    /// a `vault_put` span, with backend I/O and retry spans nested inside
    /// it (the tracer is forwarded to the store).
    pub fn set_tracer(&self, tracer: Option<Tracer>) {
        self.store.set_tracer(tracer.clone());
        *write_unpoisoned(&self.tracer) = tracer;
    }

    /// Stores the reveal functions for one disguise application.
    pub fn put(&self, entry: &VaultEntry) -> Result<()> {
        let user = Self::user_key(&entry.user_id);
        let mut span = read_unpoisoned(&self.tracer).as_ref().map(|t| {
            let mut g = t.begin("vault_put");
            g.attr("user", user.as_str());
            g.attr("encrypted", self.is_encrypted().to_string());
            g
        });
        let (meta, payload) = entry.encode();
        let payload = self.seal_payload(&user, payload)?;
        let result = self.store.put(&user, StoredEntry { meta, payload });
        if let Some(g) = span.as_mut() {
            g.attr("ok", result.is_ok().to_string());
        }
        result
    }

    /// Stores a batch of entries in one backend round trip
    /// ([`VaultStore::put_many`]): payloads are sealed up front, then the
    /// store amortizes its per-call overhead across the whole batch. Not
    /// atomic — on error a prefix may already be stored (callers that
    /// retry should dedup, as `edna-core`'s journal flush does).
    pub fn put_all(&self, entries: &[VaultEntry]) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let mut span = read_unpoisoned(&self.tracer).as_ref().map(|t| {
            let mut g = t.begin("vault_put_batch");
            g.attr("entries", entries.len().to_string());
            g.attr("encrypted", self.is_encrypted().to_string());
            g
        });
        let mut items = Vec::with_capacity(entries.len());
        for entry in entries {
            let user = Self::user_key(&entry.user_id);
            let (meta, payload) = entry.encode();
            let payload = self.seal_payload(&user, payload)?;
            items.push((user, StoredEntry { meta, payload }));
        }
        let result = self.store.put_many(items);
        if let Some(g) = span.as_mut() {
            g.attr("ok", result.is_ok().to_string());
        }
        result
    }

    /// Seals `payload` for `user` per the vault's protection mode.
    fn seal_payload(&self, user: &str, payload: Vec<u8>) -> Result<Vec<u8>> {
        match &self.protection {
            Protection::Plain => Ok(payload),
            Protection::Encrypted { keys, rng } => {
                let mut rng = rng.lock().unwrap();
                let mut keys = keys.lock().unwrap();
                let uk = match keys.get(user) {
                    Some(uk) => uk,
                    None => {
                        let key = VaultKey::generate(&mut *rng);
                        let escrow = ThresholdKey::split_key(key.as_bytes(), &mut *rng)?;
                        keys.insert(user.to_string(), UserKeys { key, escrow });
                        keys.get(user).expect("just inserted")
                    }
                };
                Ok(seal(&uk.key, &payload, &mut *rng))
            }
            Protection::Derived { passphrase, rng } => {
                let key = VaultKey::derive(passphrase, user.as_bytes());
                let mut rng = rng.lock().unwrap();
                Ok(seal(&key, &payload, &mut *rng))
            }
        }
    }

    /// All decoded entries for `user_id`, oldest first.
    pub fn entries_for(&self, user_id: &Value) -> Result<Vec<VaultEntry>> {
        let user = Self::user_key(user_id);
        let stored = self.store.list(&user)?;
        stored.into_iter().map(|s| self.decode(&user, s)).collect()
    }

    /// The decoded entries for one `(user, disguise_id)` application.
    pub fn entries_for_disguise(
        &self,
        user_id: &Value,
        disguise_id: u64,
    ) -> Result<Vec<VaultEntry>> {
        Ok(self
            .entries_for(user_id)?
            .into_iter()
            .filter(|e| e.disguise_id == disguise_id)
            .collect())
    }

    /// All user store-keys with entries (including [`GLOBAL_USER`]).
    pub fn users(&self) -> Result<Vec<String>> {
        self.store.users()
    }

    /// Removes all entries for `(user, disguise_id)`; returns how many.
    pub fn remove(&self, user_id: &Value, disguise_id: u64) -> Result<usize> {
        self.store.remove(&Self::user_key(user_id), disguise_id)
    }

    /// Purges expired entries; the corresponding disguises become
    /// irreversible (paper §4.2).
    pub fn purge_expired(&self, now: i64) -> Result<usize> {
        self.store.purge_expired(now)
    }

    /// Total stored entries.
    pub fn entry_count(&self) -> Result<usize> {
        self.store.entry_count()
    }

    /// Total bytes at rest (metadata + possibly-sealed payloads).
    pub fn storage_bytes(&self) -> Result<usize> {
        self.store.storage_bytes()
    }

    /// The backend's operational counters (retries, crash recovery).
    pub fn store_stats(&self) -> crate::backend::StoreStats {
        self.store.stats()
    }

    /// For encrypted vaults: the user's escrow share (handed to the user or
    /// their cloud storage; the vault forgets nothing else about it).
    pub fn user_escrow_share(&self, user_id: &Value) -> Result<crate::shamir::Share> {
        match &self.protection {
            Protection::Plain | Protection::Derived { .. } => {
                Err(Error::Crypto("vault has no escrowed keys".to_string()))
            }
            Protection::Encrypted { keys, .. } => {
                let user = Self::user_key(user_id);
                keys.lock()
                    .unwrap()
                    .get(&user)
                    .map(|uk| uk.escrow.user_share.clone())
                    .ok_or(Error::NoKey(user))
            }
        }
    }

    /// Simulates key-loss recovery: reconstructs the user's vault key from
    /// the application share and the third-party share (footnote 1's
    /// authorization flow), returning it for verification.
    pub fn recover_key_via_escrow(&self, user_id: &Value) -> Result<VaultKey> {
        match &self.protection {
            Protection::Plain | Protection::Derived { .. } => {
                Err(Error::Crypto("vault has no escrowed keys".to_string()))
            }
            Protection::Encrypted { keys, .. } => {
                let user = Self::user_key(user_id);
                let keys = keys.lock().unwrap();
                let uk = keys.get(&user).ok_or(Error::NoKey(user))?;
                let bytes =
                    ThresholdKey::recover_key(&uk.escrow.app_share, &uk.escrow.third_party_share)?;
                let arr: [u8; 32] = bytes
                    .try_into()
                    .map_err(|_| Error::Crypto("recovered key has wrong length".to_string()))?;
                Ok(VaultKey::from_bytes(arr))
            }
        }
    }

    fn decode(&self, user: &str, stored: StoredEntry) -> Result<VaultEntry> {
        let payload = match &self.protection {
            Protection::Plain => stored.payload,
            Protection::Encrypted { keys, .. } => {
                let keys = keys.lock().unwrap();
                let uk = keys
                    .get(user)
                    .ok_or_else(|| Error::NoKey(user.to_string()))?;
                open(&uk.key, &stored.payload)?
            }
            Protection::Derived { passphrase, .. } => {
                let key = VaultKey::derive(passphrase, user.as_bytes());
                open(&key, &stored.payload)?
            }
        };
        VaultEntry::decode(&stored.meta, &payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryStore;
    use crate::entry::RevealOp;

    fn entry(user: i64, disguise_id: u64) -> VaultEntry {
        VaultEntry {
            disguise_id,
            disguise_name: "GDPR".to_string(),
            user_id: Value::Int(user),
            ops: vec![RevealOp::ReinsertRow {
                table: "users".to_string(),
                columns: vec!["id".to_string(), "name".to_string()],
                row: vec![Value::Int(user), Value::Text("bea".into())],
            }],
            created_at: 10,
            expires_at: None,
        }
    }

    #[test]
    fn plain_round_trip() {
        let v = Vault::plain(MemoryStore::new());
        v.put(&entry(19, 1)).unwrap();
        v.put(&entry(19, 2)).unwrap();
        let got = v.entries_for(&Value::Int(19)).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], entry(19, 1));
        assert_eq!(v.entries_for_disguise(&Value::Int(19), 2).unwrap().len(), 1);
    }

    #[test]
    fn encrypted_round_trip_and_at_rest_opacity() {
        let store = MemoryStore::new();
        // Keep a peek handle at the raw store via listing after the fact:
        // encode what we expect and ensure the stored payload differs.
        let v = Vault::encrypted(store, 7);
        let e = entry(19, 1);
        v.put(&e).unwrap();
        let got = v.entries_for(&Value::Int(19)).unwrap();
        assert_eq!(got, vec![e.clone()]);
        // The sealed payload at rest must not contain the plaintext name.
        let raw = v.store.list("19").unwrap();
        let (_, plain_payload) = e.encode();
        assert_ne!(raw[0].payload, plain_payload);
        assert!(raw[0].payload.len() > plain_payload.len());
    }

    #[test]
    fn put_all_round_trips_under_encryption() {
        let v = Vault::encrypted(MemoryStore::new(), 7);
        let batch = vec![entry(19, 1), entry(23, 2), entry(19, 3)];
        v.put_all(&batch).unwrap();
        assert_eq!(
            v.entries_for(&Value::Int(19)).unwrap(),
            vec![entry(19, 1), entry(19, 3)]
        );
        assert_eq!(v.entries_for(&Value::Int(23)).unwrap(), vec![entry(23, 2)]);
        // The batch path seals like the single path: payloads are opaque.
        let raw = v.store.list("23").unwrap();
        let (_, plain) = entry(23, 2).encode();
        assert_ne!(raw[0].payload, plain);
    }

    #[test]
    fn escrow_recovers_the_key() {
        let v = Vault::encrypted(MemoryStore::new(), 9);
        v.put(&entry(19, 1)).unwrap();
        let share = v.user_escrow_share(&Value::Int(19)).unwrap();
        assert!(!share.data.is_empty());
        let recovered = v.recover_key_via_escrow(&Value::Int(19)).unwrap();
        // The recovered key decrypts the stored entry.
        let raw = v.store.list("19").unwrap();
        let plain = crate::crypto::open(&recovered, &raw[0].payload).unwrap();
        let decoded = VaultEntry::decode(&raw[0].meta, &plain).unwrap();
        assert_eq!(decoded, entry(19, 1));
    }

    #[test]
    fn global_scope_uses_reserved_key() {
        let v = Vault::plain(MemoryStore::new());
        let mut e = entry(0, 5);
        e.user_id = Value::Null;
        v.put(&e).unwrap();
        assert_eq!(v.users().unwrap(), vec![GLOBAL_USER.to_string()]);
        assert_eq!(v.entries_for(&Value::Null).unwrap().len(), 1);
    }

    #[test]
    fn expiry_makes_disguise_irreversible() {
        let v = Vault::plain(MemoryStore::new());
        let mut e = entry(19, 1);
        e.expires_at = Some(100);
        v.put(&e).unwrap();
        assert_eq!(v.purge_expired(99).unwrap(), 0);
        assert_eq!(v.purge_expired(100).unwrap(), 1);
        assert!(v
            .entries_for_disguise(&Value::Int(19), 1)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn derived_vault_reopens_across_instances() {
        use crate::backend::FileStore;
        let dir = std::env::temp_dir().join(format!("edna_vault_derived_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let v = Vault::encrypted_derived(FileStore::open(&dir).unwrap(), "hunter2", 1);
            v.put(&entry(19, 1)).unwrap();
        }
        // A fresh instance with the same passphrase decrypts.
        let v2 = Vault::encrypted_derived(FileStore::open(&dir).unwrap(), "hunter2", 2);
        assert_eq!(v2.entries_for(&Value::Int(19)).unwrap(), vec![entry(19, 1)]);
        // The wrong passphrase fails.
        let bad = Vault::encrypted_derived(FileStore::open(&dir).unwrap(), "wrong", 3);
        assert!(bad.entries_for(&Value::Int(19)).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plain_vault_has_no_escrow() {
        let v = Vault::plain(MemoryStore::new());
        assert!(v.user_escrow_share(&Value::Int(1)).is_err());
        assert!(v.recover_key_via_escrow(&Value::Int(1)).is_err());
        assert!(!v.is_encrypted());
    }
}
