//! Bounded retry with exponential backoff for vault backends.
//!
//! Remote and filesystem vaults fail transiently (paper §4.2's third-party
//! and offline deployment models); a [`RetryPolicy`] retries those
//! failures with exponential backoff, deterministic jitter (seeded, so
//! tests reproduce), and an overall deadline. Permanent errors — see
//! [`Error::class`](crate::Error::class) — are never retried, and a policy
//! that gives up wraps the last error in
//! [`Error::RetriesExhausted`](crate::Error::RetriesExhausted) so callers
//! can observe the attempt count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use edna_obs::Tracer;
use edna_util::rng::{Rng, SplitMix64};

use crate::error::{Error, Result};

/// Bounded exponential backoff with deterministic jitter and a deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-attempts after the first try (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_delay: Duration,
    /// Cap on any single backoff (before jitter).
    pub max_delay: Duration,
    /// Overall budget from first try to giving up; once exceeded, no
    /// further retry is attempted even if `max_retries` remain.
    pub deadline: Duration,
    /// Seed for the jitter stream (deterministic across runs).
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries: every error surfaces immediately.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        base_delay: Duration::ZERO,
        max_delay: Duration::ZERO,
        deadline: Duration::ZERO,
        jitter_seed: 0,
    };

    /// Runs `op`, retrying transient failures per this policy. Each retry
    /// increments `retries` (shared with the store's
    /// [`StoreStats`](crate::backend::StoreStats)).
    pub fn run<T>(&self, retries: &AtomicU64, op: impl FnMut() -> Result<T>) -> Result<T> {
        self.run_traced(retries, None, "retry", op)
    }

    /// Like [`RetryPolicy::run`], additionally emitting one `label` span —
    /// covering the whole operation, all attempts and backoff sleeps
    /// included — with `retries`/`ok` attributes when a tracer is
    /// installed. The span parents under the innermost open guard span
    /// (typically a disguise phase or `vault_put`).
    pub fn run_traced<T>(
        &self,
        retries: &AtomicU64,
        tracer: Option<&Tracer>,
        label: &str,
        mut op: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        let start = Instant::now();
        let mut jitter = SplitMix64::new(self.jitter_seed);
        let mut attempt: u32 = 0;
        let result = loop {
            match op() {
                Ok(v) => break Ok(v),
                Err(e) if !e.is_transient() => break Err(e),
                Err(e) => {
                    if attempt >= self.max_retries || start.elapsed() >= self.deadline {
                        if attempt == 0 {
                            break Err(e);
                        }
                        break Err(Error::RetriesExhausted {
                            attempts: attempt + 1,
                            last: Box::new(e),
                        });
                    }
                    attempt += 1;
                    retries.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(self.backoff(attempt, &mut jitter, start));
                }
            }
        };
        if let Some(t) = tracer {
            t.record(
                t.current(),
                label,
                start,
                start.elapsed(),
                vec![
                    ("retries".to_string(), attempt.to_string()),
                    ("ok".to_string(), result.is_ok().to_string()),
                ],
            );
        }
        result
    }

    /// The sleep before retry number `attempt` (1-based): exponential from
    /// `base_delay`, capped at `max_delay`, plus up to 50% jitter, clamped
    /// so it never sleeps past the deadline.
    fn backoff(&self, attempt: u32, jitter: &mut SplitMix64, start: Instant) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_delay);
        let unit = (jitter.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let jittered = exp + exp.mul_f64(unit * 0.5);
        let remaining = self.deadline.saturating_sub(start.elapsed());
        jittered.min(remaining)
    }
}

impl Default for RetryPolicy {
    /// Four retries, 1 ms → 50 ms backoff, 1 s deadline — sized for the
    /// simulated backends in this workspace, not real networks.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            deadline: Duration::from_secs(1),
            jitter_seed: 0xED4A,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flaky(fail_first: u64) -> (impl FnMut() -> Result<u32>, std::sync::Arc<AtomicU64>) {
        let calls = std::sync::Arc::new(AtomicU64::new(0));
        let c = std::sync::Arc::clone(&calls);
        let op = move || {
            let n = c.fetch_add(1, Ordering::SeqCst);
            if n < fail_first {
                Err(Error::Unavailable(format!("outage {n}")))
            } else {
                Ok(7)
            }
        };
        (op, calls)
    }

    #[test]
    fn transient_failures_are_absorbed() {
        let retries = AtomicU64::new(0);
        let (op, calls) = flaky(2);
        let got = RetryPolicy::default().run(&retries, op).unwrap();
        assert_eq!(got, 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(retries.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let retries = AtomicU64::new(0);
        let err = RetryPolicy::default()
            .run::<()>(&retries, || Err(Error::Crypto("bad mac".into())))
            .unwrap_err();
        assert!(matches!(err, Error::Crypto(_)));
        assert_eq!(retries.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn exhaustion_reports_attempts() {
        let retries = AtomicU64::new(0);
        let policy = RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_micros(200),
            deadline: Duration::from_secs(5),
            jitter_seed: 1,
        };
        let err = policy
            .run::<()>(&retries, || Err(Error::Unavailable("down".into())))
            .unwrap_err();
        match err {
            Error::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 4, "1 try + 3 retries");
                assert!(matches!(*last, Error::Unavailable(_)));
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        assert_eq!(retries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn deadline_bounds_total_time() {
        let retries = AtomicU64::new(0);
        let policy = RetryPolicy {
            max_retries: u32::MAX,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
            deadline: Duration::from_millis(60),
            jitter_seed: 2,
        };
        let start = Instant::now();
        let err = policy
            .run::<()>(&retries, || Err(Error::Unavailable("down".into())))
            .unwrap_err();
        let took = start.elapsed();
        assert!(matches!(err, Error::RetriesExhausted { .. }));
        // Bounded: the deadline plus at most one max_delay backoff.
        assert!(took < Duration::from_millis(500), "took {took:?}");
        assert!(retries.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn none_policy_never_retries() {
        let retries = AtomicU64::new(0);
        let (op, calls) = flaky(1);
        let err = RetryPolicy::NONE.run(&retries, op).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(retries.load(Ordering::SeqCst), 0);
    }
}
