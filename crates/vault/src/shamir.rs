//! Shamir secret sharing over GF(2⁸).
//!
//! Implements the paper's footnote 1: "the vault could be threshold
//! encrypted with a private key secret-shared between the user, the web
//! application, and a trusted third party (e.g., the EFF), so that the user
//! can authorize the application and the third party to decrypt."
//!
//! Each secret byte is shared independently with a random polynomial of
//! degree `threshold - 1`; share `i` evaluates the polynomial at `x = i`.
//! Recovery uses Lagrange interpolation at `x = 0`.

use edna_util::rng::Rng;

use crate::error::{Error, Result};

/// One share: the evaluation point (`x != 0`) plus one byte per secret byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Share {
    /// The evaluation point (1-based share index).
    pub x: u8,
    /// Share payload, one byte per secret byte.
    pub data: Vec<u8>,
}

// GF(2^8) arithmetic with the AES polynomial x^8 + x^4 + x^3 + x + 1.

fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

fn gf_pow(mut a: u8, mut n: u8) -> u8 {
    let mut out = 1u8;
    while n > 0 {
        if n & 1 != 0 {
            out = gf_mul(out, a);
        }
        a = gf_mul(a, a);
        n >>= 1;
    }
    out
}

fn gf_inv(a: u8) -> u8 {
    // a^254 = a^-1 in GF(2^8) for a != 0.
    debug_assert_ne!(a, 0, "inverse of zero");
    gf_pow(a, 254)
}

/// Splits `secret` into `shares` shares, any `threshold` of which recover it.
///
/// # Errors
///
/// Fails if `threshold` is 0, exceeds `shares`, or `shares > 255`.
pub fn split(secret: &[u8], shares: u8, threshold: u8, rng: &mut impl Rng) -> Result<Vec<Share>> {
    if threshold == 0 || threshold > shares {
        return Err(Error::Crypto(format!(
            "invalid threshold {threshold} for {shares} shares"
        )));
    }
    let mut out: Vec<Share> = (1..=shares)
        .map(|x| Share {
            x,
            data: Vec::with_capacity(secret.len()),
        })
        .collect();
    let mut coeffs = vec![0u8; threshold as usize];
    for &byte in secret {
        coeffs[0] = byte;
        for c in coeffs.iter_mut().skip(1) {
            let mut b = [0u8; 1];
            rng.fill_bytes(&mut b);
            *c = b[0];
        }
        for share in out.iter_mut() {
            // Horner evaluation at x = share.x.
            let mut y = 0u8;
            for &c in coeffs.iter().rev() {
                y = gf_mul(y, share.x) ^ c;
            }
            share.data.push(y);
        }
    }
    Ok(out)
}

/// Recovers the secret from at least `threshold` distinct shares.
///
/// With fewer than the original threshold the result is garbage (but no
/// error — Shamir cannot detect it); with inconsistent share lengths or
/// duplicate `x` values an error is returned.
pub fn recover(shares: &[Share]) -> Result<Vec<u8>> {
    let Some(first) = shares.first() else {
        return Err(Error::Crypto("no shares provided".to_string()));
    };
    let len = first.data.len();
    for s in shares {
        if s.data.len() != len {
            return Err(Error::Crypto("share length mismatch".to_string()));
        }
        if s.x == 0 {
            return Err(Error::Crypto("share with x = 0 is invalid".to_string()));
        }
    }
    for (i, a) in shares.iter().enumerate() {
        if shares[..i].iter().any(|b| b.x == a.x) {
            return Err(Error::Crypto(format!("duplicate share index {}", a.x)));
        }
    }
    let mut secret = Vec::with_capacity(len);
    for byte_idx in 0..len {
        let mut acc = 0u8;
        for (j, sj) in shares.iter().enumerate() {
            // Lagrange basis at x = 0.
            let mut num = 1u8;
            let mut den = 1u8;
            for (m, sm) in shares.iter().enumerate() {
                if m == j {
                    continue;
                }
                num = gf_mul(num, sm.x);
                den = gf_mul(den, sm.x ^ sj.x);
            }
            let basis = gf_mul(num, gf_inv(den));
            acc ^= gf_mul(sj.data[byte_idx], basis);
        }
        secret.push(acc);
    }
    Ok(secret)
}

/// The three-party deployment of footnote 1: user, application, and a
/// trusted third party each hold one share; any two can recover.
#[derive(Debug, Clone)]
pub struct ThresholdKey {
    /// Share held by the user.
    pub user_share: Share,
    /// Share held by the web application.
    pub app_share: Share,
    /// Share held by the trusted third party (e.g. the EFF).
    pub third_party_share: Share,
}

impl ThresholdKey {
    /// Splits `key_bytes` 2-of-3 among user, application, and third party.
    pub fn split_key(key_bytes: &[u8], rng: &mut impl Rng) -> Result<ThresholdKey> {
        let mut shares = split(key_bytes, 3, 2, rng)?;
        let third_party_share = shares.pop().expect("3 shares");
        let app_share = shares.pop().expect("2 shares");
        let user_share = shares.pop().expect("1 share");
        Ok(ThresholdKey {
            user_share,
            app_share,
            third_party_share,
        })
    }

    /// Recovers the key from any two of the three shares.
    pub fn recover_key(a: &Share, b: &Share) -> Result<Vec<u8>> {
        recover(&[a.clone(), b.clone()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edna_util::rng::Prng;

    #[test]
    fn gf_field_axioms_spotcheck() {
        // Known AES field product: 0x57 * 0x83 = 0xc1.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        for a in 1u8..=255 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse failed for {a}");
        }
    }

    #[test]
    fn split_recover_exact_threshold() {
        let mut rng = Prng::seed_from_u64(7);
        let secret = b"vault master key material!".to_vec();
        let shares = split(&secret, 5, 3, &mut rng).unwrap();
        let rec = recover(&shares[1..4]).unwrap();
        assert_eq!(rec, secret);
    }

    #[test]
    fn recover_with_all_shares() {
        let mut rng = Prng::seed_from_u64(8);
        let secret = vec![0u8, 255, 17, 42];
        let shares = split(&secret, 4, 2, &mut rng).unwrap();
        assert_eq!(recover(&shares).unwrap(), secret);
    }

    #[test]
    fn below_threshold_does_not_recover() {
        let mut rng = Prng::seed_from_u64(9);
        let secret = b"super secret".to_vec();
        let shares = split(&secret, 5, 3, &mut rng).unwrap();
        let rec = recover(&shares[..2]).unwrap();
        assert_ne!(rec, secret);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut rng = Prng::seed_from_u64(10);
        assert!(split(b"s", 3, 0, &mut rng).is_err());
        assert!(split(b"s", 2, 3, &mut rng).is_err());
    }

    #[test]
    fn malformed_shares_rejected() {
        let mut rng = Prng::seed_from_u64(11);
        let shares = split(b"secret", 3, 2, &mut rng).unwrap();
        assert!(recover(&[]).is_err());
        let mut dup = vec![shares[0].clone(), shares[0].clone()];
        assert!(recover(&dup).is_err());
        dup[1] = Share {
            x: 2,
            data: vec![1],
        };
        assert!(recover(&dup).is_err());
        assert!(recover(&[Share {
            x: 0,
            data: vec![1, 2]
        }])
        .is_err());
    }

    #[test]
    fn threshold_key_two_of_three() {
        let mut rng = Prng::seed_from_u64(12);
        let key = vec![9u8; 32];
        let tk = ThresholdKey::split_key(&key, &mut rng).unwrap();
        // Any pair recovers.
        assert_eq!(
            ThresholdKey::recover_key(&tk.user_share, &tk.app_share).unwrap(),
            key
        );
        assert_eq!(
            ThresholdKey::recover_key(&tk.user_share, &tk.third_party_share).unwrap(),
            key
        );
        assert_eq!(
            ThresholdKey::recover_key(&tk.app_share, &tk.third_party_share).unwrap(),
            key
        );
    }
}
