//! Error types for the vault subsystem, with a transient/permanent
//! classification driving the retry policies of [`crate::retry`].

use std::fmt;

/// Any error produced by vault storage or crypto.
#[derive(Debug)]
#[allow(missing_docs)] // Field names are self-describing.
pub enum Error {
    /// Encryption, decryption, or secret-sharing failure.
    Crypto(String),
    /// Serialization or deserialization failure.
    Codec(String),
    /// Filesystem-backed vault I/O failure.
    Io(std::io::Error),
    /// No key material available for the given user.
    NoKey(String),
    /// The requested entry does not exist (e.g. expired and purged).
    NoSuchEntry { user: String, disguise_id: u64 },
    /// The backend is temporarily unreachable or cannot serve the request
    /// right now (simulated outage, service brown-out). Safe to retry.
    Unavailable(String),
    /// A fault injected by a [`crate::backend::FaultPlan`] during testing.
    Injected {
        op: String,
        index: u64,
        transient: bool,
    },
    /// A retry loop gave up: attempts or the overall deadline were
    /// exhausted. Wraps the last underlying error.
    RetriesExhausted { attempts: u32, last: Box<Error> },
    /// An error bubbled up from the relational engine.
    Relational(edna_relational::Error),
}

/// Whether an error is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The operation may succeed if retried (outage, I/O hiccup).
    Transient,
    /// Retrying cannot help (bad key, corrupt codec, missing entry).
    Permanent,
}

/// Whether an I/O error can be cured by retrying. A full disk or a
/// filesystem remounted read-only will fail the same way on every
/// attempt — retrying only delays the inevitable surfacing (and under
/// the `Buffer` vault policy would mask the condition until flush).
fn io_is_transient(e: &std::io::Error) -> bool {
    use std::io::ErrorKind;
    // StorageFull/ReadOnlyFilesystem are stable but ENOSPC/EROFS can
    // also surface as `Other`/`Uncategorized` on some platforms, so
    // check the raw errno too (28 = ENOSPC, 30 = EROFS on Linux).
    !matches!(
        e.kind(),
        ErrorKind::StorageFull | ErrorKind::ReadOnlyFilesystem | ErrorKind::PermissionDenied
    ) && !matches!(e.raw_os_error(), Some(28) | Some(30))
}

impl Error {
    /// Classifies this error for retry purposes.
    pub fn class(&self) -> ErrorClass {
        match self {
            Error::Io(e) => {
                if io_is_transient(e) {
                    ErrorClass::Transient
                } else {
                    ErrorClass::Permanent
                }
            }
            Error::Unavailable(_) => ErrorClass::Transient,
            Error::Injected { transient, .. } => {
                if *transient {
                    ErrorClass::Transient
                } else {
                    ErrorClass::Permanent
                }
            }
            _ => ErrorClass::Permanent,
        }
    }

    /// Whether a retry might succeed.
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Crypto(m) => write!(f, "crypto error: {m}"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Io(e) => write!(f, "vault I/O error: {e}"),
            Error::NoKey(u) => write!(f, "no vault key for user {u}"),
            Error::NoSuchEntry { user, disguise_id } => {
                write!(f, "no vault entry for user {user}, disguise {disguise_id}")
            }
            Error::Unavailable(m) => write!(f, "vault unavailable: {m}"),
            Error::Injected {
                op,
                index,
                transient,
            } => write!(
                f,
                "injected {} fault on vault op {op} (op index {index})",
                if *transient { "transient" } else { "permanent" }
            ),
            Error::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            Error::Relational(e) => write!(f, "relational error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::RetriesExhausted { last, .. } => Some(last),
            Error::Relational(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<edna_relational::Error> for Error {
    fn from(e: edna_relational::Error) -> Self {
        Error::Relational(e)
    }
}

/// Convenience alias used throughout the vault crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Error::Unavailable("down".into()).is_transient());
        assert!(Error::Io(std::io::Error::other("disk")).is_transient());
        // A full or read-only filesystem will not heal between retries.
        for kind in [
            std::io::ErrorKind::StorageFull,
            std::io::ErrorKind::ReadOnlyFilesystem,
            std::io::ErrorKind::PermissionDenied,
        ] {
            assert!(
                !Error::Io(std::io::Error::new(kind, "disk")).is_transient(),
                "{kind:?} must be permanent"
            );
        }
        // ENOSPC/EROFS recognized by errno even when the kind is opaque.
        assert!(!Error::Io(std::io::Error::from_raw_os_error(28)).is_transient());
        assert!(!Error::Io(std::io::Error::from_raw_os_error(30)).is_transient());
        assert!(Error::Io(std::io::Error::from_raw_os_error(5)).is_transient());
        assert!(!Error::Crypto("bad mac".into()).is_transient());
        assert!(!Error::NoKey("19".into()).is_transient());
        assert!(Error::Injected {
            op: "put".into(),
            index: 0,
            transient: true
        }
        .is_transient());
        assert!(!Error::Injected {
            op: "put".into(),
            index: 0,
            transient: false
        }
        .is_transient());
        // Giving up is terminal even if the last error was transient.
        assert!(!Error::RetriesExhausted {
            attempts: 3,
            last: Box::new(Error::Unavailable("still down".into()))
        }
        .is_transient());
    }
}
