//! Error types for the vault subsystem.

use std::fmt;

/// Any error produced by vault storage or crypto.
#[derive(Debug)]
#[allow(missing_docs)] // Field names are self-describing.
pub enum Error {
    /// Encryption, decryption, or secret-sharing failure.
    Crypto(String),
    /// Serialization or deserialization failure.
    Codec(String),
    /// Filesystem-backed vault I/O failure.
    Io(std::io::Error),
    /// No key material available for the given user.
    NoKey(String),
    /// The requested entry does not exist (e.g. expired and purged).
    NoSuchEntry { user: String, disguise_id: u64 },
    /// An error bubbled up from the relational engine.
    Relational(edna_relational::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Crypto(m) => write!(f, "crypto error: {m}"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Io(e) => write!(f, "vault I/O error: {e}"),
            Error::NoKey(u) => write!(f, "no vault key for user {u}"),
            Error::NoSuchEntry { user, disguise_id } => {
                write!(f, "no vault entry for user {user}, disguise {disguise_id}")
            }
            Error::Relational(e) => write!(f, "relational error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Relational(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<edna_relational::Error> for Error {
    fn from(e: edna_relational::Error) -> Self {
        Error::Relational(e)
    }
}

/// Convenience alias used throughout the vault crate.
pub type Result<T> = std::result::Result<T, Error>;
