//! Durable spool for vault writes that could not reach their backend.
//!
//! When a disguise is applied under the *buffer* failure policy
//! (`edna-core`'s `VaultFailurePolicy::Buffer`) and the vault backend is
//! down, the reveal functions are appended to this local journal instead
//! of being dropped: the disguise stays reversible, and the spooled
//! entries are pushed into the real vault later via
//! `Disguiser::flush_pending_vault_writes`. Entries are stored
//! *unencrypted* (encryption happens in [`crate::Vault::put`] at flush
//! time), so the journal should live on trusted local storage — the same
//! trust domain as the disguising tool itself.
//!
//! Operationally that plaintext spool matters: while entries sit in the
//! journal, the very data a disguise just removed from the database (the
//! reveal functions reconstruct it) is readable by anyone who can read
//! the file. Deployments should restrict the journal's filesystem
//! permissions to the disguising tool's user, exclude the spool path from
//! backups and log shipping, and flush promptly once the vault backend
//! recovers — `rewrite` compacts via a new temp file, so old plaintext
//! bytes may also survive in unallocated blocks until the filesystem
//! reuses them.
//!
//! The journal uses the checksummed record framing of [`crate::wal`]:
//! appends are fsynced, a torn tail from a crash mid-append is truncated
//! away at open, and compaction after a flush rewrites the file via
//! temp-file + atomic rename.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, RwLock};

use edna_obs::Tracer;
use edna_util::buf::{Bytes, BytesMut};
use edna_util::sync::{read_unpoisoned, write_unpoisoned};

use crate::entry::{EntryMeta, VaultEntry};
use crate::error::{Error, Result};
use crate::serialize::{read_bytes, write_bytes};
use crate::ship::{ShipKind, ShipSlot};
use crate::tiered::VaultTier;
use crate::wal;

/// A durable, checksummed spool of `(tier, entry)` pairs awaiting flush.
pub struct VaultJournal {
    path: PathBuf,
    lock: Mutex<()>,
    tracer: RwLock<Option<Tracer>>,
    /// Replication tap: spool appends and compaction rewrites are emitted
    /// here so a follower can mirror the journal file.
    ship: ShipSlot,
}

impl VaultJournal {
    /// Opens (creating if needed) the journal at `path`, truncating any
    /// torn tail a crash mid-append left behind.
    pub fn open(path: impl AsRef<Path>) -> Result<VaultJournal> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("tmp");
        if tmp.exists() {
            fs::remove_file(&tmp)?;
        }
        let journal = VaultJournal {
            path,
            lock: Mutex::new(()),
            tracer: RwLock::new(None),
            ship: ShipSlot::new(),
        };
        journal.recover()?;
        Ok(journal)
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A clone of this journal's replication tap slot (see
    /// [`crate::ship`]).
    pub fn ship_slot(&self) -> ShipSlot {
        self.ship.clone()
    }

    fn file_name(&self) -> String {
        self.path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    }

    /// Installs (or with `None` removes) a tracer; each append emits a
    /// `journal_append` span covering the fsynced write.
    pub fn set_tracer(&self, tracer: Option<Tracer>) {
        *write_unpoisoned(&self.tracer) = tracer;
    }

    /// Durably appends one pending vault write.
    pub fn append(&self, tier: VaultTier, entry: &VaultEntry) -> Result<()> {
        let mut span = read_unpoisoned(&self.tracer).as_ref().map(|t| {
            let mut g = t.begin("journal_append");
            g.attr("tier", format!("{tier:?}"));
            g
        });
        let _g = self.lock.lock().unwrap();
        use std::io::Write;
        let result = (|| -> Result<()> {
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)?;
            let framed = wal::encode_record(&Self::record_body(tier, entry));
            f.write_all(&framed)?;
            f.sync_all()?;
            self.ship.emit(ShipKind::Append, &self.file_name(), &framed);
            Ok(())
        })();
        if let Some(g) = span.as_mut() {
            g.attr("ok", result.is_ok().to_string());
        }
        result
    }

    /// Every spooled write, in append order.
    pub fn pending(&self) -> Result<Vec<(VaultTier, VaultEntry)>> {
        let _g = self.lock.lock().unwrap();
        self.read_records()?
            .iter()
            .map(|body| Self::decode_record(body))
            .collect()
    }

    /// Number of spooled writes.
    pub fn len(&self) -> Result<usize> {
        let _g = self.lock.lock().unwrap();
        Ok(self.read_records()?.len())
    }

    /// Whether nothing is spooled.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Replaces the journal contents with `remaining` (temp-file + atomic
    /// rename; an empty list removes the file). Used after a flush pushed
    /// a prefix of the pending writes into the vault.
    pub fn rewrite(&self, remaining: &[(VaultTier, VaultEntry)]) -> Result<()> {
        let _g = self.lock.lock().unwrap();
        if remaining.is_empty() {
            match fs::remove_file(&self.path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
            self.ship.emit(ShipKind::Replace, &self.file_name(), &[]);
            return Ok(());
        }
        let mut buf = BytesMut::new();
        for (tier, entry) in remaining {
            wal::append_record(&mut buf, &Self::record_body(*tier, entry));
        }
        let tmp = self.path.with_extension("tmp");
        {
            use std::io::Write;
            let mut f = fs::File::create(&tmp)?;
            f.write_all(buf.as_ref())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        self.ship
            .emit(ShipKind::Replace, &self.file_name(), buf.as_ref());
        Ok(())
    }

    /// Drops every spooled write belonging to `disguise_id`; returns how
    /// many were removed. Recovery calls this when it undoes a
    /// half-applied disguise — its buffered vault writes must not be
    /// flushed later.
    pub fn purge_disguise(&self, disguise_id: u64) -> Result<usize> {
        let pending = self.pending()?;
        let remaining: Vec<_> = pending
            .iter()
            .filter(|(_, e)| e.disguise_id != disguise_id)
            .cloned()
            .collect();
        let purged = pending.len() - remaining.len();
        if purged > 0 {
            self.rewrite(&remaining)?;
        }
        Ok(purged)
    }

    /// Truncates a torn tail, if any; returns the bytes discarded.
    fn recover(&self) -> Result<usize> {
        let _g = self.lock.lock().unwrap();
        let data = match fs::read(&self.path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e.into()),
        };
        let scan = wal::scan_records(&data);
        let torn = scan.torn_bytes(data.len());
        if torn > 0 {
            let f = fs::OpenOptions::new().write(true).open(&self.path)?;
            f.set_len(scan.valid_len as u64)?;
            f.sync_all()?;
        }
        Ok(torn)
    }

    /// Caller must hold `self.lock`. Tails torn *after* open (by a
    /// concurrent crash simulation) are ignored, not truncated.
    fn read_records(&self) -> Result<Vec<Vec<u8>>> {
        let data = match fs::read(&self.path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        Ok(wal::scan_records(&data).records)
    }

    fn record_body(tier: VaultTier, entry: &VaultEntry) -> Vec<u8> {
        let (meta, payload) = entry.encode();
        let mut buf = BytesMut::new();
        buf.put_u8(match tier {
            VaultTier::Global => 0,
            VaultTier::PerUser => 1,
        });
        write_bytes(&mut buf, &meta.encode());
        write_bytes(&mut buf, &payload);
        buf.to_vec()
    }

    fn decode_record(body: &[u8]) -> Result<(VaultTier, VaultEntry)> {
        let mut buf = Bytes::copy_from_slice(body);
        if !buf.has_remaining() {
            return Err(Error::Codec("empty journal record".to_string()));
        }
        let tier = match buf.get_u8() {
            0 => VaultTier::Global,
            1 => VaultTier::PerUser,
            t => return Err(Error::Codec(format!("unknown journal tier tag {t}"))),
        };
        let meta_bytes = read_bytes(&mut buf)?;
        let payload = read_bytes(&mut buf)?;
        let mut mb = Bytes::from(meta_bytes);
        let meta = EntryMeta::decode(&mut mb)?;
        Ok((tier, VaultEntry::decode(&meta, &payload)?))
    }
}

impl std::fmt::Debug for VaultJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VaultJournal")
            .field("path", &self.path)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::RevealOp;
    use edna_relational::Value;

    fn entry(id: u64) -> VaultEntry {
        VaultEntry {
            disguise_id: id,
            disguise_name: format!("d{id}"),
            user_id: Value::Int(19),
            ops: vec![RevealOp::ReinsertRow {
                table: "users".to_string(),
                columns: vec!["id".to_string()],
                row: vec![Value::Int(19)],
            }],
            created_at: 5,
            expires_at: None,
        }
    }

    fn temppath(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("edna_journal_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir.join("pending.journal")
    }

    #[test]
    fn spools_and_reloads_across_opens() {
        let path = temppath("spool");
        {
            let j = VaultJournal::open(&path).unwrap();
            j.append(VaultTier::Global, &entry(1)).unwrap();
            j.append(VaultTier::PerUser, &entry(2)).unwrap();
        }
        let j = VaultJournal::open(&path).unwrap();
        let pending = j.pending().unwrap();
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0], (VaultTier::Global, entry(1)));
        assert_eq!(pending[1], (VaultTier::PerUser, entry(2)));
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn rewrite_compacts_and_empty_removes() {
        let path = temppath("rewrite");
        let j = VaultJournal::open(&path).unwrap();
        j.append(VaultTier::Global, &entry(1)).unwrap();
        j.append(VaultTier::Global, &entry(2)).unwrap();
        j.rewrite(&[(VaultTier::PerUser, entry(2))]).unwrap();
        assert_eq!(j.pending().unwrap(), vec![(VaultTier::PerUser, entry(2))]);
        j.rewrite(&[]).unwrap();
        assert!(j.is_empty().unwrap());
        assert!(!path.exists());
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn torn_tail_recovered_on_open() {
        let path = temppath("torn");
        {
            let j = VaultJournal::open(&path).unwrap();
            j.append(VaultTier::Global, &entry(1)).unwrap();
            j.append(VaultTier::Global, &entry(2)).unwrap();
        }
        let full = fs::read(&path).unwrap();
        // Tear mid-second-record: the first entry must survive every cut.
        let first_len = {
            let mut one = BytesMut::new();
            wal::append_record(&mut one, &wal::scan_records(&full).records[0]);
            one.len()
        };
        for cut in [full.len() - 1, full.len() - 20, first_len + 1] {
            fs::write(&path, &full[..cut]).unwrap();
            let j = VaultJournal::open(&path).unwrap();
            assert_eq!(j.pending().unwrap(), vec![(VaultTier::Global, entry(1))]);
        }
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn leftover_tmp_is_swept() {
        let path = temppath("tmp");
        let j = VaultJournal::open(&path).unwrap();
        j.append(VaultTier::Global, &entry(1)).unwrap();
        fs::write(path.with_extension("tmp"), b"crashed rewrite").unwrap();
        drop(j);
        let j = VaultJournal::open(&path).unwrap();
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(j.len().unwrap(), 1);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
