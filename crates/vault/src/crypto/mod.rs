//! Cryptographic substrate for encrypted vaults.
//!
//! Everything here is implemented from scratch for the reproduction (the
//! paper's footnote 1 sketches threshold-encrypted vaults; §4.2 sketches
//! encrypted per-user vaults). The construction for sealed entries is
//! ChaCha20 encrypt-then-HMAC-SHA-256. **Research code — not audited.**

pub mod chacha20;
pub mod hmac;
pub use edna_util::sha256;

use edna_util::rng::Rng;

use crate::error::{Error, Result};
use chacha20::{chacha20_xor, KEY_LEN, NONCE_LEN};
use hmac::{hmac_sha256, verify_hmac};
use sha256::sha256;

/// A symmetric vault key.
#[derive(Clone, PartialEq, Eq)]
pub struct VaultKey(pub [u8; KEY_LEN]);

impl std::fmt::Debug for VaultKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("VaultKey(..)")
    }
}

impl VaultKey {
    /// Generates a fresh random key.
    pub fn generate(rng: &mut impl Rng) -> VaultKey {
        let mut k = [0u8; KEY_LEN];
        rng.fill_bytes(&mut k);
        VaultKey(k)
    }

    /// Derives a key deterministically from a passphrase and salt
    /// (iterated SHA-256; a stand-in for a real KDF).
    pub fn derive(passphrase: &str, salt: &[u8]) -> VaultKey {
        let mut state = Vec::with_capacity(passphrase.len() + salt.len());
        state.extend_from_slice(passphrase.as_bytes());
        state.extend_from_slice(salt);
        let mut d = sha256(&state);
        for _ in 0..1024 {
            let mut buf = Vec::with_capacity(d.len() + salt.len());
            buf.extend_from_slice(&d);
            buf.extend_from_slice(salt);
            d = sha256(&buf);
        }
        VaultKey(d)
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }

    /// Reconstructs a key from raw bytes.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> VaultKey {
        VaultKey(bytes)
    }

    fn mac_key(&self) -> [u8; KEY_LEN] {
        // Domain-separate the MAC key from the cipher key.
        let mut buf = Vec::with_capacity(KEY_LEN + 4);
        buf.extend_from_slice(&self.0);
        buf.extend_from_slice(b"mac\0");
        sha256(&buf)
    }
}

/// Wire format of a sealed message: `nonce (12) || ciphertext || tag (32)`.
const TAG_LEN: usize = 32;
/// Minimum length of a valid sealed message.
pub const SEAL_OVERHEAD: usize = NONCE_LEN + TAG_LEN;

/// Encrypts and authenticates `plaintext` under `key` with a random nonce.
pub fn seal(key: &VaultKey, plaintext: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    let mut nonce = [0u8; NONCE_LEN];
    rng.fill_bytes(&mut nonce);
    let mut out = Vec::with_capacity(plaintext.len() + SEAL_OVERHEAD);
    out.extend_from_slice(&nonce);
    let mut ct = plaintext.to_vec();
    chacha20_xor(&key.0, &nonce, 1, &mut ct);
    out.extend_from_slice(&ct);
    let tag = hmac_sha256(&key.mac_key(), &out);
    out.extend_from_slice(&tag);
    out
}

/// Verifies and decrypts a message produced by [`seal`].
pub fn open(key: &VaultKey, sealed: &[u8]) -> Result<Vec<u8>> {
    if sealed.len() < SEAL_OVERHEAD {
        return Err(Error::Crypto("sealed message too short".to_string()));
    }
    let (body, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    if !verify_hmac(&key.mac_key(), body, tag) {
        return Err(Error::Crypto("authentication failed".to_string()));
    }
    let (nonce_bytes, ct) = body.split_at(NONCE_LEN);
    let mut nonce = [0u8; NONCE_LEN];
    nonce.copy_from_slice(nonce_bytes);
    let mut pt = ct.to_vec();
    chacha20_xor(&key.0, &nonce, 1, &mut pt);
    Ok(pt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edna_util::rng::Prng;

    #[test]
    fn seal_open_round_trip() {
        let mut rng = Prng::seed_from_u64(42);
        let key = VaultKey::generate(&mut rng);
        let msg = b"reveal function payload";
        let sealed = seal(&key, msg, &mut rng);
        assert_eq!(open(&key, &sealed).unwrap(), msg);
    }

    #[test]
    fn tampering_is_detected() {
        let mut rng = Prng::seed_from_u64(42);
        let key = VaultKey::generate(&mut rng);
        let mut sealed = seal(&key, b"payload", &mut rng);
        // Flip one ciphertext bit.
        sealed[NONCE_LEN] ^= 1;
        assert!(open(&key, &sealed).is_err());
    }

    #[test]
    fn wrong_key_fails() {
        let mut rng = Prng::seed_from_u64(42);
        let key = VaultKey::generate(&mut rng);
        let other = VaultKey::generate(&mut rng);
        let sealed = seal(&key, b"payload", &mut rng);
        assert!(open(&other, &sealed).is_err());
    }

    #[test]
    fn short_message_rejected() {
        let key = VaultKey::from_bytes([0; KEY_LEN]);
        assert!(open(&key, &[0u8; 10]).is_err());
    }

    #[test]
    fn derive_is_deterministic_and_salted() {
        let a = VaultKey::derive("hunter2", b"salt1");
        let b = VaultKey::derive("hunter2", b"salt1");
        let c = VaultKey::derive("hunter2", b"salt2");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let key = VaultKey::from_bytes([0xAB; KEY_LEN]);
        let s = format!("{key:?}");
        assert!(!s.contains("171")); // 0xAB
        assert!(!s.to_lowercase().contains("ab, ab"));
    }

    #[test]
    fn nonces_differ_between_seals() {
        let mut rng = Prng::seed_from_u64(1);
        let key = VaultKey::generate(&mut rng);
        let s1 = seal(&key, b"same", &mut rng);
        let s2 = seal(&key, b"same", &mut rng);
        assert_ne!(s1, s2);
    }
}
