//! HMAC-SHA-256 (RFC 2104) for vault-entry authentication.

use super::sha256::{Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = {
            let mut h = Sha256::new();
            h.update(key);
            h.finalize()
        };
        key_block[..DIGEST_LEN].copy_from_slice(&d);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let inner = {
        let mut h = Sha256::new();
        h.update(&ipad);
        h.update(message);
        h.finalize()
    };
    let mut h = Sha256::new();
    h.update(&opad);
    h.update(&inner);
    h.finalize()
}

/// Constant-time digest comparison.
pub fn verify_hmac(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    let expected = hmac_sha256(key, message);
    if tag.len() != expected.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac(b"k", b"m", &tag));
        assert!(!verify_hmac(b"k", b"m2", &tag));
        assert!(!verify_hmac(b"k2", b"m", &tag));
        assert!(!verify_hmac(b"k", b"m", &tag[..31]));
    }
}
