//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! Provides confidentiality for encrypted vaults (paper §4.2: "The vault
//! contents might be encrypted"). Authentication is layered on with
//! HMAC-SHA-256 (encrypt-then-MAC) in [`crate::crypto::seal`]. Research
//! code; not hardened.

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes.
pub const NONCE_LEN: usize = 12;

/// Applies the ChaCha20 keystream to `data` in place, starting at block
/// `counter` (encryption and decryption are the same operation).
pub fn chacha20_xor(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    let mut block_counter = counter;
    for chunk in data.chunks_mut(64) {
        let keystream = block(key, nonce, block_counter);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
        block_counter = block_counter.wrapping_add(1);
    }
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn block(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; 64] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 8439 §2.3.2 block test vector.
    #[test]
    fn rfc8439_block() {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; NONCE_LEN] = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let ks = block(&key, &nonce, 1);
        assert_eq!(
            hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt() {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; NONCE_LEN] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext;
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(hex(&data[..16]), "6e2e359a2568f98041ba0728dd0d6981");
        // Decrypting restores the plaintext exactly.
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(data, plaintext);
    }

    #[test]
    fn xor_round_trips() {
        let key = [7u8; KEY_LEN];
        let nonce = [9u8; NONCE_LEN];
        let original = b"some vault entry bytes".to_vec();
        let mut data = original.clone();
        chacha20_xor(&key, &nonce, 0, &mut data);
        assert_ne!(data, original);
        chacha20_xor(&key, &nonce, 0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; KEY_LEN];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        chacha20_xor(&key, &[0u8; NONCE_LEN], 0, &mut a);
        chacha20_xor(&key, &[1u8; NONCE_LEN], 0, &mut b);
        assert_ne!(a, b);
    }
}
