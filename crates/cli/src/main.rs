//! The `edna` command-line tool.
//!
//! ```text
//! edna init <state> [--schema <file.sql>] [--passphrase <p>]
//! edna sql <state> "<statement>" [--passphrase <p>] [--trace-out <f.jsonl>]
//!          [--slow-ms <n>]
//! edna explain <state> "<statement>"
//! edna load-sql <state> <file.sql> [--passphrase <p>]
//! edna register <state> <spec.edna | policy.edna> [--passphrase <p>]
//! edna check <state> [<disguise> | <spec.edna> | --all] [--deny-warnings]
//!          [--format text|json]
//! edna audit <state> [--deny-warnings] [--format text|json]
//! edna specs <state>
//! edna apply <state> <disguise> [--user <id>] [--no-compose] [--no-optimize]
//!          [--trace-out <f.jsonl>]
//! edna apply <state> <disguise> --users-file <ids.txt> [--shards <n>]
//!          [--trace-out <f.jsonl>]
//! edna reveal <state> (--id <n> | --latest <disguise> [--user <id>])
//!          [--trace-out <f.jsonl>]
//! edna history <state>
//! edna disguised <state>
//! edna stats <state>
//! edna recover <state> [--verify] [--passphrase <p>] [--trace-out <f.jsonl>]
//! edna serve <state> [--addr <ip:port>] [--max-conns <n>] [--conn-timeout-ms <n>]
//!          [--max-frame-bytes <n>] [--checkpoint-secs <n>] [--passphrase <p>]
//!          [--skip-audit] [--policy-tick-ms <n>] [--decay-rows <n>] [--no-decay]
//!          [--sync-replicas <n>] [--repl-gate-ms <n>] [--replica-of <ip:port>]
//! edna promote <state>
//! edna trace <trace.jsonl>
//! edna demo <state> (hotcrp | lobsters) [--scale <f>]
//! ```
//!
//! `edna register` routes on content: files starting with `policy_name:`
//! register as scheduled policies (expiration / decay), everything else
//! as disguise specs. `edna audit` abstractly interprets the whole
//! workspace — every registered disguise under arbitrary application
//! order, plus every registered policy — and proves or refutes
//! reveal-reachability, vault-orphaning, and policy convergence
//! (diagnostics `E050`–`E053`, `W050`–`W053`). `edna serve` runs the
//! same audit at startup and refuses to serve a workspace with audit
//! errors unless `--skip-audit` is given. While serving, a background
//! decay daemon ticks registered policies every `--policy-tick-ms`
//! (default 1000), transforming at most `--decay-rows` rows per tick
//! (default 512) before yielding to foreground traffic; `--no-decay`
//! disables it. The wire op `policy status` lists each policy's kind,
//! cadence, and last completed run.
//!
//! High availability: `edna serve <standby> --replica-of <primary>`
//! bootstraps a fresh copy of the primary's state over the wire and
//! then serves it read-only while continuously applying the primary's
//! WAL and vault stream. With `--sync-replicas N` on the primary, a
//! commit is not acknowledged until `N` followers have durably applied
//! it. `edna promote <standby>` (run on a stopped standby) bumps the
//! replication epoch so the node can serve as the new primary — and so
//! the deposed primary is fenced off (`stale-epoch`) if it comes back.
//!
//! `--trace-out` records structured spans (statements, disguise phases,
//! vault/storage operations) and exports them as JSON Lines;
//! `edna trace` pretty-prints such a file as an indented tree. `edna
//! stats` prints the Prometheus-text metrics the last state-mutating
//! command left in the `<state>.metrics` sidecar. `EXPLAIN ANALYZE
//! <select>` (via `edna sql`) profiles per-operator row counts and
//! timings from a real execution.

use std::process::ExitCode;

use edna_cli::{
    format_history, format_result, format_trace_tree, parse_user, CliError, CliResult, Workspace,
};
use edna_core::{ApplyOptions, SpanRecord, Tracer};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        // Distinct exit codes so wrappers (the serve supervisor, ci.sh,
        // operator scripts) can react to the failure class: usage=2,
        // runtime=1, recovery-needed=3.
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.kind.code())
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn usage() -> CliError {
    CliError::usage(
        "usage: edna <init|sql|explain|load-sql|register|check|audit|specs|apply|reveal|\
         history|disguised|stats|recover|serve|promote|trace|demo> <state> [args...] \
         (see crate docs)"
            .to_string(),
    )
}

/// Parses `--format text|json` (defaulting to text). Returns whether
/// JSON output was requested.
fn json_format(args: &[String]) -> CliResult<bool> {
    match flag_value(args, "--format") {
        None | Some("text") => Ok(false),
        Some("json") => Ok(true),
        Some(other) => Err(CliError::usage(format!(
            "bad --format {other} (expected text or json)"
        ))),
    }
}

/// Prints check/audit reports (text or JSON) and maps findings to the
/// exit class: errors — or warnings under `--deny-warnings` — are
/// runtime failures (exit 1), matching the serve supervisor's classing.
fn finish_diagnostics(
    tool: &str,
    reports: &[(String, Vec<edna_core::Diagnostic>)],
    json: bool,
    deny_warnings: bool,
) -> CliResult<()> {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for (_, diags) in reports {
        errors += diags
            .iter()
            .filter(|d| d.severity == edna_core::Severity::Error)
            .count();
        warnings += diags
            .iter()
            .filter(|d| d.severity == edna_core::Severity::Warning)
            .count();
    }
    if json {
        println!(
            "{}",
            edna_core::render_json_report(&format!("edna {tool}"), reports)
        );
    } else {
        for (name, diags) in reports {
            if diags.is_empty() {
                println!("{name}: ok");
                continue;
            }
            println!("{name}:");
            print!("{}", edna_core::render_report(diags));
        }
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        return Err(CliError::runtime(format!(
            "{tool} failed: {errors} error(s), {warnings} warning(s){}",
            if deny_warnings && errors == 0 {
                " (--deny-warnings)"
            } else {
                ""
            }
        )));
    }
    Ok(())
}

/// Builds a tracer when `--trace-out <file>` was given; the returned
/// closure writes the collected spans there.
fn trace_sink(args: &[String]) -> Option<(Tracer, impl FnOnce(&Tracer) -> CliResult<()>)> {
    let path = flag_value(args, "--trace-out")?.to_string();
    let tracer = Tracer::default();
    Some((tracer, move |t: &Tracer| {
        t.write_jsonl(std::path::Path::new(&path))
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {} span(s) to {path}", t.len());
        Ok(())
    }))
}

fn run(args: &[String]) -> CliResult<()> {
    let command = args.first().ok_or_else(usage)?.as_str();
    let state = args.get(1).ok_or_else(usage)?.clone();
    let passphrase = flag_value(args, "--passphrase");

    match command {
        "init" => {
            let ws = Workspace::init(&state, passphrase)?;
            if let Some(schema) = flag_value(args, "--schema") {
                let sql = std::fs::read_to_string(schema)
                    .map_err(|e| CliError::runtime(format!("cannot read {schema}: {e}")))?;
                ws.db.execute_script(&sql)?;
                ws.save()?;
            }
            println!("initialized {state}");
        }
        "sql" => {
            let stmt = args.get(2).ok_or_else(usage)?;
            let ws = Workspace::open(&state, passphrase)?;
            let sink = trace_sink(args);
            if let Some((tracer, _)) = &sink {
                ws.edna.set_tracer(Some(tracer.clone()));
            }
            let slow_ms: Option<u64> = flag_value(args, "--slow-ms")
                .map(|s| {
                    s.parse()
                        .map_err(|_| CliError::usage(format!("bad --slow-ms {s}")))
                })
                .transpose()?;
            if let Some(ms) = slow_ms {
                ws.db
                    .set_slow_statement_threshold(Some(std::time::Duration::from_millis(ms)));
            }
            let r = ws.db.execute(stmt)?;
            print!("{}", format_result(&r));
            if slow_ms.is_some() {
                for s in ws.db.slow_statements() {
                    eprintln!("slow ({}us): {}", s.micros, s.sql);
                }
            }
            ws.save()?;
            if let Some((tracer, flush)) = sink {
                flush(&tracer)?;
            }
        }
        "explain" => {
            let stmt = args.get(2).ok_or_else(usage)?;
            let ws = Workspace::open(&state, passphrase)?;
            print!("{}", ws.db.explain(stmt)?);
        }
        "load-sql" => {
            let file = args.get(2).ok_or_else(usage)?;
            let sql = std::fs::read_to_string(file)
                .map_err(|e| CliError::runtime(format!("cannot read {file}: {e}")))?;
            let ws = Workspace::open(&state, passphrase)?;
            let results = ws.db.execute_script(&sql)?;
            println!("executed {} statement(s)", results.len());
            ws.save()?;
        }
        "register" => {
            let file = args.get(2).ok_or_else(usage)?;
            let dsl = std::fs::read_to_string(file)
                .map_err(|e| CliError::runtime(format!("cannot read {file}: {e}")))?;
            let ws = Workspace::open(&state, passphrase)?;
            // Route on content: `policy_name:` files are scheduled
            // policies, everything else is a disguise spec.
            if edna_core::is_policy_source(&dsl) {
                let name = ws.register_policy(&dsl)?;
                println!("registered policy {name}");
            } else {
                let name = ws.register_spec(&dsl)?;
                println!("registered disguise {name}");
            }
        }
        "check" => {
            let ws = Workspace::open(&state, passphrase)?;
            let deny_warnings = has_flag(args, "--deny-warnings");
            // A positional target names a registered disguise or a spec
            // file; absent (or `--all`) every registered spec is checked.
            let target = args
                .get(2)
                .map(String::as_str)
                .filter(|a| !a.starts_with("--"));
            let reports: Vec<(String, Vec<edna_core::Diagnostic>)> = match target {
                None => ws.edna.check_all(),
                Some(t) if ws.edna.spec(t).is_ok() => vec![(t.to_string(), ws.edna.check(t)?)],
                Some(t) if std::path::Path::new(t).exists() => {
                    // A spec file is analyzed without registering it,
                    // with the registered specs as composition priors.
                    let dsl = std::fs::read_to_string(t)
                        .map_err(|e| CliError::runtime(format!("cannot read {t}: {e}")))?;
                    let spec = edna_core::parse_spec(&dsl)?;
                    let names = ws.spec_names()?;
                    let priors = names
                        .iter()
                        .filter(|n| **n != spec.name)
                        .map(|n| ws.edna.spec(n))
                        .collect::<Result<Vec<_>, _>>()?;
                    let prior_refs: Vec<&edna_core::DisguiseSpec> = priors.iter().collect();
                    let diags = edna_core::analyze_spec(&spec, ws.edna.database(), &prior_refs);
                    vec![(spec.name.clone(), diags)]
                }
                Some(t) => {
                    return Err(CliError::runtime(format!(
                        "{t} is neither a registered disguise nor a spec file"
                    )))
                }
            };
            finish_diagnostics("check", &reports, json_format(args)?, deny_warnings)?;
        }
        "audit" => {
            let deny_warnings = has_flag(args, "--deny-warnings");
            let json = json_format(args)?;
            let ws = Workspace::open(&state, passphrase)?;
            let diags = ws.audit()?;
            let reports = vec![("workspace".to_string(), diags)];
            finish_diagnostics("audit", &reports, json, deny_warnings)?;
        }
        "specs" => {
            let ws = Workspace::open(&state, passphrase)?;
            for name in ws.spec_names()? {
                let spec = ws.edna.spec(&name)?;
                println!(
                    "{name}  (user_scoped: {}, reversible: {}, {} table section(s))",
                    spec.user_scoped,
                    spec.reversible,
                    spec.tables.len()
                );
            }
        }
        "apply" => {
            let disguise = args.get(2).ok_or_else(usage)?;
            // Mass disguise: one user id per line (blank lines and `#`
            // comments skipped), owner-hash-sharded across threads.
            if let Some(path) = flag_value(args, "--users-file") {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
                let users: Vec<edna_relational::Value> = text
                    .lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .map(parse_user)
                    .collect();
                if users.is_empty() {
                    return Err(CliError::usage(format!("{path} lists no users")));
                }
                let shards: usize = match flag_value(args, "--shards") {
                    Some(s) => s
                        .parse()
                        .map_err(|_| CliError::usage(format!("bad shard count {s}")))?,
                    None => 0, // 0 = one shard per available core
                };
                let ws = Workspace::open(&state, passphrase)?;
                let sink = trace_sink(args);
                if let Some((tracer, _)) = &sink {
                    ws.edna.set_tracer(Some(tracer.clone()));
                }
                let report = ws.edna.apply_many(disguise, &users, shards)?;
                println!(
                    "applied {} to {} user(s) in {} shard(s): {} succeeded, {} failed, \
                     removed {}, decorrelated {}, modified {}, vault entries {}, \
                     degraded {}, {:.1?}",
                    report.name,
                    report.users,
                    report.shards,
                    report.succeeded,
                    report.failures.len(),
                    report.rows_removed,
                    report.rows_decorrelated,
                    report.rows_modified,
                    report.vault_entries,
                    report.degraded,
                    report.duration
                );
                for (user, reason) in &report.failures {
                    eprintln!("  failed {}: {reason}", user.to_sql_literal());
                }
                ws.save()?;
                if let Some((tracer, flush)) = sink {
                    flush(&tracer)?;
                }
                if !report.failures.is_empty() {
                    return Err(CliError::runtime(format!(
                        "{} of {} user(s) failed to disguise",
                        report.failures.len(),
                        report.users
                    )));
                }
                return Ok(());
            }
            let user = flag_value(args, "--user").map(parse_user);
            let ws = Workspace::open(&state, passphrase)?;
            let sink = trace_sink(args);
            if let Some((tracer, _)) = &sink {
                ws.edna.set_tracer(Some(tracer.clone()));
            }
            let opts = ApplyOptions {
                compose: !has_flag(args, "--no-compose"),
                optimize: !has_flag(args, "--no-optimize"),
                use_transaction: true,
                ..ApplyOptions::default()
            };
            let report = ws.edna.apply_with_options(disguise, user.as_ref(), opts)?;
            println!(
                "applied {} (id {}): removed {}, decorrelated {}, modified {}, \
                 placeholders {}, recorrelated {}, statements {}",
                report.name,
                report.disguise_id,
                report.rows_removed,
                report.rows_decorrelated,
                report.rows_modified,
                report.placeholders_created,
                report.rows_recorrelated,
                report.stats.statements
            );
            ws.save()?;
            if let Some((tracer, flush)) = sink {
                flush(&tracer)?;
            }
        }
        "reveal" => {
            // Validate the target flags before touching the state, so a
            // typo is a usage error even when the state is unopenable.
            enum Target {
                Id(u64),
                Latest(String, Option<edna_relational::Value>),
            }
            let target = if let Some(id) = flag_value(args, "--id") {
                let id: u64 = id
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad id {id}")))?;
                Target::Id(id)
            } else if let Some(name) = flag_value(args, "--latest") {
                let user = flag_value(args, "--user").map(parse_user);
                Target::Latest(name.to_string(), user)
            } else {
                return Err(CliError::usage(
                    "reveal needs --id <n> or --latest <disguise> [--user <id>]".to_string(),
                ));
            };
            let ws = Workspace::open(&state, passphrase)?;
            let sink = trace_sink(args);
            if let Some((tracer, _)) = &sink {
                ws.edna.set_tracer(Some(tracer.clone()));
            }
            let report = match target {
                Target::Id(id) => ws.edna.reveal(id)?,
                Target::Latest(name, user) => ws.edna.reveal_latest(&name, user.as_ref())?,
            };
            println!(
                "revealed {} (id {}): reinserted {}, restored {}, placeholders removed {}, \
                 re-applied {:?}",
                report.name,
                report.disguise_id,
                report.rows_reinserted,
                report.rows_restored,
                report.placeholders_removed,
                report.reapplied
            );
            ws.save()?;
            if let Some((tracer, flush)) = sink {
                flush(&tracer)?;
            }
        }
        "stats" => {
            // The sidecar holds the registry snapshot the last
            // state-mutating command saved; a fresh open would read all
            // zeroes, so print the sidecar instead.
            let ws = Workspace::open(&state, passphrase)?;
            let path = ws.metrics_path();
            let text = std::fs::read_to_string(&path).map_err(|e| {
                CliError::runtime(format!(
                    "no metrics sidecar at {} (run any state-mutating command, e.g. \
                     `edna sql`, to generate it): {e}",
                    path.display()
                ))
            })?;
            // A truncated sidecar (torn write on a pre-atomic-rename
            // build) or one from a pre-observability edna would print as
            // garbage; surface what to do instead.
            if let Err(why) = edna_cli::validate_metrics_sidecar(&text) {
                return Err(CliError::runtime(format!(
                    "metrics sidecar at {} is not a readable Prometheus exposition \
                     ({why}); it may be truncated or written by an older edna — re-run \
                     any state-mutating command (e.g. `edna sql`) to regenerate it",
                    path.display()
                )));
            }
            print!("{text}");
        }
        "recover" => {
            // Recovery happens inside every open; this surfaces what it
            // did. `--verify` additionally self-checks structural
            // integrity (FKs, unique indexes, auto-increment cursors).
            let ws = Workspace::open(&state, passphrase)?;
            let r = &ws.last_recovery;
            println!(
                "scanned {} WAL frame(s), replayed {}, truncated {} torn byte(s)",
                r.frames_scanned, r.frames_replayed, r.torn_bytes
            );
            println!(
                "snapshot watermark {}, last LSN {}{}",
                r.snapshot_watermark,
                r.last_lsn,
                if r.snapshot_promoted {
                    ", promoted interrupted snapshot"
                } else {
                    ""
                }
            );
            for id in &ws.last_resolution.completed {
                println!("disguise {id}: intent resolved as completed");
            }
            for id in &ws.last_resolution.undone {
                println!("disguise {id}: half-applied, rolled back");
            }
            // A policy run interrupted mid-tick is benign: incomplete
            // runs never advance the last-run stamp, so the next tick
            // resumes exactly where the crash cut it off.
            for run in &r.open_policy_runs {
                println!(
                    "policy run {:?} interrupted mid-tick; it resumes on the next tick",
                    run.policy
                );
            }
            if r.acted() || !ws.last_resolution.is_empty() {
                println!("recovered state checkpointed");
            } else {
                println!("nothing to recover");
            }
            if let Some((tracer, flush)) = trace_sink(args) {
                ws.record_recovery_span(&tracer);
                flush(&tracer)?;
            }
            if has_flag(args, "--verify") {
                let problems = ws.db.verify_integrity();
                if problems.is_empty() {
                    println!("integrity: ok");
                } else {
                    for p in &problems {
                        eprintln!("integrity: {p}");
                    }
                    return Err(CliError::recovery(format!(
                        "integrity check failed: {} problem(s)",
                        problems.len()
                    )));
                }
            }
        }
        "promote" => {
            // Failover step 2 (after draining the standby): durably bump
            // the replication epoch so this node serves as the new
            // primary and the deposed one is fenced (`stale-epoch`) if
            // it tries to feed or rejoin with stale history.
            let ws = Workspace::open(&state, passphrase)?;
            let epoch = ws.bump_epoch()?;
            ws.save()?;
            println!("promoted {state} to epoch {epoch}");
        }
        "serve" => {
            fn num_flag<T: std::str::FromStr>(
                args: &[String],
                name: &str,
                default: T,
            ) -> CliResult<T> {
                match flag_value(args, name) {
                    None => Ok(default),
                    Some(s) => s
                        .parse()
                        .map_err(|_| CliError::usage(format!("bad {name} {s}"))),
                }
            }
            let addr = flag_value(args, "--addr")
                .unwrap_or("127.0.0.1:0")
                .to_string();
            let max_conns: usize = num_flag(args, "--max-conns", 8)?;
            let conn_timeout_ms: u64 = num_flag(args, "--conn-timeout-ms", 10_000)?;
            let max_frame_bytes: usize = num_flag(args, "--max-frame-bytes", 1 << 20)?;
            let checkpoint_secs: u64 = num_flag(args, "--checkpoint-secs", 30)?;
            let policy_tick_ms: u64 = num_flag(args, "--policy-tick-ms", 1_000)?;
            let decay_rows: usize = num_flag(args, "--decay-rows", 512)?;
            // `--no-decay` (or a zero tick) disables the decay daemon;
            // registered policies then only run via an explicit
            // foreground path, never in the background.
            let policy_tick = (!has_flag(args, "--no-decay") && policy_tick_ms > 0)
                .then(|| std::time::Duration::from_millis(policy_tick_ms));
            let sync_replicas: usize = num_flag(args, "--sync-replicas", 0)?;
            let repl_gate_ms: u64 = num_flag(args, "--repl-gate-ms", 2_000)?;
            let replica_of = flag_value(args, "--replica-of").map(str::to_string);

            // A standby bootstraps a fresh copy of the primary's state
            // over the wire *before* opening the workspace, then applies
            // the live tail while serving read-only.
            let bootstrapped = match &replica_of {
                Some(primary) => {
                    let addr: std::net::SocketAddr = primary.parse().map_err(|_| {
                        CliError::usage(format!("bad --replica-of address {primary}"))
                    })?;
                    let boot = edna_server::replica::bootstrap(
                        addr,
                        std::path::Path::new(&state),
                        std::time::Duration::from_secs(30),
                    )
                    .map_err(|e| CliError::runtime(format!("replica bootstrap failed: {e}")))?;
                    Some(boot)
                }
                None => None,
            };
            let is_replica = bootstrapped.is_some();
            let config = edna_server::ServerConfig {
                addr,
                max_conns,
                queue_depth: max_conns,
                conn_timeout: std::time::Duration::from_millis(conn_timeout_ms.max(1)),
                max_frame_bytes,
                // A replica must never checkpoint while streaming: a
                // local WAL truncation would burn LSNs the primary is
                // about to ship. The final drain checkpoint still runs
                // (the stream is torn down first; re-serving as a
                // replica re-bootstraps from scratch).
                checkpoint_every: (checkpoint_secs > 0 && !is_replica)
                    .then(|| std::time::Duration::from_secs(checkpoint_secs)),
                // Policy runs are the primary's job; their effects
                // arrive through the WAL stream.
                policy_tick: policy_tick.filter(|_| !is_replica),
                decay_rows: decay_rows.max(1),
                sync_replicas,
                repl_gate_timeout: std::time::Duration::from_millis(repl_gate_ms.max(1)),
            };
            let ws = Workspace::open(&state, passphrase)?;
            if let Some(boot) = &bootstrapped {
                // The freshly opened workspace must land exactly where
                // the primary said the shipped state ends.
                if ws.db.wal_last_lsn() != boot.last_lsn || ws.epoch() != boot.epoch {
                    return Err(CliError::runtime(format!(
                        "bootstrap mismatch: local lsn {} epoch {} vs shipped lsn {} epoch {}",
                        ws.db.wal_last_lsn(),
                        ws.epoch(),
                        boot.last_lsn,
                        boot.epoch
                    )));
                }
            }
            // Refuse to serve a workspace whose disguise graph has audit
            // errors (orphanable vaults, unreachable reveals, diverging
            // policies): clients would be offered disguises whose
            // reversibility promise can be broken by another tenant's
            // apply. `--skip-audit` is the operator escape hatch. A
            // replica serves the primary's state verbatim and read-only,
            // so the primary's own audit gate already covered it.
            if !has_flag(args, "--skip-audit") && !is_replica {
                let diags = ws.audit()?;
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == edna_core::Severity::Error)
                    .count();
                if errors > 0 {
                    eprint!("{}", edna_core::render_report(&diags));
                    return Err(CliError::runtime(format!(
                        "refusing to serve: audit found {errors} error(s) \
                         (run `edna audit {state}` for details, or pass --skip-audit)"
                    )));
                }
            }
            let svc = std::sync::Arc::new(edna_server::Service::new(ws)?);
            let replica_shared = bootstrapped.as_ref().map(|boot| {
                let shared = edna_server::ReplicaShared::new(
                    replica_of.clone().unwrap_or_default(),
                    boot.epoch,
                    boot.last_lsn,
                );
                svc.attach_replica(shared.clone());
                shared
            });
            let handle = edna_server::start(svc.clone(), config)
                .map_err(|e| CliError::runtime(format!("cannot bind server: {e}")))?;
            // The apply loop: reads the primary's live tail, applies it
            // under the service door, and acks. Exits on stream death or
            // drain; the node keeps serving reads either way.
            let applier = bootstrapped.map(|boot| {
                let svc = svc.clone();
                let shared = replica_shared.clone().expect("replica has shared state");
                std::thread::Builder::new()
                    .name("edna-replica-apply".to_string())
                    .spawn(move || {
                        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
                        edna_server::replica::run(boot.stream, &svc, &shared, &stop);
                    })
                    .expect("spawn replica applier")
            });
            // The soak harness and supervisors parse this line to learn
            // the picked port; stdout is line-buffered, so it flushes.
            // A supervisor may close stdout after parsing it — status
            // prints must not crash the drain, so write errors are
            // swallowed.
            use std::io::Write as _;
            println!("listening on {}", handle.addr());
            // The wire `shutdown` op must present this token; only the
            // operator reading this stdout (or the supervisor capturing
            // it) can drain the server remotely.
            println!("shutdown token {}", handle.shutdown_token());
            match &replica_shared {
                Some(shared) => println!(
                    "role: replica of {} (epoch {})",
                    shared.source,
                    shared.epoch()
                ),
                None => println!("role: primary (epoch {})", svc.workspace().epoch()),
            }
            handle
                .wait()
                .map_err(|_| CliError::runtime("server thread panicked".to_string()))?;
            if let Some(t) = applier {
                let _ = t.join();
            }
            let _ = writeln!(std::io::stdout(), "drained and checkpointed");
        }
        "trace" => {
            // Here the positional argument is the JSONL file itself.
            let text = std::fs::read_to_string(&state)
                .map_err(|e| CliError::runtime(format!("cannot read {state}: {e}")))?;
            let mut spans = Vec::new();
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let span = SpanRecord::from_json(line).ok_or_else(|| {
                    CliError::runtime(format!("{state}:{}: not a span line", i + 1))
                })?;
                spans.push(span);
            }
            print!("{}", format_trace_tree(&spans));
            eprintln!("({} span(s))", spans.len());
        }
        "history" => {
            let ws = Workspace::open(&state, passphrase)?;
            print!("{}", format_history(&ws.edna)?);
        }
        "disguised" => {
            let ws = Workspace::open(&state, passphrase)?;
            let rows = ws.edna.disguised_rows()?;
            let mut tables: Vec<_> = rows.iter().collect();
            tables.sort_by_key(|(t, _)| t.as_str());
            for (table, pks) in tables {
                let mut pks: Vec<_> = pks.iter().cloned().collect();
                pks.sort();
                println!("{table}: {}", pks.join(", "));
            }
        }
        "demo" => {
            let which = args.get(2).ok_or_else(usage)?.as_str();
            let scale: f64 = flag_value(args, "--scale")
                .map(|s| {
                    s.parse()
                        .map_err(|_| CliError::usage(format!("bad scale {s}")))
                })
                .transpose()?
                .unwrap_or(0.1);
            let ws = Workspace::init(&state, passphrase)?;
            match which {
                "hotcrp" => {
                    ws.db.execute_script(edna_apps::hotcrp::SCHEMA_SQL)?;
                    let config = edna_apps::hotcrp::generate::HotCrpConfig::scaled(scale);
                    edna_apps::hotcrp::generate::generate(&ws.db, &config)?;
                    for dsl in [
                        edna_apps::hotcrp::GDPR_DSL,
                        edna_apps::hotcrp::GDPR_PLUS_DSL,
                        edna_apps::hotcrp::CONFANON_DSL,
                    ] {
                        ws.register_spec(dsl)?;
                    }
                    println!(
                        "created HotCRP demo at {state} ({} users, {} papers, {} reviews)",
                        config.users, config.papers, config.reviews
                    );
                }
                "lobsters" => {
                    ws.db.execute_script(edna_apps::lobsters::SCHEMA_SQL)?;
                    let config = edna_apps::lobsters::generate::LobstersConfig::medium();
                    edna_apps::lobsters::generate::generate(&ws.db, &config)?;
                    ws.register_spec(edna_apps::lobsters::GDPR_DSL)?;
                    println!(
                        "created Lobsters demo at {state} ({} users, {} stories)",
                        config.users, config.stories
                    );
                }
                other => {
                    return Err(CliError::runtime(format!(
                        "unknown demo {other} (expected hotcrp or lobsters)"
                    )))
                }
            }
            ws.save()?;
            println!("try: edna specs {state}");
        }
        // A user id as first flag is easy to mistype; give a hint.
        other => {
            return Err(CliError::usage(format!(
                "unknown command {other}; {}",
                usage()
            )))
        }
    }
    Ok(())
}
