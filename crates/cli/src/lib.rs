//! `edna-cli`: the command-line disguising tool.
//!
//! The on-disk workspace layer ([`Workspace`]) lives in
//! [`edna_core::workspace`] so the network server (`edna-server`) shares
//! it; this crate re-exports it and keeps the CLI-only pieces: error
//! classification into process exit codes, result/table/trace
//! formatting.
//!
//! Exit codes (asserted by `crates/cli/tests/cli_bin.rs`, scriptable by
//! wrappers like the serve supervisor and `ci.sh`):
//!
//! - `0` — success;
//! - `1` — runtime failure (bad state path, engine error, lock held, ...);
//! - `2` — usage error (unknown command, missing argument, bad flag);
//! - `3` — recovery needed: the state is damaged beyond what open-time
//!   recovery repairs automatically (corrupt snapshot) or `edna recover
//!   --verify` found integrity problems.

#![warn(missing_docs)]

use std::fmt::Write as _;

pub use edna_core::workspace::{parse_user, sidecar, Workspace, SPEC_REGISTRY_TABLE};
use edna_core::{Disguiser, SpanRecord, HISTORY_TABLE};
use edna_relational::QueryResult;

/// How a CLI failure maps to a process exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// Runtime failure — exit code 1.
    Runtime,
    /// Usage error — exit code 2.
    Usage,
    /// The state needs (manual) recovery — exit code 3.
    Recovery,
}

impl ExitKind {
    /// The process exit code for this failure class.
    pub fn code(self) -> u8 {
        match self {
            ExitKind::Runtime => 1,
            ExitKind::Usage => 2,
            ExitKind::Recovery => 3,
        }
    }
}

/// A CLI error: message already formatted for the user, classified into
/// an exit code.
#[derive(Debug)]
pub struct CliError {
    /// The message printed to stderr.
    pub msg: String,
    /// Which exit code this failure maps to.
    pub kind: ExitKind,
}

impl CliError {
    /// A runtime failure (exit 1).
    pub fn runtime(msg: impl Into<String>) -> CliError {
        CliError {
            msg: msg.into(),
            kind: ExitKind::Runtime,
        }
    }

    /// A usage error (exit 2).
    pub fn usage(msg: impl Into<String>) -> CliError {
        CliError {
            msg: msg.into(),
            kind: ExitKind::Usage,
        }
    }

    /// A recovery-needed failure (exit 3).
    pub fn recovery(msg: impl Into<String>) -> CliError {
        CliError {
            msg: msg.into(),
            kind: ExitKind::Recovery,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for CliError {}

/// A corrupt snapshot cannot be repaired by open-time recovery; it is
/// the "state needs recovery/restore" class rather than a plain runtime
/// failure. The engine reports it inside a generic error message, so
/// classification is textual.
fn classify(msg: String) -> CliError {
    if msg.contains("corrupt snapshot") {
        CliError::recovery(msg)
    } else {
        CliError::runtime(msg)
    }
}

impl From<edna_relational::Error> for CliError {
    fn from(e: edna_relational::Error) -> Self {
        classify(e.to_string())
    }
}

impl From<edna_core::Error> for CliError {
    fn from(e: edna_core::Error) -> Self {
        classify(e.to_string())
    }
}

impl From<edna_vault::Error> for CliError {
    fn from(e: edna_vault::Error) -> Self {
        CliError::runtime(e.to_string())
    }
}

/// Result alias for CLI operations.
pub type CliResult<T> = Result<T, CliError>;

/// Renders a query result as an aligned text table.
pub fn format_result(r: &QueryResult) -> String {
    let mut out = String::new();
    if r.columns.is_empty() {
        let _ = writeln!(out, "ok ({} row(s) affected)", r.affected);
        if let Some(id) = r.last_insert_id {
            let _ = writeln!(out, "last insert id: {id}");
        }
        return out;
    }
    let mut widths: Vec<usize> = r.columns.iter().map(|c| c.len()).collect();
    let rendered: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| row.iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    for (i, c) in r.columns.iter().enumerate() {
        let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in r.columns.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    let _ = writeln!(out, "({} row(s))", r.rows.len());
    out
}

/// Renders exported spans (`--trace-out` JSONL) as an indented tree,
/// children under their parents, siblings in start order.
pub fn format_trace_tree(spans: &[SpanRecord]) -> String {
    let mut roots: Vec<&SpanRecord> = Vec::new();
    let mut children: std::collections::HashMap<u64, Vec<&SpanRecord>> =
        std::collections::HashMap::new();
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    for s in spans {
        match s.parent {
            // A parent evicted from the ring buffer orphans the child;
            // show it as a root rather than dropping it.
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(s),
            _ => roots.push(s),
        }
    }
    roots.sort_by_key(|s| s.start_us);
    for v in children.values_mut() {
        v.sort_by_key(|s| s.start_us);
    }
    let mut out = String::new();
    fn emit(
        out: &mut String,
        s: &SpanRecord,
        depth: usize,
        children: &std::collections::HashMap<u64, Vec<&SpanRecord>>,
    ) {
        let _ = write!(out, "{}{}  {}us", "  ".repeat(depth), s.label, s.dur_us);
        for (k, v) in &s.attrs {
            let _ = write!(out, "  {k}={v}");
        }
        out.push('\n');
        if let Some(kids) = children.get(&s.id) {
            for kid in kids {
                emit(out, kid, depth + 1, children);
            }
        }
    }
    for root in roots {
        emit(&mut out, root, 0, &children);
    }
    out
}

/// Renders the disguise history as a table.
pub fn format_history(edna: &Disguiser) -> CliResult<String> {
    let r = edna.database().execute(&format!(
        "SELECT id, name, userId, appliedAt, reversible, reverted FROM {HISTORY_TABLE} \
         ORDER BY id"
    ))?;
    Ok(format_result(&r))
}

/// Validates that `text` looks like the Prometheus exposition the
/// metrics sidecar holds: at least one `# TYPE` comment and one
/// `edna_*`-prefixed sample line, with every non-comment line shaped
/// like `name value`. Returns a description of the first problem.
///
/// `edna stats` uses this to turn a truncated sidecar — or one written
/// by a pre-observability build — into an actionable error instead of a
/// garbled dump.
pub fn validate_metrics_sidecar(text: &str) -> Result<(), String> {
    if text.trim().is_empty() {
        return Err("sidecar is empty".to_string());
    }
    let mut saw_type = false;
    let mut saw_sample = false;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            saw_type |= comment.trim_start().starts_with("TYPE");
            continue;
        }
        // Samples are `name[{labels}] value`; the value must parse.
        let Some((name, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: not a metric sample: {line:?}", i + 1));
        };
        if value.parse::<f64>().is_err() {
            return Err(format!("line {}: non-numeric value {value:?}", i + 1));
        }
        saw_sample |= name.starts_with("edna_");
    }
    if !saw_type {
        return Err("no # TYPE lines (not a Prometheus exposition?)".to_string());
    }
    if !saw_sample {
        return Err("no edna_* samples (written by an older edna?)".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use edna_relational::Value;

    #[test]
    fn exit_kinds_map_to_codes() {
        assert_eq!(CliError::runtime("x").kind.code(), 1);
        assert_eq!(CliError::usage("x").kind.code(), 2);
        assert_eq!(CliError::recovery("x").kind.code(), 3);
    }

    #[test]
    fn corrupt_snapshot_classifies_as_recovery() {
        let e: CliError =
            edna_relational::Error::Eval("corrupt snapshot at byte 7: bad magic".into()).into();
        assert_eq!(e.kind, ExitKind::Recovery);
        let e: CliError = edna_relational::Error::NoSuchTable("t".into()).into();
        assert_eq!(e.kind, ExitKind::Runtime);
    }

    #[test]
    fn metrics_sidecar_validation() {
        let good = "# HELP edna_statements_total statements\n# TYPE edna_statements_total \
                    counter\nedna_statements_total 42\n";
        assert!(validate_metrics_sidecar(good).is_ok());
        assert!(validate_metrics_sidecar("").is_err());
        assert!(validate_metrics_sidecar("garbage with no value lines at all\n").is_err());
        // Truncated mid-line: the sample has no numeric value.
        let truncated = "# TYPE edna_statements_total counter\nedna_statements_tot";
        assert!(validate_metrics_sidecar(truncated).is_err());
        // Pre-PR-4 state: no edna_* samples.
        let foreign = "# TYPE up gauge\nup 1\n";
        assert!(validate_metrics_sidecar(foreign).is_err());
    }

    #[test]
    fn trace_tree_nests_and_orphans_surface() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                label: "disguise_apply".into(),
                start_us: 0,
                dur_us: 90,
                attrs: vec![("disguise".into(), "Gdpr".into())],
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                label: "transform".into(),
                start_us: 10,
                dur_us: 40,
                attrs: vec![],
            },
            // Parent 99 was evicted from the ring buffer.
            SpanRecord {
                id: 3,
                parent: Some(99),
                label: "orphan".into(),
                start_us: 5,
                dur_us: 1,
                attrs: vec![],
            },
        ];
        let tree = format_trace_tree(&spans);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines[0], "disguise_apply  90us  disguise=Gdpr");
        assert_eq!(lines[1], "  transform  40us");
        assert_eq!(lines[2], "orphan  1us");
    }

    #[test]
    fn format_result_aligns() {
        let r = QueryResult {
            columns: vec!["id".into(), "name".into()],
            rows: vec![
                vec![Value::Int(1), Value::Text("bea".into())],
                vec![Value::Int(2000), Value::Text("m".into())],
            ],
            affected: 0,
            last_insert_id: None,
        };
        let s = format_result(&r);
        assert!(s.contains("id    name"));
        assert!(s.contains("(2 row(s))"));
    }
}
