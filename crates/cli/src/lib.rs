//! `edna-cli`: the command-line disguising tool.
//!
//! State layout for a workspace at path `STATE`:
//!
//! - `STATE` — database snapshot (see `edna_relational::snapshot`);
//! - `STATE.vault/global/`, `STATE.vault/user/` — file-backed vault tiers;
//! - registered disguise DSL texts live *in* the database, in the reserved
//!   `_edna_spec_registry` table, so every command sees the same specs.
//!
//! The per-user vault tier is encrypted when a passphrase is given
//! (per-user keys derived from it), matching the paper's §4.2 external
//! encrypted per-user vaults; without one it is plaintext, like the
//! prototype (§5).

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use edna_core::{Disguiser, SpanRecord, HISTORY_TABLE};
use edna_relational::{Database, QueryResult, Value};
use edna_vault::{FileStore, TieredVault, Vault};

/// Reserved table persisting registered disguise DSL texts.
pub const SPEC_REGISTRY_TABLE: &str = "_edna_spec_registry";

/// A CLI error: message already formatted for the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<edna_relational::Error> for CliError {
    fn from(e: edna_relational::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<edna_core::Error> for CliError {
    fn from(e: edna_core::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<edna_vault::Error> for CliError {
    fn from(e: edna_vault::Error) -> Self {
        CliError(e.to_string())
    }
}

/// Result alias for CLI operations.
pub type CliResult<T> = Result<T, CliError>;

/// An open CLI workspace: database + disguiser wired to on-disk vaults.
pub struct Workspace {
    /// Path of the snapshot file.
    pub path: PathBuf,
    /// The database (loaded from the snapshot).
    pub db: Database,
    /// The disguising tool (vaults under `<path>.vault/`).
    pub edna: Disguiser,
}

fn vault_dir(state: &Path, tier: &str) -> PathBuf {
    let mut os = state.as_os_str().to_os_string();
    os.push(".vault");
    PathBuf::from(os).join(tier)
}

impl Workspace {
    /// Creates a fresh workspace at `path` (fails if it exists).
    pub fn init(path: impl AsRef<Path>, passphrase: Option<&str>) -> CliResult<Workspace> {
        let path = path.as_ref();
        if path.exists() {
            return Err(CliError(format!("{} already exists", path.display())));
        }
        let db = Database::new();
        ensure_registry(&db)?;
        db.save(path)?;
        Self::open(path, passphrase)
    }

    /// Opens an existing workspace, recovering from an interrupted save:
    /// a crash between snapshot write and atomic rename leaves a stale
    /// `.tmp` beside the authoritative snapshot, which is swept here. The
    /// file-backed vault tiers likewise sweep their temp files and
    /// truncate torn record tails when opened.
    pub fn open(path: impl AsRef<Path>, passphrase: Option<&str>) -> CliResult<Workspace> {
        let path = path.as_ref().to_path_buf();
        let tmp = path.with_extension("tmp");
        if tmp.exists() {
            std::fs::remove_file(&tmp)
                .map_err(|e| CliError(format!("cannot sweep stale {}: {e}", tmp.display())))?;
        }
        let db = Database::load(&path)?;
        ensure_registry(&db)?;
        let global = Vault::plain(FileStore::open(vault_dir(&path, "global"))?);
        let user_store = FileStore::open(vault_dir(&path, "user"))?;
        let per_user = match passphrase {
            Some(p) => Vault::encrypted_derived(user_store, p, 0xC11),
            None => Vault::plain(user_store),
        };
        let mut edna = Disguiser::with_vaults(db.clone(), TieredVault::new(global, per_user));
        // Re-register persisted specs.
        let specs = db.execute(&format!(
            "SELECT dsl FROM {SPEC_REGISTRY_TABLE} ORDER BY id"
        ))?;
        for row in specs.rows {
            let dsl = row[0].as_text()?;
            edna.register_dsl(dsl)?;
        }
        Ok(Workspace { path, db, edna })
    }

    /// Persists the database snapshot, plus a `<state>.metrics` sidecar
    /// with the Prometheus-text rendering of this process's metrics
    /// registry (readable later via `edna stats`).
    pub fn save(&self) -> CliResult<()> {
        self.db.save(&self.path)?;
        std::fs::write(self.metrics_path(), self.db.metrics().render_prometheus())
            .map_err(|e| CliError(format!("cannot write metrics sidecar: {e}")))?;
        Ok(())
    }

    /// Where the metrics sidecar of this workspace lives.
    pub fn metrics_path(&self) -> PathBuf {
        let mut os = self.path.as_os_str().to_os_string();
        os.push(".metrics");
        PathBuf::from(os)
    }

    /// Registers a disguise from DSL text and persists it in the registry.
    pub fn register_spec(&mut self, dsl: &str) -> CliResult<String> {
        let name = self.edna.register_dsl(dsl)?;
        let quoted = name.replace('\'', "''");
        self.db.execute(&format!(
            "DELETE FROM {SPEC_REGISTRY_TABLE} WHERE name = '{quoted}'"
        ))?;
        self.db.insert_row(
            SPEC_REGISTRY_TABLE,
            &[
                ("name", Value::Text(name.clone())),
                ("dsl", Value::Text(dsl.to_string())),
            ],
        )?;
        self.save()?;
        Ok(name)
    }

    /// Names of registered disguises, sorted.
    pub fn spec_names(&self) -> CliResult<Vec<String>> {
        let r = self.db.execute(&format!(
            "SELECT name FROM {SPEC_REGISTRY_TABLE} ORDER BY name"
        ))?;
        r.rows
            .into_iter()
            .map(|row| Ok(row[0].as_text().map_err(CliError::from)?.to_string()))
            .collect()
    }
}

fn ensure_registry(db: &Database) -> CliResult<()> {
    if !db.has_table(SPEC_REGISTRY_TABLE) {
        db.execute(&format!(
            "CREATE TABLE {SPEC_REGISTRY_TABLE} (id INT PRIMARY KEY AUTO_INCREMENT, \
             name TEXT NOT NULL UNIQUE, dsl TEXT NOT NULL)"
        ))?;
    }
    Ok(())
}

/// Parses a user id argument: integer if it parses, text otherwise.
pub fn parse_user(arg: &str) -> Value {
    match arg.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::Text(arg.to_string()),
    }
}

/// Renders a query result as an aligned text table.
pub fn format_result(r: &QueryResult) -> String {
    let mut out = String::new();
    if r.columns.is_empty() {
        let _ = writeln!(out, "ok ({} row(s) affected)", r.affected);
        if let Some(id) = r.last_insert_id {
            let _ = writeln!(out, "last insert id: {id}");
        }
        return out;
    }
    let mut widths: Vec<usize> = r.columns.iter().map(|c| c.len()).collect();
    let rendered: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| row.iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    for (i, c) in r.columns.iter().enumerate() {
        let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in r.columns.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    let _ = writeln!(out, "({} row(s))", r.rows.len());
    out
}

/// Renders exported spans (`--trace-out` JSONL) as an indented tree,
/// children under their parents, siblings in start order.
pub fn format_trace_tree(spans: &[SpanRecord]) -> String {
    let mut roots: Vec<&SpanRecord> = Vec::new();
    let mut children: std::collections::HashMap<u64, Vec<&SpanRecord>> =
        std::collections::HashMap::new();
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    for s in spans {
        match s.parent {
            // A parent evicted from the ring buffer orphans the child;
            // show it as a root rather than dropping it.
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(s),
            _ => roots.push(s),
        }
    }
    roots.sort_by_key(|s| s.start_us);
    for v in children.values_mut() {
        v.sort_by_key(|s| s.start_us);
    }
    let mut out = String::new();
    fn emit(
        out: &mut String,
        s: &SpanRecord,
        depth: usize,
        children: &std::collections::HashMap<u64, Vec<&SpanRecord>>,
    ) {
        let _ = write!(out, "{}{}  {}us", "  ".repeat(depth), s.label, s.dur_us);
        for (k, v) in &s.attrs {
            let _ = write!(out, "  {k}={v}");
        }
        out.push('\n');
        if let Some(kids) = children.get(&s.id) {
            for kid in kids {
                emit(out, kid, depth + 1, children);
            }
        }
    }
    for root in roots {
        emit(&mut out, root, 0, &children);
    }
    out
}

/// Renders the disguise history as a table.
pub fn format_history(edna: &Disguiser) -> CliResult<String> {
    let r = edna.database().execute(&format!(
        "SELECT id, name, userId, appliedAt, reversible, reverted FROM {HISTORY_TABLE} \
         ORDER BY id"
    ))?;
    Ok(format_result(&r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_state(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("edna_cli_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let mut v = p.as_os_str().to_os_string();
        v.push(".vault");
        let _ = std::fs::remove_dir_all(PathBuf::from(v));
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        let mut m = p.as_os_str().to_os_string();
        m.push(".metrics");
        let _ = std::fs::remove_file(PathBuf::from(m));
        let mut v = p.as_os_str().to_os_string();
        v.push(".vault");
        let _ = std::fs::remove_dir_all(PathBuf::from(v));
    }

    const SPEC: &str = r#"
disguise_name: "Gdpr"
user_to_disguise: $UID
tables: {
  users: { transformations: [ Remove(pred: "id = $UID") ] },
}
"#;

    #[test]
    fn full_cli_lifecycle_across_reopens() {
        let state = temp_state("lifecycle");
        // init + schema + data.
        {
            let ws = Workspace::init(&state, Some("pw")).unwrap();
            ws.db
                .execute("CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)")
                .unwrap();
            ws.db
                .execute("INSERT INTO users (name) VALUES ('bea'), ('mel')")
                .unwrap();
            ws.save().unwrap();
        }
        // register the disguise in a second "process".
        {
            let mut ws = Workspace::open(&state, Some("pw")).unwrap();
            let name = ws.register_spec(SPEC).unwrap();
            assert_eq!(name, "Gdpr");
            assert_eq!(ws.spec_names().unwrap(), vec!["Gdpr".to_string()]);
        }
        // apply in a third.
        let disguise_id = {
            let ws = Workspace::open(&state, Some("pw")).unwrap();
            let report = ws.edna.apply("Gdpr", Some(&Value::Int(1))).unwrap();
            ws.save().unwrap();
            report.disguise_id
        };
        // reveal in a fourth — the vault survived on disk, encrypted.
        {
            let ws = Workspace::open(&state, Some("pw")).unwrap();
            assert_eq!(ws.db.row_count("users").unwrap(), 1);
            ws.edna.reveal(disguise_id).unwrap();
            ws.save().unwrap();
        }
        let ws = Workspace::open(&state, Some("pw")).unwrap();
        assert_eq!(ws.db.row_count("users").unwrap(), 2);
        cleanup(&state);
    }

    #[test]
    fn wrong_passphrase_cannot_reveal() {
        let state = temp_state("wrongpw");
        let disguise_id = {
            let mut ws = Workspace::init(&state, Some("pw")).unwrap();
            ws.db
                .execute("CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)")
                .unwrap();
            ws.db
                .execute("INSERT INTO users (name) VALUES ('bea')")
                .unwrap();
            ws.register_spec(SPEC).unwrap();
            let r = ws.edna.apply("Gdpr", Some(&Value::Int(1))).unwrap();
            ws.save().unwrap();
            r.disguise_id
        };
        let ws = Workspace::open(&state, Some("not-the-passphrase")).unwrap();
        assert!(ws.edna.reveal(disguise_id).is_err());
        cleanup(&state);
    }

    #[test]
    fn crashed_save_is_recovered_on_open() {
        let state = temp_state("crashsave");
        {
            let ws = Workspace::init(&state, None).unwrap();
            ws.db
                .execute("CREATE TABLE users (id INT PRIMARY KEY, name TEXT)")
                .unwrap();
            ws.db
                .execute("INSERT INTO users VALUES (1, 'bea')")
                .unwrap();
            ws.save().unwrap();
        }
        // Simulate a crash mid-save: a half-written temp file next to the
        // authoritative snapshot.
        std::fs::write(state.with_extension("tmp"), b"half a snapshot").unwrap();
        let ws = Workspace::open(&state, None).unwrap();
        assert!(!state.with_extension("tmp").exists(), "stale tmp swept");
        assert_eq!(ws.db.row_count("users").unwrap(), 1);

        // A corrupted snapshot itself is a clear error, not a bad load.
        let mut bytes = std::fs::read(&state).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&state, &bytes).unwrap();
        let err = Workspace::open(&state, None).err().unwrap().to_string();
        assert!(err.contains("corrupt snapshot"), "got: {err}");
        cleanup(&state);
    }

    #[test]
    fn init_refuses_to_clobber() {
        let state = temp_state("clobber");
        Workspace::init(&state, None).unwrap();
        assert!(Workspace::init(&state, None).is_err());
        cleanup(&state);
    }

    #[test]
    fn parse_user_handles_ints_and_text() {
        assert_eq!(parse_user("42"), Value::Int(42));
        assert_eq!(parse_user("-3"), Value::Int(-3));
        assert_eq!(parse_user("bea"), Value::Text("bea".into()));
    }

    #[test]
    fn save_writes_metrics_sidecar() {
        let state = temp_state("metrics");
        let ws = Workspace::init(&state, None).unwrap();
        ws.db
            .execute("CREATE TABLE t (id INT PRIMARY KEY)")
            .unwrap();
        ws.save().unwrap();
        let text = std::fs::read_to_string(ws.metrics_path()).unwrap();
        assert!(text.contains("edna_statements_total"), "got: {text}");
        assert!(text.contains("# TYPE"), "got: {text}");
        cleanup(&state);
    }

    #[test]
    fn trace_tree_nests_and_orphans_surface() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                label: "disguise_apply".into(),
                start_us: 0,
                dur_us: 90,
                attrs: vec![("disguise".into(), "Gdpr".into())],
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                label: "transform".into(),
                start_us: 10,
                dur_us: 40,
                attrs: vec![],
            },
            // Parent 99 was evicted from the ring buffer.
            SpanRecord {
                id: 3,
                parent: Some(99),
                label: "orphan".into(),
                start_us: 5,
                dur_us: 1,
                attrs: vec![],
            },
        ];
        let tree = format_trace_tree(&spans);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines[0], "disguise_apply  90us  disguise=Gdpr");
        assert_eq!(lines[1], "  transform  40us");
        assert_eq!(lines[2], "orphan  1us");
    }

    #[test]
    fn format_result_aligns() {
        let r = QueryResult {
            columns: vec!["id".into(), "name".into()],
            rows: vec![
                vec![Value::Int(1), Value::Text("bea".into())],
                vec![Value::Int(2000), Value::Text("m".into())],
            ],
            affected: 0,
            last_insert_id: None,
        };
        let s = format_result(&r);
        assert!(s.contains("id    name"));
        assert!(s.contains("(2 row(s))"));
    }
}
