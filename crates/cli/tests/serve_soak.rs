//! Kill-sweep for the network layer: serve a workspace under concurrent
//! mixed traffic, SIGKILL the server at a random instant, then prove
//! `edna recover --verify` passes and the state re-serves cleanly.
//!
//! This extends the crash-atomicity sweeps of the fault-injection tests
//! (`tests/fault_sweep.rs`) to the process boundary: the WAL fsyncs
//! every committed statement before it is acknowledged, so no sequence
//! of acknowledged wire operations can be lost or torn by a kill.
//!
//! Iterations default low to keep `cargo test` fast; CI raises them via
//! `EDNA_SOAK_ITERS` (ci.sh runs the full sweep).

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use edna_server::Client;
use edna_util::rng::{Rng as _, SplitMix64};

fn temp_state(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("edna_soak_{tag}_{}", std::process::id()));
    cleanup(&p);
    p
}

fn cleanup(p: &Path) {
    let _ = std::fs::remove_file(p);
    for suffix in [".tmp", ".metrics", ".metrics.tmp", ".wal", ".lock"] {
        let mut os = p.as_os_str().to_os_string();
        os.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(os));
    }
    let mut os = p.as_os_str().to_os_string();
    os.push(".vault");
    let _ = std::fs::remove_dir_all(PathBuf::from(os));
}

fn edna_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_edna"))
}

/// Spawns `edna serve` on a free port and parses the bound address and
/// the operator shutdown token from its stdout banner.
fn spawn_serve(state: &str) -> (Child, SocketAddr, String) {
    let mut child = edna_bin()
        .args([
            "serve",
            state,
            "--addr",
            "127.0.0.1:0",
            "--checkpoint-secs",
            "1",
            "--conn-timeout-ms",
            "5000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("serve announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .parse()
        .expect("parsable address");
    let mut token_line = String::new();
    reader
        .read_line(&mut token_line)
        .expect("serve announces its shutdown token");
    let token = token_line
        .trim()
        .strip_prefix("shutdown token ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {token_line:?}"))
        .to_string();
    (child, addr, token)
}

const SPEC: &str = r#"
disguise_name: "Gdpr"
user_to_disguise: $UID
tables: {
  users: { transformations: [ Remove(pred: "id = $UID") ] },
}
"#;

/// One traffic thread: mixed inserts, selects, and apply/reveal pairs,
/// until the connection dies (the kill) or `rounds` complete.
fn traffic(addr: SocketAddr, thread_id: u64, rounds: usize) {
    let Ok(mut c) = Client::connect_with_timeout(addr, Duration::from_secs(5)) else {
        return;
    };
    for i in 0..rounds {
        let r = match i % 3 {
            0 => c.sql(&format!(
                "INSERT INTO users (name) VALUES ('t{thread_id}r{i}')"
            )),
            1 => c.sql("SELECT COUNT(*) FROM users"),
            _ => {
                // Apply-then-reveal using the minted capability; either
                // half may be cut off by the kill, which is the point.
                match c.apply("Gdpr", Some(&format!("{}", thread_id + 1))) {
                    Ok(resp) if resp.ok => {
                        let id: u64 = match resp.header_value("id").and_then(|v| v.parse().ok()) {
                            Some(id) => id,
                            None => continue,
                        };
                        match resp.header_value("cap") {
                            Some(cap) => {
                                let cap = cap.to_string();
                                c.reveal(id, &cap)
                            }
                            None => continue,
                        }
                    }
                    other => other,
                }
            }
        };
        if r.is_err() {
            return; // server killed mid-conversation — expected.
        }
    }
}

#[test]
fn sigkill_under_concurrent_traffic_recovers_and_reserves() {
    let iterations: usize = std::env::var("EDNA_SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let state = temp_state("sigkill");
    let s = state.to_str().unwrap().to_string();

    // Seed the workspace through the binary, like an operator would.
    let ok = edna_bin().args(["init", &s]).status().unwrap().success();
    assert!(ok, "init failed");
    let ok = edna_bin()
        .args([
            "sql",
            &s,
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)",
        ])
        .status()
        .unwrap()
        .success();
    assert!(ok, "schema failed");
    let spec_file = state.with_extension("edna_spec");
    std::fs::write(&spec_file, SPEC).unwrap();
    let ok = edna_bin()
        .args(["register", &s, spec_file.to_str().unwrap()])
        .status()
        .unwrap()
        .success();
    assert!(ok, "register failed");

    let mut rng = SplitMix64::new(0xEDAA_50AC);
    for iteration in 0..iterations {
        let (mut child, addr, _token) = spawn_serve(&s);

        // Concurrent mixed traffic from several connections.
        let threads: Vec<_> = (0..4)
            .map(|t| std::thread::spawn(move || traffic(addr, t, 200)))
            .collect();

        // Kill at a random instant while traffic is in flight.
        let delay = 50 + (rng.next_u64() % 400);
        std::thread::sleep(Duration::from_millis(delay));
        child.kill().expect("SIGKILL");
        let _ = child.wait();
        for t in threads {
            let _ = t.join();
        }

        // The kill left a stale lock and possibly a WAL tail and
        // half-applied disguises; recovery must resolve all of it.
        let out = edna_bin()
            .args(["recover", &s, "--verify"])
            .output()
            .expect("recover runs");
        assert!(
            out.status.success(),
            "iteration {iteration}: recover --verify failed (exit {:?}):\n{}{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("integrity: ok"),
            "iteration {iteration}: {stdout}"
        );
    }

    // After the last kill+recover the state still serves cleanly.
    let (mut child, addr, token) = spawn_serve(&s);
    let mut c = Client::connect(addr).unwrap();
    let r = c.sql("SELECT COUNT(*) FROM users").unwrap();
    assert!(r.ok, "{}", r.body);
    // Without the operator token the drain is refused...
    let denied = c.shutdown("not-the-token").unwrap();
    assert!(!denied.ok, "tokenless shutdown must be denied");
    // ...and with it the server drains cleanly.
    assert!(c.shutdown(&token).unwrap().ok);
    let status = child.wait().unwrap();
    assert!(status.success(), "clean drain exits 0");

    let _ = std::fs::remove_file(&spec_file);
    cleanup(&state);
}
