//! Process-level tests: drive the compiled `edna` binary end to end, the
//! way a user would.

use std::path::PathBuf;
use std::process::Command;

fn edna(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_edna"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

fn temp_state(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("edna_bin_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    let mut v = p.as_os_str().to_os_string();
    v.push(".vault");
    let _ = std::fs::remove_dir_all(PathBuf::from(v));
    p
}

fn cleanup(p: &PathBuf) {
    let _ = std::fs::remove_file(p);
    let mut v = p.as_os_str().to_os_string();
    v.push(".vault");
    let _ = std::fs::remove_dir_all(PathBuf::from(v));
}

#[test]
fn demo_apply_reveal_lifecycle_through_the_binary() {
    let state = temp_state("lifecycle");
    let s = state.to_str().unwrap();

    let (ok, stdout, stderr) =
        edna(&["demo", s, "hotcrp", "--scale", "0.05", "--passphrase", "pw"]);
    assert!(ok, "demo failed: {stderr}");
    assert!(stdout.contains("created HotCRP demo"), "{stdout}");

    let (ok, stdout, _) = edna(&["specs", s, "--passphrase", "pw"]);
    assert!(ok);
    assert!(stdout.contains("HotCRP-GDPR+"), "{stdout}");

    let (ok, stdout, stderr) = edna(&[
        "apply",
        s,
        "HotCRP-GDPR+",
        "--user",
        "1",
        "--passphrase",
        "pw",
    ]);
    assert!(ok, "apply failed: {stderr}");
    assert!(stdout.contains("applied HotCRP-GDPR+"), "{stdout}");

    let (ok, stdout, _) = edna(&[
        "sql",
        s,
        "SELECT COUNT(*) FROM Review WHERE contactId = 1",
        "--passphrase",
        "pw",
    ]);
    assert!(ok);
    assert!(
        stdout.contains('0'),
        "no reviews attributed after scrub: {stdout}"
    );

    let (ok, stdout, _) = edna(&["history", s, "--passphrase", "pw"]);
    assert!(ok);
    assert!(stdout.contains("HotCRP-GDPR+"), "{stdout}");

    let (ok, stdout, _) = edna(&["disguised", s, "--passphrase", "pw"]);
    assert!(ok);
    assert!(stdout.contains("review"), "disguised rows listed: {stdout}");

    let (ok, stdout, stderr) = edna(&[
        "reveal",
        s,
        "--latest",
        "HotCRP-GDPR+",
        "--user",
        "1",
        "--passphrase",
        "pw",
    ]);
    assert!(ok, "reveal failed: {stderr}");
    assert!(stdout.contains("revealed HotCRP-GDPR+"), "{stdout}");

    let (ok, stdout, _) = edna(&["explain", s, "SELECT * FROM Review WHERE contactId = 1"]);
    assert!(ok);
    assert!(stdout.contains("index probe"), "{stdout}");

    cleanup(&state);
}

#[test]
fn binary_reports_errors_cleanly() {
    let state = temp_state("errors");
    let s = state.to_str().unwrap();

    let (ok, _, stderr) = edna(&["bogus-command", s]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");

    let (ok, _, stderr) = edna(&["sql", s, "SELECT 1 FROM nope"]);
    assert!(!ok, "opening a missing workspace fails");
    assert!(stderr.contains("error"), "{stderr}");

    let (ok, _, _) = edna(&["init", s]);
    assert!(ok);
    let (ok, _, stderr) = edna(&["init", s]);
    assert!(!ok, "re-init refuses to clobber");
    assert!(stderr.contains("already exists"), "{stderr}");

    let (ok, _, stderr) = edna(&["apply", s, "NoSuchDisguise"]);
    assert!(!ok);
    assert!(stderr.contains("no such disguise"), "{stderr}");

    cleanup(&state);
}

#[test]
fn check_flags_flawed_spec_and_passes_bundled_ones() {
    let state = temp_state("check");
    let s = state.to_str().unwrap();

    let (ok, _, stderr) = edna(&["demo", s, "hotcrp", "--scale", "0.05"]);
    assert!(ok, "demo failed: {stderr}");

    // Every bundled spec is clean, even with warnings denied.
    let (ok, stdout, stderr) = edna(&["check", s, "--all", "--deny-warnings"]);
    assert!(ok, "bundled specs should pass: {stdout}{stderr}");
    assert!(stdout.contains("HotCRP-GDPR: ok"), "{stdout}");

    // A single registered spec can be named.
    let (ok, stdout, _) = edna(&["check", s, "HotCRP-ConfAnon"]);
    assert!(ok);
    assert!(stdout.contains("HotCRP-ConfAnon: ok"), "{stdout}");

    // The intentionally flawed example spec is rejected with the
    // documented diagnostics, without being registered.
    let flawed = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/flawed_scrub.edna"
    );
    let (ok, stdout, stderr) = edna(&["check", s, flawed]);
    assert!(!ok, "flawed spec must fail: {stdout}");
    assert!(stdout.contains("error[E010]"), "orphaning Remove: {stdout}");
    assert!(stdout.contains("error[E001]"), "type mismatch: {stdout}");
    assert!(stderr.contains("check failed"), "{stderr}");

    // Checking a file does not register it.
    let (ok, stdout, _) = edna(&["specs", s]);
    assert!(ok);
    assert!(!stdout.contains("Flawed-Scrub"), "{stdout}");

    // A target that is neither a spec nor a file is a clean error.
    let (ok, _, stderr) = edna(&["check", s, "NoSuchThing"]);
    assert!(!ok);
    assert!(stderr.contains("neither a registered disguise"), "{stderr}");

    cleanup(&state);
}

/// Like `edna`, but returns the raw exit code for assertions on the
/// documented failure classes (usage=2, runtime=1, recovery=3).
fn edna_exit_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_edna"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

#[test]
fn exit_codes_distinguish_usage_runtime_and_recovery() {
    let state = temp_state("exitcodes");
    let s = state.to_str().unwrap();

    // Usage errors: unknown command, bad flag value, missing argument.
    let (code, _, _) = edna_exit_code(&["bogus-command", s]);
    assert_eq!(code, Some(2));
    let (code, _, _) = edna_exit_code(&["reveal", s, "--id", "not-a-number"]);
    assert_eq!(code, Some(2));

    // Runtime failure: operating on a workspace that does not exist.
    let (code, _, _) = edna_exit_code(&["sql", s, "SELECT 1 FROM t"]);
    assert_eq!(code, Some(1));

    let (code, _, _) = edna_exit_code(&["init", s]);
    assert_eq!(code, Some(0));
    let (code, _, _) = edna_exit_code(&["sql", s, "CREATE TABLE t (id INT PRIMARY KEY)"]);
    assert_eq!(code, Some(0));

    // Runtime failure on a live workspace: engine error.
    let (code, _, stderr) = edna_exit_code(&["sql", s, "SELECT * FROM no_such_table"]);
    assert_eq!(code, Some(1), "{stderr}");

    // Recovery needed: the snapshot itself is corrupt — open-time
    // recovery cannot repair a flipped byte in the authoritative copy.
    let mut bytes = std::fs::read(&state).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&state, &bytes).unwrap();
    let (code, _, stderr) = edna_exit_code(&["sql", s, "SELECT 1 FROM t"]);
    assert_eq!(
        code,
        Some(3),
        "corrupt snapshot is the recovery class: {stderr}"
    );
    assert!(stderr.contains("corrupt snapshot"), "{stderr}");
    let (code, _, _) = edna_exit_code(&["recover", s, "--verify"]);
    assert_eq!(code, Some(3));

    cleanup(&state);
    let mut wal = state.as_os_str().to_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(PathBuf::from(wal));
}

#[test]
fn stats_gives_actionable_errors_for_missing_or_damaged_sidecar() {
    let state = temp_state("statserr");
    let s = state.to_str().unwrap();
    let sidecar = |suffix: &str| {
        let mut p = state.as_os_str().to_os_string();
        p.push(suffix);
        PathBuf::from(p)
    };

    let (ok, _, _) = edna(&["init", s]);
    assert!(ok);
    // First open may checkpoint init leftovers and regenerate the
    // sidecar; settle the state, then remove the sidecar for real.
    let _ = edna(&["stats", s]);

    // A workspace without a sidecar: the error says how to make one,
    // and it is the runtime class.
    let _ = std::fs::remove_file(sidecar(".metrics"));
    let (code, _, stderr) = edna_exit_code(&["stats", s]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("no metrics sidecar"), "{stderr}");
    assert!(stderr.contains("state-mutating command"), "{stderr}");

    // A truncated sidecar (or one from a pre-observability build) is
    // diagnosed, not dumped as garbage.
    std::fs::write(
        sidecar(".metrics"),
        "# TYPE edna_statements_total counter\nedna_sta",
    )
    .unwrap();
    let (code, _, stderr) = edna_exit_code(&["stats", s]);
    assert_eq!(code, Some(1));
    assert!(
        stderr.contains("truncated or written by an older edna"),
        "{stderr}"
    );

    std::fs::write(sidecar(".metrics"), "# TYPE up gauge\nup 1\n").unwrap();
    let (_, _, stderr) = edna_exit_code(&["stats", s]);
    assert!(stderr.contains("older edna"), "{stderr}");

    // After any state-mutating command the sidecar is healthy again.
    let (ok, _, _) = edna(&["sql", s, "CREATE TABLE t (id INT PRIMARY KEY)"]);
    assert!(ok);
    let (code, stdout, stderr) = edna_exit_code(&["stats", s]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("edna_statements_total"), "{stdout}");

    cleanup(&state);
    for suffix in [".metrics", ".wal", ".lock"] {
        let _ = std::fs::remove_file(sidecar(suffix));
    }
}

fn example(name: &str) -> String {
    format!("{}/../../examples/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Builds a workspace from the audit-demo schema with the given example
/// specs/policies registered, returning the state path.
fn counterexample_state(tag: &str, files: &[&str]) -> PathBuf {
    let state = temp_state(tag);
    let s = state.to_str().unwrap();
    let (ok, _, stderr) = edna(&["init", s]);
    assert!(ok, "{stderr}");
    let (ok, _, stderr) = edna(&["load-sql", s, &example("audit_demo.sql")]);
    assert!(ok, "{stderr}");
    for f in files {
        let (ok, stdout, stderr) = edna(&["register", s, &example(f)]);
        assert!(ok, "registering {f}: {stderr}");
        // `register` routes on content: policy files go to the policy
        // registry, everything else is a disguise spec.
        if f.contains("policy") {
            assert!(stdout.contains("registered policy"), "{stdout}");
        } else {
            assert!(stdout.contains("registered disguise"), "{stdout}");
        }
    }
    state
}

#[test]
fn audit_is_green_on_demos() {
    let state = temp_state("audit_green");
    let s = state.to_str().unwrap();
    let (ok, _, stderr) = edna(&["demo", s, "hotcrp", "--scale", "0.05"]);
    assert!(ok, "{stderr}");

    // The bundled demo composes cleanly: reveal-reachability proven,
    // even with warnings denied.
    let (code, stdout, stderr) = edna_exit_code(&["audit", s, "--deny-warnings"]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    assert!(stdout.contains("workspace: ok"), "{stdout}");

    // Machine-readable output is one JSON document on stdout.
    let (code, stdout, _) = edna_exit_code(&["audit", s, "--format", "json"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("\"tool\":\"edna audit\""), "{stdout}");
    assert!(stdout.contains("\"summary\":{\"errors\":0"), "{stdout}");

    // A bad --format value is the usage class, not a runtime failure.
    let (code, _, stderr) = edna_exit_code(&["audit", s, "--format", "yaml"]);
    assert_eq!(code, Some(2), "{stderr}");

    cleanup(&state);
}

#[test]
fn audit_rejects_vault_orphaning_counterexample() {
    let state = counterexample_state(
        "audit_trap",
        &["vault_trap_keep.edna", "vault_trap_purge.edna"],
    );
    let s = state.to_str().unwrap();

    // Findings are the runtime class (exit 1), with the specific codes.
    let (code, stdout, stderr) = edna_exit_code(&["audit", s]);
    assert_eq!(code, Some(1), "{stdout}{stderr}");
    assert!(stdout.contains("error[E050]"), "{stdout}");
    assert!(stdout.contains("error[E051]"), "{stdout}");
    assert!(stdout.contains("Vault-Trap-Purge"), "{stdout}");
    assert!(stderr.contains("audit failed: 2 error(s)"), "{stderr}");

    // JSON carries the same codes and a non-zero summary.
    let (code, stdout, _) = edna_exit_code(&["audit", s, "--format", "json"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"code\":\"E050\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"E051\""), "{stdout}");
    assert!(stdout.contains("\"summary\":{\"errors\":2"), "{stdout}");

    cleanup(&state);
}

#[test]
fn audit_rejects_diverging_decay_counterexample() {
    let state = counterexample_state(
        "audit_decay",
        &["endless_decay.edna", "endless_decay_policy.edna"],
    );
    let s = state.to_str().unwrap();

    let (code, stdout, stderr) = edna_exit_code(&["audit", s]);
    assert_eq!(code, Some(1), "{stdout}{stderr}");
    assert!(stdout.contains("error[E052]"), "{stdout}");
    assert!(stdout.contains("never converges"), "{stdout}");
    assert!(stdout.contains("HashText"), "{stdout}");

    cleanup(&state);
}

#[test]
fn serve_refuses_audit_errors_unless_skipped() {
    let state = counterexample_state(
        "serve_audit",
        &["vault_trap_keep.edna", "vault_trap_purge.edna"],
    );
    let s = state.to_str().unwrap();

    // Startup is refused while the disguise graph has audit errors.
    let (code, _, stderr) = edna_exit_code(&["serve", s]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("refusing to serve"), "{stderr}");
    assert!(
        stderr.contains("error[E051]"),
        "audit report shown: {stderr}"
    );

    // The operator escape hatch really starts the server.
    use std::io::{BufRead, BufReader};
    let mut child = Command::new(env!("CARGO_BIN_EXE_edna"))
        .args(["serve", s, "--skip-audit"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().unwrap();
    let mut first_line = String::new();
    BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("serve prints its address");
    assert!(
        first_line.starts_with("listening on "),
        "skip-audit server came up: {first_line}"
    );
    child.kill().expect("server stops");
    let _ = child.wait();

    cleanup(&state);
}
