//! Process-level tests: drive the compiled `edna` binary end to end, the
//! way a user would.

use std::path::PathBuf;
use std::process::Command;

fn edna(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_edna"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

fn temp_state(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("edna_bin_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    let mut v = p.as_os_str().to_os_string();
    v.push(".vault");
    let _ = std::fs::remove_dir_all(PathBuf::from(v));
    p
}

fn cleanup(p: &PathBuf) {
    let _ = std::fs::remove_file(p);
    let mut v = p.as_os_str().to_os_string();
    v.push(".vault");
    let _ = std::fs::remove_dir_all(PathBuf::from(v));
}

#[test]
fn demo_apply_reveal_lifecycle_through_the_binary() {
    let state = temp_state("lifecycle");
    let s = state.to_str().unwrap();

    let (ok, stdout, stderr) =
        edna(&["demo", s, "hotcrp", "--scale", "0.05", "--passphrase", "pw"]);
    assert!(ok, "demo failed: {stderr}");
    assert!(stdout.contains("created HotCRP demo"), "{stdout}");

    let (ok, stdout, _) = edna(&["specs", s, "--passphrase", "pw"]);
    assert!(ok);
    assert!(stdout.contains("HotCRP-GDPR+"), "{stdout}");

    let (ok, stdout, stderr) = edna(&[
        "apply",
        s,
        "HotCRP-GDPR+",
        "--user",
        "1",
        "--passphrase",
        "pw",
    ]);
    assert!(ok, "apply failed: {stderr}");
    assert!(stdout.contains("applied HotCRP-GDPR+"), "{stdout}");

    let (ok, stdout, _) = edna(&[
        "sql",
        s,
        "SELECT COUNT(*) FROM Review WHERE contactId = 1",
        "--passphrase",
        "pw",
    ]);
    assert!(ok);
    assert!(
        stdout.contains('0'),
        "no reviews attributed after scrub: {stdout}"
    );

    let (ok, stdout, _) = edna(&["history", s, "--passphrase", "pw"]);
    assert!(ok);
    assert!(stdout.contains("HotCRP-GDPR+"), "{stdout}");

    let (ok, stdout, _) = edna(&["disguised", s, "--passphrase", "pw"]);
    assert!(ok);
    assert!(stdout.contains("review"), "disguised rows listed: {stdout}");

    let (ok, stdout, stderr) = edna(&[
        "reveal",
        s,
        "--latest",
        "HotCRP-GDPR+",
        "--user",
        "1",
        "--passphrase",
        "pw",
    ]);
    assert!(ok, "reveal failed: {stderr}");
    assert!(stdout.contains("revealed HotCRP-GDPR+"), "{stdout}");

    let (ok, stdout, _) = edna(&["explain", s, "SELECT * FROM Review WHERE contactId = 1"]);
    assert!(ok);
    assert!(stdout.contains("index probe"), "{stdout}");

    cleanup(&state);
}

#[test]
fn binary_reports_errors_cleanly() {
    let state = temp_state("errors");
    let s = state.to_str().unwrap();

    let (ok, _, stderr) = edna(&["bogus-command", s]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");

    let (ok, _, stderr) = edna(&["sql", s, "SELECT 1 FROM nope"]);
    assert!(!ok, "opening a missing workspace fails");
    assert!(stderr.contains("error"), "{stderr}");

    let (ok, _, _) = edna(&["init", s]);
    assert!(ok);
    let (ok, _, stderr) = edna(&["init", s]);
    assert!(!ok, "re-init refuses to clobber");
    assert!(stderr.contains("already exists"), "{stderr}");

    let (ok, _, stderr) = edna(&["apply", s, "NoSuchDisguise"]);
    assert!(!ok);
    assert!(stderr.contains("no such disguise"), "{stderr}");

    cleanup(&state);
}

#[test]
fn check_flags_flawed_spec_and_passes_bundled_ones() {
    let state = temp_state("check");
    let s = state.to_str().unwrap();

    let (ok, _, stderr) = edna(&["demo", s, "hotcrp", "--scale", "0.05"]);
    assert!(ok, "demo failed: {stderr}");

    // Every bundled spec is clean, even with warnings denied.
    let (ok, stdout, stderr) = edna(&["check", s, "--all", "--deny-warnings"]);
    assert!(ok, "bundled specs should pass: {stdout}{stderr}");
    assert!(stdout.contains("HotCRP-GDPR: ok"), "{stdout}");

    // A single registered spec can be named.
    let (ok, stdout, _) = edna(&["check", s, "HotCRP-ConfAnon"]);
    assert!(ok);
    assert!(stdout.contains("HotCRP-ConfAnon: ok"), "{stdout}");

    // The intentionally flawed example spec is rejected with the
    // documented diagnostics, without being registered.
    let flawed = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/flawed_scrub.edna"
    );
    let (ok, stdout, stderr) = edna(&["check", s, flawed]);
    assert!(!ok, "flawed spec must fail: {stdout}");
    assert!(stdout.contains("error[E010]"), "orphaning Remove: {stdout}");
    assert!(stdout.contains("error[E001]"), "type mismatch: {stdout}");
    assert!(stderr.contains("check failed"), "{stderr}");

    // Checking a file does not register it.
    let (ok, stdout, _) = edna(&["specs", s]);
    assert!(ok);
    assert!(!stdout.contains("Flawed-Scrub"), "{stdout}");

    // A target that is neither a spec nor a file is a clean error.
    let (ok, _, stderr) = edna(&["check", s, "NoSuchThing"]);
    assert!(!ok);
    assert!(stderr.contains("neither a registered disguise"), "{stderr}");

    cleanup(&state);
}
