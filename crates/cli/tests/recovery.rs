//! Kill sweep over disguise application: crash at every WAL frame, in
//! every crash style, and assert that `Workspace::open` recovers to a
//! state where the database is structurally consistent and the history
//! table, vault, and pending-write journal agree — the disguise either
//! fully happened or fully didn't.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use edna_cli::Workspace;
use edna_core::HISTORY_TABLE;
use edna_relational::{Value, WalCrash};
use edna_vault::{FileStore, Vault, VaultJournal};

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("edna_cli_sweep_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self, file: &str) -> PathBuf {
        self.0.join(file)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const SPEC: &str = r#"
disguise_name: "Gdpr"
user_to_disguise: $UID
tables: {
  users: { transformations: [ Remove(pred: "id = $UID") ] },
}
"#;

/// Builds a saved baseline workspace: FK schema, data, registered spec.
fn make_baseline(state: &Path) {
    let ws = Workspace::init(state, None).unwrap();
    ws.db
        .execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL);
             CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, FOREIGN KEY (user_id) REFERENCES users(id) ON DELETE CASCADE);
             INSERT INTO users (name) VALUES ('bea'), ('mel');
             INSERT INTO posts (user_id, body) VALUES (1, 'a'), (2, 'b');",
        )
        .unwrap();
    ws.register_spec(SPEC).unwrap();
    ws.save().unwrap();
}

/// Copies every on-disk artifact of a workspace to a new base path.
fn copy_state(src: &Path, dst: &Path) {
    std::fs::copy(src, dst).unwrap();
    for suffix in [".wal", ".metrics"] {
        let s = sidecar(src, suffix);
        if s.exists() {
            std::fs::copy(&s, sidecar(dst, suffix)).unwrap();
        }
    }
    let (sv, dv) = (sidecar(src, ".vault"), sidecar(dst, ".vault"));
    if sv.exists() {
        copy_dir(&sv, &dv);
    }
}

fn sidecar(base: &Path, suffix: &str) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn user_rows(ws: &Workspace) -> Vec<Vec<Value>> {
    ws.db
        .execute("SELECT id, name FROM users ORDER BY id")
        .unwrap()
        .rows
}

fn post_rows(ws: &Workspace) -> Vec<Vec<Value>> {
    ws.db
        .execute("SELECT id, user_id FROM posts ORDER BY id")
        .unwrap()
        .rows
}

fn history_count(ws: &Workspace) -> i64 {
    match ws
        .db
        .execute(&format!(
            "SELECT COUNT(*) FROM {HISTORY_TABLE} WHERE name = 'Gdpr' AND reverted = FALSE"
        ))
        .unwrap()
        .scalar()
        .unwrap()
    {
        Value::Int(n) => *n,
        other => panic!("count returned {other:?}"),
    }
}

fn vault_entry_count(state: &Path, user: &Value, disguise_id: u64) -> usize {
    let vault = Vault::plain(FileStore::open(sidecar(state, ".vault").join("user")).unwrap());
    vault.entries_for_disguise(user, disguise_id).unwrap().len()
}

/// Builds a saved baseline with `n` users (each owning one post) and the
/// Gdpr spec registered — the cohort for the `apply_many` kill test.
fn make_cohort_baseline(state: &Path, n: usize) {
    let ws = Workspace::init(state, None).unwrap();
    ws.db
        .execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL);
             CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, FOREIGN KEY (user_id) REFERENCES users(id) ON DELETE CASCADE);",
        )
        .unwrap();
    let users: Vec<String> = (0..n).map(|i| format!("('u{i}')")).collect();
    ws.db
        .execute(&format!(
            "INSERT INTO users (name) VALUES {}",
            users.join(", ")
        ))
        .unwrap();
    let posts: Vec<String> = (1..=n).map(|id| format!("({id}, 'p{id}')")).collect();
    ws.db
        .execute(&format!(
            "INSERT INTO posts (user_id, body) VALUES {}",
            posts.join(", ")
        ))
        .unwrap();
    ws.register_spec(SPEC).unwrap();
    ws.save().unwrap();
}

#[test]
fn sigkill_mid_apply_many_recovers_with_verify() {
    // A real SIGKILL (not an injected hook) lands mid-flight in a sharded
    // `edna apply --users-file` child process; `edna recover --verify`
    // must then report a consistent state, and every user must be either
    // fully disguised (history row present, user row gone) or fully
    // untouched — the WAL intent/commit protocol resolves the rest.
    use std::process::{Command, Stdio};

    const USERS: usize = 300;
    let dir = TempDir::new("apply_many_kill");
    let baseline = dir.path("cohort.edna");
    make_cohort_baseline(&baseline, USERS);
    let ids_file = dir.path("ids.txt");
    let ids: Vec<String> = (1..=USERS).map(|id| id.to_string()).collect();
    std::fs::write(&ids_file, ids.join("\n")).unwrap();

    for (iteration, delay_ms) in [5u64, 25, 75].into_iter().enumerate() {
        let state = dir.path(&format!("kill_{iteration}.edna"));
        copy_state(&baseline, &state);

        let mut child = Command::new(env!("CARGO_BIN_EXE_edna"))
            .args([
                "apply",
                state.to_str().unwrap(),
                "Gdpr",
                "--users-file",
                ids_file.to_str().unwrap(),
                "--shards",
                "4",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn edna apply");
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        let _ = child.kill();
        let _ = child.wait();

        let out = Command::new(env!("CARGO_BIN_EXE_edna"))
            .args(["recover", state.to_str().unwrap(), "--verify"])
            .output()
            .expect("recover runs");
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(
            out.status.success() && stdout.contains("integrity: ok"),
            "iteration {iteration}: recover --verify failed (exit {:?}):\n{stdout}{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr),
        );

        // Shard-bounded atomicity: each shard applies one user at a time
        // as auto-commit statements (row transformations, then the
        // history record), so a SIGKILL can catch at most one user per
        // shard between its removal and its history row. Everyone else
        // is fully disguised (history row, user gone) or fully untouched.
        let ws = Workspace::open(&state, None).unwrap();
        assert_eq!(ws.db.verify_integrity(), Vec::<String>::new());
        let remaining = match ws
            .db
            .execute("SELECT COUNT(*) FROM users")
            .unwrap()
            .scalar()
            .unwrap()
        {
            Value::Int(n) => *n,
            other => panic!("count returned {other:?}"),
        };
        let applied = history_count(&ws);
        let in_flight = USERS as i64 - (remaining + applied);
        assert!(
            (0..=4).contains(&in_flight),
            "iteration {iteration}: at most one in-flight user per shard \
             ({remaining} remaining, {applied} disguised, {in_flight} in flight)"
        );
    }
}

#[test]
fn disguise_application_survives_a_crash_at_every_wal_frame() {
    let dir = TempDir::new("kill");
    let baseline = dir.path("base.edna");
    make_baseline(&baseline);

    // Count the frames a clean application writes, with a hook that
    // never fires (counting is a side effect of consultation).
    let frames = {
        let state = dir.path("count.edna");
        copy_state(&baseline, &state);
        let ws = Workspace::open(&state, None).unwrap();
        let wal = ws.db.wal().unwrap();
        wal.set_crash_hook(Some(Arc::new(|_| None)));
        ws.edna.apply("Gdpr", Some(&Value::Int(1))).unwrap();
        wal.crash_frame_count()
    };
    assert!(
        frames >= 3,
        "expected at least intent + txn + commit frames, got {frames}"
    );

    let baseline_users = {
        let ws = Workspace::open(&baseline, None).unwrap();
        (user_rows(&ws), post_rows(&ws))
    };

    for style in [
        WalCrash::BeforeWrite,
        WalCrash::TornWrite,
        WalCrash::AfterWrite,
    ] {
        for k in 0..frames {
            let state = dir.path(&format!("sweep_{style:?}_{k}.edna"));
            copy_state(&baseline, &state);
            {
                let ws = Workspace::open(&state, None).unwrap();
                let wal = ws.db.wal().unwrap();
                wal.set_crash_hook(Some(Arc::new(move |i| (i == k).then_some(style))));
                // Crashing on the trailing commit marker is absorbed
                // (the marker is advisory), so Ok is possible at the
                // last frames; everything earlier must surface the
                // injected death.
                let _ = ws.edna.apply("Gdpr", Some(&Value::Int(1)));
                // Process dies here: no save, no cleanup.
            }
            let ws = Workspace::open(&state, None).unwrap();
            let ctx = format!("style {style:?} frame {k}");

            // Structural integrity: FKs, unique indexes, auto cursors.
            assert_eq!(ws.db.verify_integrity(), Vec::<String>::new(), "{ctx}");

            // Atomicity: the disguise fully happened or fully didn't,
            // and history, vault, and journal all tell the same story.
            let applied = history_count(&ws) == 1;
            let disguise_id = 1;
            if applied {
                assert_eq!(
                    user_rows(&ws),
                    vec![vec![Value::Int(2), Value::Text("mel".into())]],
                    "{ctx}: user row must be removed"
                );
                assert_eq!(
                    post_rows(&ws),
                    vec![vec![Value::Int(2), Value::Int(2)]],
                    "{ctx}: cascade must be complete"
                );
                assert_eq!(
                    vault_entry_count(&state, &Value::Int(1), disguise_id),
                    1,
                    "{ctx}: applied disguise must keep its reveal functions"
                );
                // The reveal functions actually work after recovery.
                ws.edna.reveal(disguise_id).unwrap();
                assert_eq!(user_rows(&ws), baseline_users.0, "{ctx}: reveal restores");
            } else {
                assert_eq!(user_rows(&ws), baseline_users.0, "{ctx}: rolled back");
                assert_eq!(post_rows(&ws), baseline_users.1, "{ctx}: rolled back");
                assert_eq!(
                    vault_entry_count(&state, &Value::Int(1), disguise_id),
                    0,
                    "{ctx}: undone disguise must leave no orphan vault entry"
                );
                let journal =
                    VaultJournal::open(sidecar(&state, ".vault").join("pending.journal")).unwrap();
                assert!(journal.is_empty().unwrap(), "{ctx}: journal must be empty");
            }
        }
    }
}
