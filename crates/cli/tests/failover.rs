//! Failover chaos sweep for the replication layer: a primary with one
//! synchronous standby takes mixed traffic (inserts, idempotent
//! applies), is SIGKILLed at a random instant, and the standby is
//! drained, promoted, and re-served. The headline invariant: **no
//! acknowledged commit, vault entry, or capability token is lost** —
//! every acked apply's capability still opens its vault entry on the
//! new primary, every acked row is back after reveal, and replaying an
//! acked idempotency key returns the original capability verbatim.
//! `edna recover --verify` must be green on both sides of the split,
//! and the deposed primary must be fenced (`stale-epoch`) when the
//! promoted node is asked to follow it.
//!
//! Iterations default low to keep `cargo test` fast; ci.sh raises them
//! via `EDNA_CHAOS_ITERS`.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use edna_server::{code, Client};
use edna_util::rng::{Rng as _, SplitMix64};

fn temp_state(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("edna_failover_{tag}_{}", std::process::id()));
    cleanup(&p);
    p
}

fn cleanup(p: &Path) {
    let _ = std::fs::remove_file(p);
    for suffix in [".tmp", ".metrics", ".metrics.tmp", ".wal", ".lock"] {
        let mut os = p.as_os_str().to_os_string();
        os.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(os));
    }
    let mut os = p.as_os_str().to_os_string();
    os.push(".vault");
    let _ = std::fs::remove_dir_all(PathBuf::from(os));
}

fn edna_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_edna"))
}

/// Spawns `edna serve` with extra flags and parses the three banner
/// lines: bound address, shutdown token, and replication role.
fn spawn_serve(state: &str, extra: &[&str]) -> (Child, SocketAddr, String, String) {
    let mut args = vec!["serve", state, "--addr", "127.0.0.1:0"];
    args.extend_from_slice(extra);
    let mut child = edna_bin()
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut read = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("banner line");
        line.trim().to_string()
    };
    let addr = read()
        .strip_prefix("listening on ")
        .expect("address banner")
        .parse()
        .expect("parsable address");
    let token = read()
        .strip_prefix("shutdown token ")
        .expect("token banner")
        .to_string();
    let role = read()
        .strip_prefix("role: ")
        .expect("role banner")
        .to_string();
    (child, addr, token, role)
}

const SPEC: &str = r#"
disguise_name: "Gdpr"
user_to_disguise: $UID
tables: {
  users: { transformations: [ Remove(pred: "id = $UID") ] },
}
"#;

/// One acknowledged reversible apply: enough to re-reveal it and to
/// replay its idempotency key after failover.
struct AckedApply {
    uid: String,
    id: u64,
    cap: String,
    idem: String,
}

#[derive(Default)]
struct Acked {
    /// Names of inserted rows whose fate is fully known (acked insert,
    /// and any later apply on them either acked or cleanly refused).
    rows: Vec<String>,
    applies: Vec<AckedApply>,
}

/// One traffic thread: insert a row, disguise it under an idempotency
/// key, record what the server *acknowledged*. Anything cut off by the
/// kill mid-request is indeterminate and claims nothing.
fn traffic(addr: SocketAddr, iteration: usize, thread_id: u64, rounds: usize) -> Acked {
    let mut acked = Acked::default();
    let Ok(mut c) = Client::connect_with_timeout(addr, Duration::from_secs(5)) else {
        return acked;
    };
    for round in 0..rounds {
        let name = format!("i{iteration}t{thread_id}r{round}");
        let uid = match c.sql(&format!("INSERT INTO users (name) VALUES ('{name}')")) {
            Ok(r) if r.ok => match r.header_value("last-insert-id") {
                Some(uid) => uid.to_string(),
                None => return acked,
            },
            _ => return acked, // killed mid-insert: no claim
        };
        let idem = format!("fo-{iteration}-{thread_id}-{round}");
        match c.apply_idem("Gdpr", Some(&uid), &idem) {
            Ok(r) if r.ok => {
                let (Some(id), Some(cap)) = (
                    r.header_value("id").and_then(|v| v.parse::<u64>().ok()),
                    r.header_value("cap"),
                ) else {
                    return acked;
                };
                acked.applies.push(AckedApply {
                    uid,
                    id,
                    cap: cap.to_string(),
                    idem,
                });
                acked.rows.push(name);
            }
            // A clean refusal means the apply did not run: the row is
            // still in the table, undisguised.
            Ok(_) => acked.rows.push(name),
            // The kill cut the apply off: the insert above may or may
            // not have been disguised by a commit we never heard about,
            // so this row claims nothing at all.
            Err(_) => return acked,
        }
    }
    acked
}

fn recover_verify(state: &str, side: &str) {
    let out = edna_bin()
        .args(["recover", state, "--verify"])
        .output()
        .expect("recover runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success() && stdout.contains("integrity: ok"),
        "{side}: recover --verify failed (exit {:?}):\n{stdout}{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn failover_sweep_loses_no_acknowledged_commit() {
    let iterations: usize = std::env::var("EDNA_CHAOS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let mut rng = SplitMix64::new(0xFA11_0EE5);

    for iteration in 0..iterations {
        let primary = temp_state(&format!("p{iteration}"));
        let standby = temp_state(&format!("s{iteration}"));
        let p = primary.to_str().unwrap().to_string();
        let s = standby.to_str().unwrap().to_string();

        // Seed the primary through the binary, like an operator would.
        assert!(edna_bin().args(["init", &p]).status().unwrap().success());
        assert!(edna_bin()
            .args([
                "sql",
                &p,
                "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)",
            ])
            .status()
            .unwrap()
            .success());
        let spec_file = primary.with_extension("edna_spec");
        std::fs::write(&spec_file, SPEC).unwrap();
        assert!(edna_bin()
            .args(["register", &p, spec_file.to_str().unwrap()])
            .status()
            .unwrap()
            .success());

        // A ticking decay policy rides along: its background commits go
        // through the same group-commit gate and replication stream as
        // foreground traffic, so the kill also lands amid policy runs.
        assert!(edna_bin()
            .args([
                "sql",
                &p,
                "CREATE TABLE notes (id INT PRIMARY KEY AUTO_INCREMENT, body TEXT, \
                 created_at INT NOT NULL DEFAULT 0)",
            ])
            .status()
            .unwrap()
            .success());
        let values: Vec<String> = (0..50).map(|i| format!("('note-{i}', 0)")).collect();
        assert!(edna_bin()
            .args([
                "sql",
                &p,
                &format!(
                    "INSERT INTO notes (body, created_at) VALUES {}",
                    values.join(", ")
                ),
            ])
            .status()
            .unwrap()
            .success());
        let decay_spec = primary.with_extension("decay_spec");
        std::fs::write(
            &decay_spec,
            r#"
disguise_name: "AgeNotes"
reversible: false
tables: {
  notes: { transformations: [ Modify(pred: "created_at < 100", column: body, modifier: Truncate(1)) ] },
}
"#,
        )
        .unwrap();
        let policy_spec = primary.with_extension("decay_policy");
        std::fs::write(
            &policy_spec,
            "policy_name: \"aging\"\nkind: decay\ncadence: 1\nstages: [ \"AgeNotes\" ]\n",
        )
        .unwrap();
        for f in [&decay_spec, &policy_spec] {
            assert!(edna_bin()
                .args(["register", &p, f.to_str().unwrap()])
                .status()
                .unwrap()
                .success());
        }

        // Primary in sync mode: a commit is acknowledged only once the
        // standby durably applied it. The generous gate keeps a healthy
        // loopback follower from ever being demoted mid-sweep.
        let (mut primary_child, primary_addr, _ptoken, prole) = spawn_serve(
            &p,
            &[
                "--sync-replicas",
                "1",
                "--repl-gate-ms",
                "10000",
                "--policy-tick-ms",
                "100",
            ],
        );
        assert_eq!(prole, "primary (epoch 0)");
        let (mut standby_child, standby_addr, stoken, srole) =
            spawn_serve(&s, &["--replica-of", &primary_addr.to_string()]);
        assert!(
            srole.starts_with("replica of "),
            "standby role banner: {srole}"
        );

        // The standby is attached (sync quorum exists) and read-only.
        let mut pc = Client::connect(primary_addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let r = pc.repl_status().unwrap();
            if r.header_value("followers") == Some("1") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "standby never attached:\n{}",
                r.body
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        let mut sc = Client::connect(standby_addr).unwrap();
        let denied = sc.sql("INSERT INTO users (name) VALUES ('nope')").unwrap();
        assert_eq!(denied.code.as_deref(), Some(code::READ_ONLY));
        let r = sc.repl_status().unwrap();
        assert_eq!(r.header_value("role"), Some("replica"));
        assert_eq!(r.header_value("connected"), Some("true"));
        drop(sc);

        // Mixed traffic, then SIGKILL the primary at a random instant.
        let threads: Vec<_> = (0..3)
            .map(|t| std::thread::spawn(move || traffic(primary_addr, iteration, t, 200)))
            .collect();
        let delay = 300 + (rng.next_u64() % 500);
        std::thread::sleep(Duration::from_millis(delay));
        primary_child.kill().expect("SIGKILL primary");
        let _ = primary_child.wait();
        let mut acked = Acked::default();
        for t in threads {
            let part = t.join().expect("traffic thread");
            acked.rows.extend(part.rows);
            acked.applies.extend(part.applies);
        }

        // Failover: drain the standby, promote it, verify both sides.
        let mut sc = Client::connect(standby_addr).unwrap();
        assert!(sc.shutdown(&stoken).unwrap().ok);
        assert!(
            standby_child.wait().unwrap().success(),
            "standby drains cleanly"
        );
        let out = edna_bin().args(["promote", &s]).output().unwrap();
        assert!(out.status.success(), "promote failed");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("to epoch 1"),
            "promote banner: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        recover_verify(&p, "deposed primary");
        recover_verify(&s, "promoted standby");

        // The promoted standby serves as the new primary.
        let (mut new_child, new_addr, ntoken, nrole) = spawn_serve(&s, &[]);
        assert_eq!(nrole, "primary (epoch 1)", "promotion bumped the epoch");
        let mut c = Client::connect(new_addr).unwrap();

        // The ticking decay policy replicated with everything else: the
        // promoted standby knows "aging" without re-registration.
        let r = c.policy_status().unwrap();
        assert!(r.ok, "{}", r.body);
        assert!(
            r.body.contains("aging"),
            "replicated policy registry lists the decay policy: {}",
            r.body
        );

        // Exactly-once survives failover: replaying an acked idempotency
        // key returns the *original* reply — same id, same capability.
        for a in acked.applies.iter().take(3) {
            let r = c.apply_idem("Gdpr", Some(&a.uid), &a.idem).unwrap();
            assert!(r.ok, "{}", r.body);
            assert_eq!(r.header_value("idem"), Some("replayed"));
            assert_eq!(r.header_value("id"), Some(a.id.to_string().as_str()));
            assert_eq!(r.header_value("cap"), Some(a.cap.as_str()));
        }
        // Every acknowledged capability token still opens its vault
        // entry on the new primary...
        for a in &acked.applies {
            let r = c.reveal(a.id, &a.cap).unwrap();
            assert!(
                r.ok,
                "iteration {iteration}: acked disguise {} (user {}) lost: {}",
                a.id, a.uid, r.body
            );
        }
        // ...and after the reveals, every acknowledged row is present.
        for name in &acked.rows {
            let r = c
                .sql(&format!("SELECT id FROM users WHERE name = '{name}'"))
                .unwrap();
            assert!(r.ok, "{}", r.body);
            assert_eq!(
                r.header_value("rows"),
                Some("1"),
                "iteration {iteration}: acked row {name} lost"
            );
        }
        println!(
            "iteration {iteration}: {} acked rows, {} acked applies — none lost",
            acked.rows.len(),
            acked.applies.len()
        );
        assert!(c.shutdown(&ntoken).unwrap().ok);
        assert!(new_child.wait().unwrap().success());

        // Fencing: the deposed primary (epoch 0) must refuse to feed the
        // promoted node (epoch 1), and the refusal must not touch the
        // promoted state.
        let (mut deposed_child, deposed_addr, dtoken, drole) = spawn_serve(&p, &[]);
        assert_eq!(drole, "primary (epoch 0)");
        let out = edna_bin()
            .args(["serve", &s, "--replica-of", &deposed_addr.to_string()])
            .output()
            .unwrap();
        assert!(
            !out.status.success(),
            "a promoted node must not follow a deposed primary"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("stale-epoch"), "fencing error: {err}");
        let mut dc = Client::connect(deposed_addr).unwrap();
        assert!(dc.shutdown(&dtoken).unwrap().ok);
        assert!(deposed_child.wait().unwrap().success());
        // The fenced state still opens cleanly as its own primary.
        recover_verify(&s, "promoted standby after fencing");

        let _ = std::fs::remove_file(&spec_file);
        cleanup(&primary);
        cleanup(&standby);
    }
}
