//! Kill-sweep for the decay daemon: serve a workspace with a ticking
//! decay policy under concurrent mixed traffic, SIGKILL the server at a
//! random instant, then prove `edna recover --verify` passes, the state
//! re-serves cleanly, and — the bug this pins down — a restarted server
//! resumes the policy cadence from the persisted last-run stamp instead
//! of re-firing every policy immediately.
//!
//! Policy runs are WAL-bracketed and serialized through the same door
//! lock as apply/reveal, so a kill mid-run leaves either a cleanly
//! committed prefix of the run's statements (each fsynced before
//! acknowledgement) or an open run marker that `recover` reports as
//! benign: incomplete runs never advance the stamp and resume on the
//! next tick.
//!
//! Iterations default low to keep `cargo test` fast; CI raises them via
//! `EDNA_SOAK_ITERS` (ci.sh runs the full sweep).

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use edna_server::Client;
use edna_util::rng::{Rng as _, SplitMix64};

fn temp_state(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("edna_decay_{tag}_{}", std::process::id()));
    cleanup(&p);
    p
}

fn cleanup(p: &Path) {
    let _ = std::fs::remove_file(p);
    for suffix in [".tmp", ".metrics", ".metrics.tmp", ".wal", ".lock"] {
        let mut os = p.as_os_str().to_os_string();
        os.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(os));
    }
    let mut os = p.as_os_str().to_os_string();
    os.push(".vault");
    let _ = std::fs::remove_dir_all(PathBuf::from(os));
}

fn edna_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_edna"))
}

/// Spawns `edna serve` with a fast policy tick and parses the bound
/// address and operator token from the stdout banner.
fn spawn_serve(state: &str) -> (Child, SocketAddr, String) {
    let mut child = edna_bin()
        .args([
            "serve",
            state,
            "--addr",
            "127.0.0.1:0",
            "--checkpoint-secs",
            "1",
            "--conn-timeout-ms",
            "5000",
            "--policy-tick-ms",
            "50",
            "--decay-rows",
            "64",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("serve announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .parse()
        .expect("parsable address");
    let mut token_line = String::new();
    reader
        .read_line(&mut token_line)
        .expect("serve announces its shutdown token");
    let token = token_line
        .trim()
        .strip_prefix("shutdown token ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {token_line:?}"))
        .to_string();
    (child, addr, token)
}

const GDPR_SPEC: &str = r#"
disguise_name: "Gdpr"
user_to_disguise: $UID
tables: {
  users: { transformations: [ Remove(pred: "id = $UID") ] },
}
"#;

// The decay stage: irreversible, converging (a truncated body truncates
// to itself), on a table the GDPR disguise never touches so the audit
// has no interleaving to object to.
const DECAY_SPEC: &str = r#"
disguise_name: "AgeNotes"
reversible: false
tables: {
  notes: { transformations: [ Modify(pred: "created_at < 100", column: body, modifier: Truncate(1)) ] },
}
"#;

const DECAY_POLICY: &str = "policy_name: \"aging\"\n\
                            kind: decay\n\
                            cadence: 5\n\
                            stages: [ \"AgeNotes\" ]\n";

/// The policy table row for `aging`: `(last_run, runs_total)`, with
/// `last_run` as the raw column text (`never` until a run completes).
fn policy_row(c: &mut Client) -> (String, u64) {
    let r = c.policy_status().expect("policy status answers");
    assert!(r.ok, "{}", r.body);
    let row = r
        .body
        .lines()
        .find(|l| l.starts_with("aging\t"))
        .unwrap_or_else(|| panic!("no aging row in {:?}", r.body))
        .to_string();
    let last = row.rsplit('\t').next().unwrap().to_string();
    let runs = r
        .header_value("runs-total")
        .and_then(|v| v.parse().ok())
        .expect("runs-total header");
    (last, runs)
}

/// One traffic thread: mixed inserts, selects, apply/reveal pairs, and
/// fresh decayable notes, until the connection dies (the kill) or
/// `rounds` complete.
fn traffic(addr: SocketAddr, thread_id: u64, rounds: usize) {
    let Ok(mut c) = Client::connect_with_timeout(addr, Duration::from_secs(5)) else {
        return;
    };
    for i in 0..rounds {
        let r = match i % 4 {
            0 => c.sql(&format!(
                "INSERT INTO users (name) VALUES ('t{thread_id}r{i}')"
            )),
            1 => c.sql(&format!(
                "INSERT INTO notes (body, created_at) VALUES ('note t{thread_id}r{i}', 50)"
            )),
            2 => c.sql("SELECT COUNT(*) FROM notes"),
            _ => match c.apply("Gdpr", Some(&format!("{}", thread_id + 1))) {
                Ok(resp) if resp.ok => {
                    let id: u64 = match resp.header_value("id").and_then(|v| v.parse().ok()) {
                        Some(id) => id,
                        None => continue,
                    };
                    match resp.header_value("cap") {
                        Some(cap) => {
                            let cap = cap.to_string();
                            c.reveal(id, &cap)
                        }
                        None => continue,
                    }
                }
                other => other,
            },
        };
        if r.is_err() {
            return; // server killed mid-conversation — expected.
        }
    }
}

#[test]
fn sigkill_under_decay_recovers_and_does_not_refire_policies() {
    let iterations: usize = std::env::var("EDNA_SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let state = temp_state("sigkill");
    let s = state.to_str().unwrap().to_string();

    // Seed the workspace through the binary, like an operator would.
    assert!(edna_bin().args(["init", &s]).status().unwrap().success());
    for stmt in [
        "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)",
        "CREATE TABLE notes (id INT PRIMARY KEY AUTO_INCREMENT, body TEXT, \
         created_at INT NOT NULL DEFAULT 0)",
        "INSERT INTO notes (body, created_at) VALUES ('old-a', 0), ('old-b', 0)",
    ] {
        assert!(
            edna_bin()
                .args(["sql", &s, stmt])
                .status()
                .unwrap()
                .success(),
            "seed statement failed: {stmt}"
        );
    }
    for (name, text) in [
        ("gdpr", GDPR_SPEC),
        ("decay", DECAY_SPEC),
        ("policy", DECAY_POLICY),
    ] {
        let f = state.with_extension(format!("{name}_edna"));
        std::fs::write(&f, text).unwrap();
        assert!(
            edna_bin()
                .args(["register", &s, f.to_str().unwrap()])
                .status()
                .unwrap()
                .success(),
            "register {name} failed"
        );
        let _ = std::fs::remove_file(&f);
    }

    // Phase 1: kill sweep. The decay daemon ticks every 50 ms while
    // mixed traffic flows; a SIGKILL lands at a random instant — before,
    // during, or after a policy run.
    let mut rng = SplitMix64::new(0xDECA_FADE);
    for iteration in 0..iterations {
        let (mut child, addr, _token) = spawn_serve(&s);
        let threads: Vec<_> = (0..4)
            .map(|t| std::thread::spawn(move || traffic(addr, t, 200)))
            .collect();
        let delay = 50 + (rng.next_u64() % 400);
        std::thread::sleep(Duration::from_millis(delay));
        child.kill().expect("SIGKILL");
        let _ = child.wait();
        for t in threads {
            let _ = t.join();
        }

        let out = edna_bin()
            .args(["recover", &s, "--verify"])
            .output()
            .expect("recover runs");
        assert!(
            out.status.success(),
            "iteration {iteration}: recover --verify failed (exit {:?}):\n{}{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("integrity: ok"),
            "iteration {iteration}: {stdout}"
        );
    }

    // Phase 2: a clean serve. Wait until the daemon fires a run in THIS
    // process (a kill-phase server may already have completed one and
    // persisted its stamp, in which case the next firing waits out the
    // cadence — the logical clock resumes, it does not leap), then check
    // the decay is visible in the data, the policy metrics are in the
    // Prometheus exposition, and drain cleanly so the stamp is
    // checkpointed.
    let (mut child, addr, token) = spawn_serve(&s);
    let mut c = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let last_run = loop {
        let (last, runs) = policy_row(&mut c);
        if runs >= 1 && last != "never" {
            break last;
        }
        assert!(Instant::now() < deadline, "policy never completed a run");
        std::thread::sleep(Duration::from_millis(100));
    };
    let r = c
        .sql("SELECT COUNT(*) FROM notes WHERE body = 'o'")
        .unwrap();
    assert!(r.ok, "{}", r.body);
    let decayed: u64 = r.body.lines().nth(1).and_then(|l| l.parse().ok()).unwrap();
    assert!(decayed >= 2, "seeded notes were not decayed: {}", r.body);
    let stats = c.stats().unwrap();
    assert!(
        stats.body.contains("edna_policy_runs_total"),
        "{}",
        stats.body
    );
    assert!(
        stats.body.contains("edna_decay_rows_total"),
        "{}",
        stats.body
    );
    assert!(
        stats.body.contains("edna_policy_tick_us_aging"),
        "{}",
        stats.body
    );
    assert!(c.shutdown(&token).unwrap().ok);
    assert!(child.wait().unwrap().success(), "clean drain exits 0");

    // Phase 3: restart. The scheduler must reload the persisted stamp:
    // the status row shows the previous run's time, not `never`, and no
    // run fires immediately (the cadence window has not elapsed — the
    // logical clock resumes where the last tick left it, it does not
    // rewind or leap).
    let (mut child, addr, token) = spawn_serve(&s);
    let mut c = Client::connect(addr).unwrap();
    let (last, runs) = policy_row(&mut c);
    assert_ne!(last, "never", "last-run stamp lost across restart");
    assert!(
        last.parse::<i64>().unwrap() >= last_run.parse::<i64>().unwrap(),
        "stamp rewound: {last} < {last_run}"
    );
    assert_eq!(runs, 0, "policy re-fired immediately on restart");
    assert!(c.shutdown(&token).unwrap().ok);
    assert!(child.wait().unwrap().success());

    cleanup(&state);
}
