-- Lobsters-like schema: 19 object types, modeled on the open-source
-- application's Rails schema (simplified column sets, same relationships).

CREATE TABLE users (
    id INT PRIMARY KEY AUTO_INCREMENT,
    username TEXT NOT NULL UNIQUE PII,
    email TEXT PII,
    password_digest TEXT PII,
    about TEXT PII,
    karma INT NOT NULL DEFAULT 0,
    is_admin BOOL NOT NULL DEFAULT FALSE,
    is_moderator BOOL NOT NULL DEFAULT FALSE,
    banned_at INT,
    deleted_at INT,
    disabled_invite_at INT,
    last_login INT NOT NULL DEFAULT 0,
    invited_by_user_id INT,
    FOREIGN KEY (invited_by_user_id) REFERENCES users(id)
);

CREATE TABLE tags (
    id INT PRIMARY KEY AUTO_INCREMENT,
    tag TEXT NOT NULL UNIQUE,
    description TEXT,
    privileged BOOL NOT NULL DEFAULT FALSE
);

CREATE TABLE stories (
    id INT PRIMARY KEY AUTO_INCREMENT,
    user_id INT NOT NULL,
    title TEXT NOT NULL,
    url TEXT,
    description TEXT,
    score INT NOT NULL DEFAULT 1,
    is_expired BOOL NOT NULL DEFAULT FALSE,
    created_at INT NOT NULL DEFAULT 0,
    FOREIGN KEY (user_id) REFERENCES users(id)
);

CREATE TABLE comments (
    id INT PRIMARY KEY AUTO_INCREMENT,
    user_id INT NOT NULL,
    story_id INT NOT NULL,
    parent_comment_id INT,
    comment TEXT NOT NULL,
    score INT NOT NULL DEFAULT 1,
    is_deleted BOOL NOT NULL DEFAULT FALSE,
    created_at INT NOT NULL DEFAULT 0,
    FOREIGN KEY (user_id) REFERENCES users(id),
    FOREIGN KEY (story_id) REFERENCES stories(id) ON DELETE CASCADE,
    FOREIGN KEY (parent_comment_id) REFERENCES comments(id) ON DELETE SET NULL
);

CREATE TABLE votes (
    id INT PRIMARY KEY AUTO_INCREMENT,
    user_id INT NOT NULL,
    story_id INT,
    comment_id INT,
    vote INT NOT NULL DEFAULT 1,
    reason TEXT,
    FOREIGN KEY (user_id) REFERENCES users(id),
    FOREIGN KEY (story_id) REFERENCES stories(id) ON DELETE CASCADE,
    FOREIGN KEY (comment_id) REFERENCES comments(id) ON DELETE CASCADE
);

CREATE TABLE taggings (
    id INT PRIMARY KEY AUTO_INCREMENT,
    story_id INT NOT NULL,
    tag_id INT NOT NULL,
    FOREIGN KEY (story_id) REFERENCES stories(id) ON DELETE CASCADE,
    FOREIGN KEY (tag_id) REFERENCES tags(id)
);

CREATE TABLE messages (
    id INT PRIMARY KEY AUTO_INCREMENT,
    author_user_id INT NOT NULL,
    recipient_user_id INT NOT NULL,
    subject TEXT,
    body TEXT,
    has_been_read BOOL NOT NULL DEFAULT FALSE,
    deleted_by_author BOOL NOT NULL DEFAULT FALSE,
    deleted_by_recipient BOOL NOT NULL DEFAULT FALSE,
    FOREIGN KEY (author_user_id) REFERENCES users(id),
    FOREIGN KEY (recipient_user_id) REFERENCES users(id)
);

CREATE TABLE hats (
    id INT PRIMARY KEY AUTO_INCREMENT,
    user_id INT NOT NULL,
    granted_by_user_id INT,
    hat TEXT NOT NULL,
    link TEXT,
    doffed_at INT,
    FOREIGN KEY (user_id) REFERENCES users(id),
    FOREIGN KEY (granted_by_user_id) REFERENCES users(id)
);

CREATE TABLE hat_requests (
    id INT PRIMARY KEY AUTO_INCREMENT,
    user_id INT NOT NULL,
    hat TEXT NOT NULL,
    link TEXT,
    comment TEXT,
    FOREIGN KEY (user_id) REFERENCES users(id)
);

CREATE TABLE invitations (
    id INT PRIMARY KEY AUTO_INCREMENT,
    user_id INT NOT NULL,
    email TEXT PII,
    code TEXT,
    memo TEXT,
    used_at INT,
    FOREIGN KEY (user_id) REFERENCES users(id)
);

CREATE TABLE invitation_requests (
    id INT PRIMARY KEY AUTO_INCREMENT,
    name TEXT NOT NULL PII,
    email TEXT NOT NULL PII,
    memo TEXT,
    code TEXT,
    is_verified BOOL NOT NULL DEFAULT FALSE
);

CREATE TABLE hidden_stories (
    id INT PRIMARY KEY AUTO_INCREMENT,
    user_id INT NOT NULL,
    story_id INT NOT NULL,
    FOREIGN KEY (user_id) REFERENCES users(id),
    FOREIGN KEY (story_id) REFERENCES stories(id) ON DELETE CASCADE
);

CREATE TABLE saved_stories (
    id INT PRIMARY KEY AUTO_INCREMENT,
    user_id INT NOT NULL,
    story_id INT NOT NULL,
    FOREIGN KEY (user_id) REFERENCES users(id),
    FOREIGN KEY (story_id) REFERENCES stories(id) ON DELETE CASCADE
);

CREATE TABLE read_ribbons (
    id INT PRIMARY KEY AUTO_INCREMENT,
    user_id INT NOT NULL,
    story_id INT NOT NULL,
    updated_at INT NOT NULL DEFAULT 0,
    FOREIGN KEY (user_id) REFERENCES users(id),
    FOREIGN KEY (story_id) REFERENCES stories(id) ON DELETE CASCADE
);

CREATE TABLE moderations (
    id INT PRIMARY KEY AUTO_INCREMENT,
    moderator_user_id INT,
    story_id INT,
    comment_id INT,
    user_id INT,
    action TEXT,
    reason TEXT,
    created_at INT NOT NULL DEFAULT 0,
    FOREIGN KEY (moderator_user_id) REFERENCES users(id),
    FOREIGN KEY (story_id) REFERENCES stories(id) ON DELETE CASCADE,
    FOREIGN KEY (comment_id) REFERENCES comments(id) ON DELETE CASCADE,
    FOREIGN KEY (user_id) REFERENCES users(id)
);

CREATE TABLE mod_notes (
    id INT PRIMARY KEY AUTO_INCREMENT,
    moderator_user_id INT NOT NULL,
    user_id INT NOT NULL,
    note TEXT,
    created_at INT NOT NULL DEFAULT 0,
    FOREIGN KEY (moderator_user_id) REFERENCES users(id),
    FOREIGN KEY (user_id) REFERENCES users(id)
);

CREATE TABLE suggested_titles (
    id INT PRIMARY KEY AUTO_INCREMENT,
    story_id INT NOT NULL,
    user_id INT NOT NULL,
    title TEXT NOT NULL,
    FOREIGN KEY (story_id) REFERENCES stories(id) ON DELETE CASCADE,
    FOREIGN KEY (user_id) REFERENCES users(id)
);

CREATE TABLE suggested_taggings (
    id INT PRIMARY KEY AUTO_INCREMENT,
    story_id INT NOT NULL,
    tag_id INT NOT NULL,
    user_id INT NOT NULL,
    FOREIGN KEY (story_id) REFERENCES stories(id) ON DELETE CASCADE,
    FOREIGN KEY (tag_id) REFERENCES tags(id),
    FOREIGN KEY (user_id) REFERENCES users(id)
);

CREATE TABLE keystores (
    id INT PRIMARY KEY AUTO_INCREMENT,
    keyname TEXT NOT NULL UNIQUE,
    keyvalue INT NOT NULL DEFAULT 0
);

CREATE INDEX stories_by_user ON stories (user_id);
CREATE INDEX comments_by_user ON comments (user_id);
CREATE INDEX comments_by_story ON comments (story_id);
CREATE INDEX votes_by_user ON votes (user_id);
CREATE INDEX votes_by_story ON votes (story_id);
CREATE INDEX votes_by_comment ON votes (comment_id);
CREATE INDEX messages_by_author ON messages (author_user_id);
CREATE INDEX messages_by_recipient ON messages (recipient_user_id);
CREATE INDEX hidden_by_user ON hidden_stories (user_id);
CREATE INDEX saved_by_user ON saved_stories (user_id);
CREATE INDEX ribbons_by_user ON read_ribbons (user_id);
CREATE INDEX taggings_by_story ON taggings (story_id);
