-- HotCRP-like schema: 25 object types, modeled on the real application's
-- MySQL schema (simplified column sets, same relationships).

CREATE TABLE ContactInfo (
    contactId INT PRIMARY KEY AUTO_INCREMENT,
    firstName TEXT NOT NULL PII,
    lastName TEXT NOT NULL PII,
    email TEXT UNIQUE PII,
    affiliation TEXT PII,
    password TEXT,
    collaborators TEXT PII,
    roles INT NOT NULL DEFAULT 0,
    disabled BOOL NOT NULL DEFAULT FALSE,
    lastLogin INT NOT NULL DEFAULT 0,
    defaultWatch INT NOT NULL DEFAULT 2
);

CREATE TABLE TopicArea (
    topicId INT PRIMARY KEY AUTO_INCREMENT,
    topicName TEXT NOT NULL
);

CREATE TABLE Paper (
    paperId INT PRIMARY KEY AUTO_INCREMENT,
    title TEXT NOT NULL,
    abstract TEXT,
    authorInformation TEXT,
    outcome INT NOT NULL DEFAULT 0,
    leadContactId INT,
    shepherdContactId INT,
    managerContactId INT,
    timeSubmitted INT NOT NULL DEFAULT 0,
    timeWithdrawn INT NOT NULL DEFAULT 0,
    FOREIGN KEY (leadContactId) REFERENCES ContactInfo(contactId),
    FOREIGN KEY (shepherdContactId) REFERENCES ContactInfo(contactId),
    FOREIGN KEY (managerContactId) REFERENCES ContactInfo(contactId)
);

CREATE TABLE PaperConflict (
    paperConflictId INT PRIMARY KEY AUTO_INCREMENT,
    paperId INT NOT NULL,
    contactId INT NOT NULL,
    conflictType INT NOT NULL DEFAULT 0,
    FOREIGN KEY (paperId) REFERENCES Paper(paperId),
    FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId)
);

CREATE TABLE Review (
    reviewId INT PRIMARY KEY AUTO_INCREMENT,
    paperId INT NOT NULL,
    contactId INT NOT NULL,
    requestedBy INT,
    reviewType INT NOT NULL DEFAULT 1,
    reviewRound INT NOT NULL DEFAULT 0,
    overAllMerit INT NOT NULL DEFAULT 0,
    reviewerQualification INT NOT NULL DEFAULT 0,
    paperSummary TEXT,
    commentsToAuthor TEXT,
    commentsToPC TEXT,
    reviewSubmitted INT NOT NULL DEFAULT 0,
    FOREIGN KEY (paperId) REFERENCES Paper(paperId),
    FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId),
    FOREIGN KEY (requestedBy) REFERENCES ContactInfo(contactId)
);

CREATE TABLE ReviewPreference (
    prefId INT PRIMARY KEY AUTO_INCREMENT,
    paperId INT NOT NULL,
    contactId INT NOT NULL,
    preference INT NOT NULL DEFAULT 0,
    expertise INT,
    FOREIGN KEY (paperId) REFERENCES Paper(paperId),
    FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId)
);

CREATE TABLE ReviewRating (
    ratingId INT PRIMARY KEY AUTO_INCREMENT,
    reviewId INT NOT NULL,
    contactId INT NOT NULL,
    rating INT NOT NULL DEFAULT 0,
    FOREIGN KEY (reviewId) REFERENCES Review(reviewId) ON DELETE CASCADE,
    FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId)
);

CREATE TABLE ReviewRequest (
    requestId INT PRIMARY KEY AUTO_INCREMENT,
    paperId INT NOT NULL,
    email TEXT PII,
    reason TEXT,
    requestedBy INT,
    FOREIGN KEY (paperId) REFERENCES Paper(paperId),
    FOREIGN KEY (requestedBy) REFERENCES ContactInfo(contactId)
);

CREATE TABLE PaperReviewRefused (
    refusalId INT PRIMARY KEY AUTO_INCREMENT,
    paperId INT NOT NULL,
    contactId INT NOT NULL,
    refusedBy INT,
    reason TEXT,
    FOREIGN KEY (paperId) REFERENCES Paper(paperId),
    FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId),
    FOREIGN KEY (refusedBy) REFERENCES ContactInfo(contactId)
);

CREATE TABLE PaperComment (
    commentId INT PRIMARY KEY AUTO_INCREMENT,
    paperId INT NOT NULL,
    contactId INT NOT NULL,
    comment TEXT,
    commentType INT NOT NULL DEFAULT 0,
    timeModified INT NOT NULL DEFAULT 0,
    FOREIGN KEY (paperId) REFERENCES Paper(paperId),
    FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId)
);

CREATE TABLE PaperTopic (
    paperTopicId INT PRIMARY KEY AUTO_INCREMENT,
    paperId INT NOT NULL,
    topicId INT NOT NULL,
    FOREIGN KEY (paperId) REFERENCES Paper(paperId),
    FOREIGN KEY (topicId) REFERENCES TopicArea(topicId)
);

CREATE TABLE TopicInterest (
    interestId INT PRIMARY KEY AUTO_INCREMENT,
    contactId INT NOT NULL,
    topicId INT NOT NULL,
    interest INT NOT NULL DEFAULT 0,
    FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId),
    FOREIGN KEY (topicId) REFERENCES TopicArea(topicId)
);

CREATE TABLE PaperTag (
    tagId INT PRIMARY KEY AUTO_INCREMENT,
    paperId INT NOT NULL,
    tag TEXT NOT NULL,
    tagIndex INT NOT NULL DEFAULT 0,
    FOREIGN KEY (paperId) REFERENCES Paper(paperId)
);

CREATE TABLE PaperWatch (
    watchId INT PRIMARY KEY AUTO_INCREMENT,
    paperId INT NOT NULL,
    contactId INT NOT NULL,
    watch INT NOT NULL DEFAULT 0,
    FOREIGN KEY (paperId) REFERENCES Paper(paperId),
    FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId)
);

CREATE TABLE PaperStorage (
    paperStorageId INT PRIMARY KEY AUTO_INCREMENT,
    paperId INT NOT NULL,
    mimetype TEXT NOT NULL DEFAULT 'application/pdf',
    size INT NOT NULL DEFAULT 0,
    timestamp INT NOT NULL DEFAULT 0,
    FOREIGN KEY (paperId) REFERENCES Paper(paperId)
);

CREATE TABLE DocumentLink (
    linkId INT PRIMARY KEY AUTO_INCREMENT,
    paperId INT NOT NULL,
    documentId INT NOT NULL,
    linkType INT NOT NULL DEFAULT 0,
    FOREIGN KEY (paperId) REFERENCES Paper(paperId),
    FOREIGN KEY (documentId) REFERENCES PaperStorage(paperStorageId)
);

CREATE TABLE PaperOption (
    optionRowId INT PRIMARY KEY AUTO_INCREMENT,
    paperId INT NOT NULL,
    optionId INT NOT NULL,
    value INT NOT NULL DEFAULT 0,
    data TEXT,
    FOREIGN KEY (paperId) REFERENCES Paper(paperId)
);

CREATE TABLE ActionLog (
    logId INT PRIMARY KEY AUTO_INCREMENT,
    contactId INT,
    destContactId INT,
    paperId INT,
    action TEXT NOT NULL,
    ipaddr TEXT PII,
    timestamp INT NOT NULL DEFAULT 0,
    FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId),
    FOREIGN KEY (destContactId) REFERENCES ContactInfo(contactId),
    FOREIGN KEY (paperId) REFERENCES Paper(paperId)
);

CREATE TABLE Capability (
    capabilityId INT PRIMARY KEY AUTO_INCREMENT,
    capabilityType INT NOT NULL DEFAULT 0,
    contactId INT NOT NULL,
    paperId INT,
    salt TEXT NOT NULL,
    timeExpires INT NOT NULL DEFAULT 0,
    FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId),
    FOREIGN KEY (paperId) REFERENCES Paper(paperId)
);

CREATE TABLE ContactSession (
    sessionId INT PRIMARY KEY AUTO_INCREMENT,
    contactId INT NOT NULL,
    sessionData TEXT,
    timeUpdated INT NOT NULL DEFAULT 0,
    FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId)
);

CREATE TABLE Formula (
    formulaId INT PRIMARY KEY AUTO_INCREMENT,
    name TEXT NOT NULL,
    expression TEXT NOT NULL,
    createdBy INT,
    FOREIGN KEY (createdBy) REFERENCES ContactInfo(contactId)
);

CREATE TABLE MailLog (
    mailId INT PRIMARY KEY AUTO_INCREMENT,
    recipients TEXT,
    paperIds TEXT,
    subject TEXT,
    emailBody TEXT,
    timestamp INT NOT NULL DEFAULT 0
);

CREATE TABLE Settings (
    settingId INT PRIMARY KEY AUTO_INCREMENT,
    name TEXT NOT NULL UNIQUE,
    value INT NOT NULL DEFAULT 0,
    data TEXT
);

CREATE TABLE PaperReviewArchive (
    archiveId INT PRIMARY KEY AUTO_INCREMENT,
    reviewId INT NOT NULL,
    contactId INT NOT NULL,
    overAllMerit INT NOT NULL DEFAULT 0,
    paperSummary TEXT,
    FOREIGN KEY (reviewId) REFERENCES Review(reviewId) ON DELETE CASCADE,
    FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId)
);

CREATE TABLE DeletedContactInfo (
    deletedContactId INT PRIMARY KEY AUTO_INCREMENT,
    contactId INT NOT NULL,
    firstName TEXT PII,
    lastName TEXT PII,
    email TEXT PII,
    deletedAt INT NOT NULL DEFAULT 0
);

CREATE INDEX review_by_contact ON Review (contactId);
CREATE INDEX review_by_paper ON Review (paperId);
CREATE INDEX conflict_by_contact ON PaperConflict (contactId);
CREATE INDEX conflict_by_paper ON PaperConflict (paperId);
CREATE INDEX pref_by_contact ON ReviewPreference (contactId);
CREATE INDEX comment_by_contact ON PaperComment (contactId);
CREATE INDEX comment_by_paper ON PaperComment (paperId);
CREATE INDEX rating_by_contact ON ReviewRating (contactId);
CREATE INDEX rating_by_review ON ReviewRating (reviewId);
CREATE INDEX interest_by_contact ON TopicInterest (contactId);
CREATE INDEX watch_by_contact ON PaperWatch (contactId);
CREATE INDEX capability_by_contact ON Capability (contactId);
CREATE INDEX session_by_contact ON ContactSession (contactId);
CREATE INDEX log_by_contact ON ActionLog (contactId);
CREATE INDEX refused_by_contact ON PaperReviewRefused (contactId);
CREATE INDEX archive_by_contact ON PaperReviewArchive (contactId);
