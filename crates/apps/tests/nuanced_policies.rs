//! Nuanced policy scenarios from the paper's §2 and §4.2 beyond the core
//! case studies: global anonymization reversal, shared-message semantics,
//! approval-gated third-party vaults, and application utility under
//! anonymization.

use std::time::Duration;

use edna_apps::hotcrp::{self, generate::HotCrpConfig, workload};
use edna_apps::lobsters::{self, generate::LobstersConfig};
use edna_core::Disguiser;
use edna_relational::Value;
use edna_vault::{MemoryStore, ThirdPartyStore, TieredVault, Vault};

#[test]
fn confanon_is_fully_reversible_from_the_global_vault() {
    // §4.2 notes complete reversal of ConfAnon is infeasible when reveal
    // functions sit in per-user vaults — but our ConfAnon routes to the
    // global tier (tier 1 of the multi-tier design), where it IS feasible.
    let db = hotcrp::create_db().unwrap();
    hotcrp::generate::generate(&db, &HotCrpConfig::small()).unwrap();
    let edna = Disguiser::new(db.clone());
    hotcrp::register_disguises(&edna).unwrap();

    let before = db.dump();
    let report = edna.apply("HotCRP-ConfAnon", None).unwrap();
    assert!(report.rows_decorrelated > 0);
    assert_ne!(db.dump(), before);

    let reveal = edna.reveal(report.disguise_id).unwrap();
    assert!(reveal.rows_restored > 0);
    assert!(reveal.placeholders_removed > 0);
    let mut after = db.dump();
    let mut expected = before;
    after.remove(edna_core::HISTORY_TABLE);
    expected.remove(edna_core::HISTORY_TABLE);
    assert_eq!(after, expected, "global reveal restores the exact state");
}

#[test]
fn application_utility_survives_confanon() {
    // The anonymized conference still works: papers list, reviews render
    // with (placeholder) reviewer names, nobody's identity appears.
    let db = hotcrp::create_db().unwrap();
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::small()).unwrap();
    let edna = Disguiser::new(db.clone());
    hotcrp::register_disguises(&edna).unwrap();
    edna.apply("HotCRP-ConfAnon", None).unwrap();

    let papers = workload::paper_list(&db).unwrap();
    assert_eq!(papers.rows.len(), HotCrpConfig::small().papers);
    let reviews = workload::reviews_for_paper(&db, inst.paper_ids[0]).unwrap();
    for row in &reviews.rows {
        assert!(!row[1].is_null(), "reviews still render a reviewer name");
    }
    // No real PC member can be linked to a review anymore.
    for &pc in &inst.pc_contact_ids {
        assert_eq!(workload::review_count_for_user(&db, pc).unwrap(), 0);
    }
    // But the PC can still log in (accounts survive ConfAnon).
    assert!(workload::can_log_in(&db, inst.pc_contact_ids[0]).unwrap());
}

#[test]
fn lobsters_messages_stay_visible_to_recipients() {
    // §2: some applications "keep private messages unanonymized and
    // visible to their recipients, reflecting the shared nature of such
    // messages". Our Lobsters-GDPR keeps the rows, marks the departed
    // side deleted, and decorrelates only the departed party.
    let db = lobsters::create_db().unwrap();
    let inst = lobsters::generate::generate(&db, &LobstersConfig::small()).unwrap();
    let edna = Disguiser::new(db.clone());
    lobsters::register_disguises(&edna).unwrap();

    // Find a user who authored at least one message.
    let authored = db
        .execute("SELECT author_user_id FROM messages ORDER BY id LIMIT 1")
        .unwrap();
    let user = authored.rows[0][0].as_int().unwrap();
    let messages_before = db.row_count("messages").unwrap();
    let bodies_before = db
        .execute(&format!(
            "SELECT id, body FROM messages WHERE author_user_id = {user} ORDER BY id"
        ))
        .unwrap();
    assert!(!bodies_before.rows.is_empty());

    edna.apply("Lobsters-GDPR", Some(&Value::Int(user)))
        .unwrap();

    // All messages survive with bodies intact (recipients can still read
    // them), but the departed author no longer appears as sender.
    assert_eq!(db.row_count("messages").unwrap(), messages_before);
    for row in &bodies_before.rows {
        let id = row[0].as_int().unwrap();
        let r = db
            .execute(&format!(
                "SELECT body, author_user_id, deleted_by_author FROM messages WHERE id = {id}"
            ))
            .unwrap();
        assert_eq!(r.rows[0][0], row[1], "body unchanged for the recipient");
        assert_ne!(r.rows[0][1], Value::Int(user), "author decorrelated");
        assert_eq!(
            r.rows[0][2],
            Value::Bool(true),
            "author's side marked deleted"
        );
    }
    assert!(inst.user_ids.contains(&user));
}

#[test]
fn third_party_vault_requires_user_approval_for_reveal() {
    // §4.2: "access might require explicit approval by the user". With the
    // per-user tier on an approval-gated third-party store, applying a
    // reversible disguise fails until the user approves vault writes, and
    // reveal fails when approval is revoked.
    let db = hotcrp::create_db().unwrap();
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::small()).unwrap();

    let store = ThirdPartyStore::new(MemoryStore::new(), Duration::ZERO);
    store.require_approval();
    store.set_approved(true);
    let vaults = TieredVault::new(Vault::plain(MemoryStore::new()), Vault::plain(store));
    let edna = Disguiser::with_vaults(db.clone(), vaults);
    hotcrp::register_disguises(&edna).unwrap();

    let user = inst.pc_contact_ids[0];
    let report = edna.apply("HotCRP-GDPR+", Some(&Value::Int(user))).unwrap();

    // The user revokes access: the disguise is effectively frozen.
    // (Reach the store back through a fresh handle: recreate gating by
    // revoking on a second disguiser is not possible, so test revocation
    // by applying first and revoking before reveal via a shared store.)
    // Here we rebuild the scenario with a handle we keep.
    let db2 = hotcrp::create_db().unwrap();
    let inst2 = hotcrp::generate::generate(&db2, &HotCrpConfig::small()).unwrap();
    let store2 = std::sync::Arc::new(ThirdPartyStore::new(MemoryStore::new(), Duration::ZERO));
    store2.require_approval();
    store2.set_approved(true);

    // Arc wrapper store that delegates (VaultStore for Arc<T> is not
    // provided; use a thin newtype).
    struct Shared(std::sync::Arc<ThirdPartyStore<MemoryStore>>);
    impl edna_vault::VaultStore for Shared {
        fn put(&self, user: &str, entry: edna_vault::StoredEntry) -> edna_vault::Result<()> {
            self.0.put(user, entry)
        }
        fn list(&self, user: &str) -> edna_vault::Result<Vec<edna_vault::StoredEntry>> {
            self.0.list(user)
        }
        fn users(&self) -> edna_vault::Result<Vec<String>> {
            self.0.users()
        }
        fn remove(&self, user: &str, disguise_id: u64) -> edna_vault::Result<usize> {
            self.0.remove(user, disguise_id)
        }
        fn purge_expired(&self, now: i64) -> edna_vault::Result<usize> {
            self.0.purge_expired(now)
        }
        fn entry_count(&self) -> edna_vault::Result<usize> {
            self.0.entry_count()
        }
    }
    let vaults2 = TieredVault::new(
        Vault::plain(MemoryStore::new()),
        Vault::plain(Shared(store2.clone())),
    );
    let edna2 = Disguiser::with_vaults(db2, vaults2);
    hotcrp::register_disguises(&edna2).unwrap();
    let user2 = inst2.pc_contact_ids[0];
    let report2 = edna2
        .apply("HotCRP-GDPR+", Some(&Value::Int(user2)))
        .unwrap();

    store2.set_approved(false);
    assert!(
        edna2.reveal(report2.disguise_id).is_err(),
        "reveal must fail without user approval"
    );
    store2.set_approved(true);
    edna2.reveal(report2.disguise_id).unwrap();

    // First scenario's reveal still works (approval was never revoked).
    edna.reveal(report.disguise_id).unwrap();
}

#[test]
fn orphaned_submissions_policy_via_subquery_predicate() {
    // §3: "a different policy might go even further and automatically
    // delete a submission whose last author is scrubbed." Expressible as
    // a disguise whose predicate uses an IN (SELECT ...) subquery: papers
    // with no remaining author conflicts are removed.
    let db = hotcrp::create_db().unwrap();
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::small()).unwrap();
    let edna = Disguiser::new(db.clone());
    hotcrp::register_disguises(&edna).unwrap();
    edna.register_dsl(
        r#"
disguise_name: "DropOrphanedPapers"
reversible: true
vault_tier: global
tables: {
  PaperTopic: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  PaperTag: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  DocumentLink: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  PaperStorage: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  PaperOption: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  PaperWatch: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  ReviewPreference: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  ReviewRequest: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  PaperReviewRefused: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  PaperComment: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  Review: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  ActionLog: {
    transformations: [
      Remove(pred: "paperId IS NOT NULL AND paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  # Non-author conflicts and access links of an orphaned paper go with it.
  PaperConflict: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  Capability: {
    transformations: [
      Remove(pred: "paperId IS NOT NULL AND paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
  Paper: {
    transformations: [
      Remove(pred: "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
    ],
  },
}
assertions: [
  ("no orphaned papers remain", Paper, "paperId NOT IN (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"),
]
"#,
    )
    .unwrap();

    // Scrub the sole author of a single-author paper (HotCRP-GDPR+
    // removes their PaperConflict rows), orphaning that paper for sure.
    let single = db
        .execute(
            "SELECT paperId, MIN(contactId) AS author, COUNT(*) AS n FROM PaperConflict \
             WHERE conflictType = 2 GROUP BY paperId HAVING n = 1 \
             ORDER BY paperId LIMIT 1",
        )
        .unwrap();
    assert!(
        !single.rows.is_empty(),
        "generator should produce a single-author paper"
    );
    let author = single.rows[0][1].as_int().unwrap();
    assert!(inst.author_contact_ids.contains(&author) || inst.pc_contact_ids.contains(&author));
    edna.apply("HotCRP-GDPR+", Some(&Value::Int(author)))
        .unwrap();
    let orphaned_before = db
        .execute(
            "SELECT COUNT(*) FROM Paper WHERE paperId NOT IN \
             (SELECT paperId FROM PaperConflict WHERE conflictType = 2)",
        )
        .unwrap()
        .scalar()
        .unwrap()
        .as_int()
        .unwrap();

    let report = edna.apply("DropOrphanedPapers", None).unwrap();
    assert!(report.rows_removed as i64 >= orphaned_before);
    // The assertion in the spec already proved the end state; double-check.
    assert_eq!(
        db.execute(
            "SELECT COUNT(*) FROM Paper WHERE paperId NOT IN \
             (SELECT paperId FROM PaperConflict WHERE conflictType = 2)"
        )
        .unwrap()
        .scalar()
        .unwrap(),
        &Value::Int(0)
    );
    // And it reverses: the orphaned papers (and their dependents) return.
    let papers_now = db.row_count("Paper").unwrap();
    edna.reveal(report.disguise_id).unwrap();
    assert_eq!(
        db.row_count("Paper").unwrap() as i64,
        papers_now as i64 + orphaned_before
    );
}
