//! End-to-end case studies (paper §6): the four disguises against
//! generated HotCRP and Lobsters instances, including the composition
//! experiment's sequence (GDPR+ after ConfAnon) and reversals.

use edna_apps::hotcrp::{self, generate::HotCrpConfig};
use edna_apps::lobsters::{self, generate::LobstersConfig};
use edna_core::{ApplyOptions, Disguiser};
use edna_relational::Value;

fn hotcrp_setup() -> (
    edna_relational::Database,
    Disguiser,
    hotcrp::generate::HotCrpInstance,
) {
    let db = hotcrp::create_db().unwrap();
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::small()).unwrap();
    let edna = Disguiser::new(db.clone());
    hotcrp::register_disguises(&edna).unwrap();
    (db, edna, inst)
}

#[test]
fn hotcrp_gdpr_removes_reviews_entirely() {
    let (db, edna, inst) = hotcrp_setup();
    let bea = inst.pc_contact_ids[0];
    let total_reviews = db.row_count("Review").unwrap();
    let beas = db
        .execute(&format!(
            "SELECT COUNT(*) FROM Review WHERE contactId = {bea}"
        ))
        .unwrap()
        .scalar()
        .unwrap()
        .as_int()
        .unwrap() as usize;
    assert!(beas > 0);

    let report = edna.apply("HotCRP-GDPR", Some(&Value::Int(bea))).unwrap();
    assert!(report.rows_removed > beas, "reviews + private data removed");
    assert_eq!(db.row_count("Review").unwrap(), total_reviews - beas);
    assert_eq!(
        db.execute(&format!(
            "SELECT COUNT(*) FROM ContactInfo WHERE contactId = {bea}"
        ))
        .unwrap()
        .scalar()
        .unwrap(),
        &Value::Int(0)
    );

    // GDPR is reversible here: the user can come back.
    edna.reveal(report.disguise_id).unwrap();
    assert_eq!(db.row_count("Review").unwrap(), total_reviews);
    assert_eq!(
        db.execute(&format!(
            "SELECT COUNT(*) FROM Review WHERE contactId = {bea}"
        ))
        .unwrap()
        .scalar()
        .unwrap()
        .as_int()
        .unwrap() as usize,
        beas
    );
}

#[test]
fn hotcrp_gdpr_plus_preserves_review_texts() {
    let (db, edna, inst) = hotcrp_setup();
    let bea = inst.pc_contact_ids[1];
    let total_reviews = db.row_count("Review").unwrap();
    let beas_reviews = db
        .execute(&format!(
            "SELECT COUNT(*) FROM Review WHERE contactId = {bea}"
        ))
        .unwrap()
        .scalar()
        .unwrap()
        .as_int()
        .unwrap() as usize;
    assert!(beas_reviews > 0);

    let report = edna.apply("HotCRP-GDPR+", Some(&Value::Int(bea))).unwrap();
    assert!(report.rows_decorrelated > 0);
    assert_eq!(
        db.row_count("Review").unwrap(),
        total_reviews,
        "texts retained"
    );
    assert_eq!(
        db.execute(&format!(
            "SELECT COUNT(*) FROM Review WHERE contactId = {bea}"
        ))
        .unwrap()
        .scalar()
        .unwrap(),
        &Value::Int(0),
        "no review attributable to the user"
    );
    // Each of Bea's former reviews points at a distinct disabled placeholder.
    let placeholder_owners = db
        .execute(
            "SELECT c.contactId, c.disabled FROM Review r \
             INNER JOIN ContactInfo c ON c.contactId = r.contactId \
             WHERE c.disabled = TRUE",
        )
        .unwrap();
    assert_eq!(placeholder_owners.rows.len(), beas_reviews);
    assert!(report.rows_decorrelated >= beas_reviews);
    let mut ids: Vec<String> = placeholder_owners
        .rows
        .iter()
        .map(|r| r[0].to_string())
        .collect();
    ids.sort();
    ids.dedup();
    assert_eq!(
        ids.len(),
        placeholder_owners.rows.len(),
        "placeholders are not shared between reviews (Fig. 2)"
    );
}

#[test]
fn confanon_then_gdpr_plus_composes() {
    // The §6 composition sequence: ConfAnon (global) then GDPR+ for a PC
    // member, naive and optimized.
    for optimize in [false, true] {
        let (db, edna, inst) = hotcrp_setup();
        let bea = inst.pc_contact_ids[2];

        let anon = edna.apply("HotCRP-ConfAnon", None).unwrap();
        assert!(anon.rows_decorrelated > 0);
        assert_eq!(
            db.execute(&format!(
                "SELECT COUNT(*) FROM Review WHERE contactId = {bea}"
            ))
            .unwrap()
            .scalar()
            .unwrap(),
            &Value::Int(0),
            "ConfAnon hid everyone's reviews"
        );

        let opts = ApplyOptions {
            compose: true,
            optimize,
            use_transaction: true,
            ..ApplyOptions::default()
        };
        let report = edna
            .apply_with_options("HotCRP-GDPR+", Some(&Value::Int(bea)), opts)
            .unwrap();
        if optimize {
            assert!(report.skipped_redundant > 0, "optimization engaged");
        } else {
            assert!(report.rows_recorrelated > 0, "naive path recorrelates");
        }
        // Privacy goal reached either way: account gone, nothing attributed.
        assert_eq!(
            db.execute(&format!(
                "SELECT COUNT(*) FROM ContactInfo WHERE contactId = {bea}"
            ))
            .unwrap()
            .scalar()
            .unwrap(),
            &Value::Int(0)
        );
    }
}

#[test]
fn two_independent_gdpr_plus_applications() {
    // §6's independent case: two GDPR+ for different users compose
    // trivially (no shared rows).
    let (db, edna, inst) = hotcrp_setup();
    let a = inst.pc_contact_ids[0];
    let b = inst.pc_contact_ids[1];
    let ra = edna.apply("HotCRP-GDPR+", Some(&Value::Int(a))).unwrap();
    let rb = edna.apply("HotCRP-GDPR+", Some(&Value::Int(b))).unwrap();
    assert_eq!(ra.rows_recorrelated, 0);
    assert_eq!(
        rb.rows_recorrelated, 0,
        "independent disguises never recorrelate"
    );
    for u in [a, b] {
        assert_eq!(
            db.execute(&format!(
                "SELECT COUNT(*) FROM Review WHERE contactId = {u}"
            ))
            .unwrap()
            .scalar()
            .unwrap(),
            &Value::Int(0)
        );
    }
}

#[test]
fn gdpr_reveal_after_confanon_respects_confanon() {
    // §4.2: "reversal of GDPR must avoid reintroducing identifiable
    // reviews if ConfAnon has occurred since GDPR was applied."
    let (db, edna, inst) = hotcrp_setup();
    let bea = inst.pc_contact_ids[3];
    let gdpr = edna.apply("HotCRP-GDPR+", Some(&Value::Int(bea))).unwrap();
    edna.apply("HotCRP-ConfAnon", None).unwrap();

    let reveal = edna.reveal(gdpr.disguise_id).unwrap();
    assert!(
        reveal.reapplied.iter().any(|(_, n)| n == "HotCRP-ConfAnon"),
        "ConfAnon must be re-applied to revealed rows, got {:?}",
        reveal.reapplied
    );
    // Bea's account is back...
    assert_eq!(
        db.execute(&format!(
            "SELECT COUNT(*) FROM ContactInfo WHERE contactId = {bea}"
        ))
        .unwrap()
        .scalar()
        .unwrap(),
        &Value::Int(1)
    );
    // ...but her reviews remain anonymized (ConfAnon still active).
    assert_eq!(
        db.execute(&format!(
            "SELECT COUNT(*) FROM Review WHERE contactId = {bea}"
        ))
        .unwrap()
        .scalar()
        .unwrap(),
        &Value::Int(0),
        "revealed reviews must stay decorrelated while ConfAnon is active"
    );
}

#[test]
fn lobsters_gdpr_and_reveal() {
    let db = lobsters::create_db().unwrap();
    let inst = lobsters::generate::generate(&db, &LobstersConfig::small()).unwrap();
    let edna = Disguiser::new(db.clone());
    lobsters::register_disguises(&edna).unwrap();

    let user = inst.user_ids[0];
    let stories_before = db.row_count("stories").unwrap();
    let comments_before = db.row_count("comments").unwrap();
    let report = edna
        .apply("Lobsters-GDPR", Some(&Value::Int(user)))
        .unwrap();

    // Public contributions retained, private data removed, account gone.
    assert_eq!(db.row_count("stories").unwrap(), stories_before);
    assert_eq!(db.row_count("comments").unwrap(), comments_before);
    assert_eq!(
        db.execute(&format!(
            "SELECT COUNT(*) FROM votes WHERE user_id = {user}"
        ))
        .unwrap()
        .scalar()
        .unwrap(),
        &Value::Int(0)
    );
    assert_eq!(
        db.execute(&format!("SELECT COUNT(*) FROM users WHERE id = {user}"))
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(0)
    );
    // The user's comments read "[deleted]".
    let deleted = db
        .execute("SELECT COUNT(*) FROM comments WHERE comment = '[deleted]'")
        .unwrap();
    let expected = report.rows_modified; // includes is_deleted flips too
    assert!(deleted.scalar().unwrap().as_int().unwrap() > 0);
    assert!(expected > 0);

    // The user changes their mind and returns.
    edna.reveal(report.disguise_id).unwrap();
    assert_eq!(
        db.execute(&format!("SELECT COUNT(*) FROM users WHERE id = {user}"))
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(1)
    );
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM comments WHERE comment = '[deleted]'")
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(0),
        "comment bodies restored"
    );
}

#[test]
fn figure_4_loc_shape() {
    // Figure 4's claim: disguise specs are comparable in size to schemas
    // (disguise LoC < schema LoC, same order of magnitude).
    use edna_apps::loc::{disguise_loc, sql_loc};
    let rows = [
        (
            "Lobsters-GDPR",
            sql_loc(lobsters::SCHEMA_SQL),
            disguise_loc(lobsters::GDPR_DSL),
        ),
        (
            "HotCRP-GDPR",
            sql_loc(hotcrp::SCHEMA_SQL),
            disguise_loc(hotcrp::GDPR_DSL),
        ),
        (
            "HotCRP-GDPR+",
            sql_loc(hotcrp::SCHEMA_SQL),
            disguise_loc(hotcrp::GDPR_PLUS_DSL),
        ),
        (
            "HotCRP-ConfAnon",
            sql_loc(hotcrp::SCHEMA_SQL),
            disguise_loc(hotcrp::CONFANON_DSL),
        ),
    ];
    for (name, schema, disguise) in rows {
        assert!(
            disguise > 20,
            "{name}: disguise spec is non-trivial ({disguise})"
        );
        assert!(
            disguise < schema,
            "{name}: disguise LoC ({disguise}) should not exceed schema LoC ({schema})"
        );
    }
}
