//! Line-of-code counting for the paper's Figure 4 metric.
//!
//! Figure 4 compares the size of each application's relational schema with
//! the size of its disguise specification, arguing that "writing disguises
//! involves similar labor and difficulty as writing relational schemas".
//! Both artifacts here are text files; LoC is non-blank, non-comment lines.

/// Counts non-blank, non-comment lines of a SQL schema (`--` comments).
pub fn sql_loc(src: &str) -> usize {
    src.lines()
        .map(|l| l.trim())
        .filter(|l| !l.is_empty() && !l.starts_with("--"))
        .count()
}

/// Counts non-blank, non-comment lines of a disguise spec (`#` comments);
/// re-exported from the DSL parser so both metrics live together.
pub fn disguise_loc(src: &str) -> usize {
    edna_core::spec_loc(src)
}

/// Counts `CREATE TABLE` statements — the "#Object Types" column.
pub fn object_types(src: &str) -> usize {
    src.to_ascii_uppercase().matches("CREATE TABLE").count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_loc_skips_comments_and_blanks() {
        let src = "-- header\nCREATE TABLE t (\n  a INT\n);\n\n-- trailer\n";
        assert_eq!(sql_loc(src), 3);
        assert_eq!(object_types(src), 1);
    }

    #[test]
    fn disguise_loc_skips_hash_comments() {
        assert_eq!(disguise_loc("# c\nname: \"x\"\n\n"), 1);
    }
}
