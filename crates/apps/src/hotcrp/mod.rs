//! The HotCRP application substrate: schema, data generator, workload
//! queries, and the paper's three HotCRP disguises.

pub mod generate;
pub mod workload;

use edna_core::Disguiser;
use edna_relational::Database;

/// The HotCRP-like schema (25 object types).
pub const SCHEMA_SQL: &str = include_str!("../../sql/hotcrp.sql");

/// `HotCRP-GDPR`: the application's current transitive-delete policy.
pub const GDPR_DSL: &str = include_str!("../../disguises/hotcrp_gdpr.edna");

/// `HotCRP-GDPR+`: the paper's §3 user-scrubbing policy.
pub const GDPR_PLUS_DSL: &str = include_str!("../../disguises/hotcrp_gdpr_plus.edna");

/// `HotCRP-ConfAnon`: conference anonymization (paper §4.2).
pub const CONFANON_DSL: &str = include_str!("../../disguises/hotcrp_confanon.edna");

/// Creates an empty database with the HotCRP schema installed.
pub fn create_db() -> edna_relational::Result<Database> {
    let db = Database::new();
    db.execute_script(SCHEMA_SQL)?;
    Ok(db)
}

/// Registers the three HotCRP disguises with a disguiser.
pub fn register_disguises(edna: &Disguiser) -> edna_core::Result<()> {
    edna.register_dsl(GDPR_DSL)?;
    edna.register_dsl(GDPR_PLUS_DSL)?;
    edna.register_dsl(CONFANON_DSL)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::{object_types, sql_loc};

    #[test]
    fn schema_installs() {
        let db = create_db().unwrap();
        assert_eq!(object_types(SCHEMA_SQL), 25, "Figure 4: 25 object types");
        assert_eq!(db.table_names().len(), 25);
        assert!(
            sql_loc(SCHEMA_SQL) > 200,
            "schema should be a few hundred LoC"
        );
    }

    #[test]
    fn disguises_validate_against_schema() {
        let db = create_db().unwrap();
        let edna = Disguiser::new(db);
        register_disguises(&edna).unwrap();
        assert!(edna.spec("HotCRP-GDPR").is_ok());
        assert!(edna.spec("HotCRP-GDPR+").is_ok());
        assert!(edna.spec("HotCRP-ConfAnon").is_ok());
        assert!(edna.spec("HotCRP-GDPR").unwrap().user_scoped);
        assert!(!edna.spec("HotCRP-ConfAnon").unwrap().user_scoped);
    }
}
