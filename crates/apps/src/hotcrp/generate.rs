//! Deterministic HotCRP data generator.
//!
//! The paper's §6 experiment uses "a HotCRP database with 430 users (30 PC
//! members), 450 papers, and 1400 reviews"; [`HotCrpConfig::paper`] matches
//! those numbers exactly, and [`HotCrpConfig::scaled`] sweeps them for the
//! linear-scaling experiment. Generation is seeded and fully deterministic.

use edna_util::rng::Prng;
use edna_util::rng::Rng;

use edna_relational::{Database, Result, Value};

use crate::names::{affiliation, first_name, last_name, sentence, word};

/// Sizing and seeding for a generated HotCRP instance.
#[derive(Debug, Clone, Copy)]
pub struct HotCrpConfig {
    /// Total users (including PC members).
    pub users: usize,
    /// PC members (they write the reviews).
    pub pc_members: usize,
    /// Submitted papers.
    pub papers: usize,
    /// Total reviews.
    pub reviews: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HotCrpConfig {
    /// The paper's §6 experiment size: 430 users, 30 PC, 450 papers,
    /// 1400 reviews.
    pub fn paper() -> HotCrpConfig {
        HotCrpConfig {
            users: 430,
            pc_members: 30,
            papers: 450,
            reviews: 1400,
            seed: 7,
        }
    }

    /// A small instance for fast tests.
    pub fn small() -> HotCrpConfig {
        HotCrpConfig {
            users: 40,
            pc_members: 8,
            papers: 25,
            reviews: 60,
            seed: 7,
        }
    }

    /// A population-targeted instance: exactly `users` users with the
    /// workload (PC, papers, reviews) grown proportionally to the paper's
    /// ratios. Supports the 10⁴–10⁵-user write-scaling sweeps, where the
    /// independent variable is the number of disguisable principals.
    pub fn sized(users: usize) -> HotCrpConfig {
        let base = HotCrpConfig::paper();
        let factor = users.max(8) as f64 / base.users as f64;
        let s = |n: usize, min: usize| (((n as f64) * factor) as usize).max(min);
        HotCrpConfig {
            users: users.max(8),
            pc_members: s(base.pc_members, 4),
            papers: s(base.papers, 4),
            reviews: s(base.reviews, 8),
            seed: base.seed,
        }
    }

    /// The paper configuration with papers and reviews scaled by `factor`
    /// at a fixed population — the §6 scaling sweep: the number of objects
    /// one user's disguise touches grows with `factor`.
    pub fn scaled_workload(factor: f64) -> HotCrpConfig {
        let base = HotCrpConfig::paper();
        let s = |n: usize, min: usize| (((n as f64) * factor) as usize).max(min);
        HotCrpConfig {
            users: base.users,
            pc_members: base.pc_members,
            papers: s(base.papers, 4),
            reviews: s(base.reviews, 8),
            seed: base.seed,
        }
    }

    /// The paper configuration scaled by `factor` (for the §6 scaling
    /// sweep). Minimums keep tiny factors well-formed.
    pub fn scaled(factor: f64) -> HotCrpConfig {
        let base = HotCrpConfig::paper();
        let s = |n: usize, min: usize| (((n as f64) * factor) as usize).max(min);
        HotCrpConfig {
            users: s(base.users, 8),
            pc_members: s(base.pc_members, 4),
            papers: s(base.papers, 4),
            reviews: s(base.reviews, 8),
            seed: base.seed,
        }
    }
}

/// Summary of what was generated (row counts by table).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotCrpInstance {
    /// Contact ids of PC members (review authors).
    pub pc_contact_ids: Vec<i64>,
    /// Contact ids of non-PC users.
    pub author_contact_ids: Vec<i64>,
    /// Paper ids.
    pub paper_ids: Vec<i64>,
    /// Review ids.
    pub review_ids: Vec<i64>,
}

/// Populates `db` (which must have the HotCRP schema) per `config`.
pub fn generate(db: &Database, config: &HotCrpConfig) -> Result<HotCrpInstance> {
    let mut rng = Prng::seed_from_u64(config.seed);
    let mut instance = HotCrpInstance::default();

    // Contacts: PC members first, then authors.
    for i in 0..config.users {
        let is_pc = i < config.pc_members;
        let fname = first_name(&mut rng);
        let lname = last_name(&mut rng);
        let id = db
            .insert_row(
                "ContactInfo",
                &[
                    ("firstName", Value::Text(fname.clone())),
                    ("lastName", Value::Text(lname.clone())),
                    (
                        "email",
                        Value::Text(format!("{}.{}{}@example.edu", fname, lname, i)),
                    ),
                    ("affiliation", Value::Text(affiliation(&mut rng))),
                    ("password", Value::Text(format!("pw-{i}"))),
                    ("roles", Value::Int(if is_pc { 1 } else { 0 })),
                    ("lastLogin", Value::Int(rng.gen_range(0..1_000_000))),
                ],
            )?
            .expect("auto id");
        if is_pc {
            instance.pc_contact_ids.push(id);
        } else {
            instance.author_contact_ids.push(id);
        }
    }

    // Topics and PC interests.
    let n_topics = 20.min(config.papers.max(4));
    let mut topic_ids = Vec::new();
    for _ in 0..n_topics {
        let id = db
            .insert_row("TopicArea", &[("topicName", Value::Text(word(&mut rng)))])?
            .expect("auto id");
        topic_ids.push(id);
    }
    for &pc in &instance.pc_contact_ids {
        for _ in 0..rng.gen_range(2..6) {
            let topic = topic_ids[rng.gen_range(0..topic_ids.len())];
            db.insert_row(
                "TopicInterest",
                &[
                    ("contactId", Value::Int(pc)),
                    ("topicId", Value::Int(topic)),
                    ("interest", Value::Int(rng.gen_range(-2..=2))),
                ],
            )?;
        }
    }

    // Papers with authors (PaperConflict conflictType 2) and topics.
    let author_pool = if instance.author_contact_ids.is_empty() {
        &instance.pc_contact_ids
    } else {
        &instance.author_contact_ids
    };
    for p in 0..config.papers {
        let lead = instance.pc_contact_ids[rng.gen_range(0..instance.pc_contact_ids.len())];
        let paper_id = db
            .insert_row(
                "Paper",
                &[
                    ("title", Value::Text(sentence(&mut rng, 5))),
                    ("abstract", Value::Text(sentence(&mut rng, 30))),
                    ("authorInformation", Value::Text(sentence(&mut rng, 6))),
                    ("leadContactId", Value::Int(lead)),
                    ("timeSubmitted", Value::Int(rng.gen_range(1..1_000_000))),
                ],
            )?
            .expect("auto id");
        instance.paper_ids.push(paper_id);
        for _ in 0..rng.gen_range(1..=3) {
            let author = author_pool[rng.gen_range(0..author_pool.len())];
            db.insert_row(
                "PaperConflict",
                &[
                    ("paperId", Value::Int(paper_id)),
                    ("contactId", Value::Int(author)),
                    ("conflictType", Value::Int(2)),
                ],
            )?;
        }
        let topic = topic_ids[rng.gen_range(0..topic_ids.len())];
        db.insert_row(
            "PaperTopic",
            &[
                ("paperId", Value::Int(paper_id)),
                ("topicId", Value::Int(topic)),
            ],
        )?;
        let doc = db
            .insert_row(
                "PaperStorage",
                &[
                    ("paperId", Value::Int(paper_id)),
                    ("size", Value::Int(rng.gen_range(10_000..2_000_000))),
                    ("timestamp", Value::Int(p as i64)),
                ],
            )?
            .expect("auto id");
        db.insert_row(
            "DocumentLink",
            &[
                ("paperId", Value::Int(paper_id)),
                ("documentId", Value::Int(doc)),
            ],
        )?;
    }

    // Reviews: PC members, spread over papers round-robin with jitter.
    for r in 0..config.reviews {
        let reviewer = instance.pc_contact_ids[r % instance.pc_contact_ids.len()];
        let paper = instance.paper_ids[rng.gen_range(0..instance.paper_ids.len())];
        let requested_by = instance.pc_contact_ids[rng.gen_range(0..instance.pc_contact_ids.len())];
        let id = db
            .insert_row(
                "Review",
                &[
                    ("paperId", Value::Int(paper)),
                    ("contactId", Value::Int(reviewer)),
                    ("requestedBy", Value::Int(requested_by)),
                    ("overAllMerit", Value::Int(rng.gen_range(1..=5))),
                    ("reviewerQualification", Value::Int(rng.gen_range(1..=4))),
                    ("paperSummary", Value::Text(sentence(&mut rng, 20))),
                    ("commentsToAuthor", Value::Text(sentence(&mut rng, 40))),
                    ("reviewSubmitted", Value::Int(1)),
                ],
            )?
            .expect("auto id");
        instance.review_ids.push(id);
    }

    // Review preferences: each PC member bids on ~5% of papers (min 3).
    let prefs_per_pc = (config.papers / 20).max(3);
    for &pc in &instance.pc_contact_ids {
        for _ in 0..prefs_per_pc {
            let paper = instance.paper_ids[rng.gen_range(0..instance.paper_ids.len())];
            db.insert_row(
                "ReviewPreference",
                &[
                    ("paperId", Value::Int(paper)),
                    ("contactId", Value::Int(pc)),
                    ("preference", Value::Int(rng.gen_range(-20..=20))),
                ],
            )?;
        }
    }

    // Comments on ~half the papers; ratings on ~a third of reviews.
    for (i, &paper) in instance.paper_ids.iter().enumerate() {
        if i % 2 == 0 {
            let commenter =
                instance.pc_contact_ids[rng.gen_range(0..instance.pc_contact_ids.len())];
            db.insert_row(
                "PaperComment",
                &[
                    ("paperId", Value::Int(paper)),
                    ("contactId", Value::Int(commenter)),
                    ("comment", Value::Text(sentence(&mut rng, 15))),
                ],
            )?;
        }
    }
    for (i, &review) in instance.review_ids.iter().enumerate() {
        if i % 3 == 0 {
            let rater = instance.pc_contact_ids[rng.gen_range(0..instance.pc_contact_ids.len())];
            db.insert_row(
                "ReviewRating",
                &[
                    ("reviewId", Value::Int(review)),
                    ("contactId", Value::Int(rater)),
                    ("rating", Value::Int(rng.gen_range(0..=1))),
                ],
            )?;
        }
    }

    // Watches, capabilities, sessions, action log.
    for &pc in &instance.pc_contact_ids {
        let paper = instance.paper_ids[rng.gen_range(0..instance.paper_ids.len())];
        db.insert_row(
            "PaperWatch",
            &[
                ("paperId", Value::Int(paper)),
                ("contactId", Value::Int(pc)),
                ("watch", Value::Int(1)),
            ],
        )?;
        db.insert_row(
            "ContactSession",
            &[
                ("contactId", Value::Int(pc)),
                ("sessionData", Value::Text(format!("session-{pc}"))),
            ],
        )?;
    }
    for i in 0..(config.users / 4).max(2) {
        let who = if i % 2 == 0 && !instance.author_contact_ids.is_empty() {
            instance.author_contact_ids[rng.gen_range(0..instance.author_contact_ids.len())]
        } else {
            instance.pc_contact_ids[rng.gen_range(0..instance.pc_contact_ids.len())]
        };
        db.insert_row(
            "Capability",
            &[
                ("contactId", Value::Int(who)),
                ("salt", Value::Text(format!("salt-{i}"))),
                ("timeExpires", Value::Int(rng.gen_range(1..1_000_000))),
            ],
        )?;
        db.insert_row(
            "ActionLog",
            &[
                ("contactId", Value::Int(who)),
                ("action", Value::Text("login".to_string())),
                (
                    "ipaddr",
                    Value::Text(format!("10.0.{}.{}", i % 256, (i * 7) % 256)),
                ),
                ("timestamp", Value::Int(i as i64)),
            ],
        )?;
    }

    // A few settings rows so the table isn't empty.
    for (name, value) in [("sub_open", 1i64), ("rev_open", 1), ("seedec", 1)] {
        db.insert_row(
            "Settings",
            &[
                ("name", Value::Text(name.to_string())),
                ("value", Value::Int(value)),
            ],
        )?;
    }
    Ok(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotcrp::create_db;

    #[test]
    fn small_instance_has_expected_shape() {
        let db = create_db().unwrap();
        let config = HotCrpConfig::small();
        let inst = generate(&db, &config).unwrap();
        assert_eq!(inst.pc_contact_ids.len(), config.pc_members);
        assert_eq!(
            inst.pc_contact_ids.len() + inst.author_contact_ids.len(),
            config.users
        );
        assert_eq!(db.row_count("Paper").unwrap(), config.papers);
        assert_eq!(db.row_count("Review").unwrap(), config.reviews);
        assert!(db.row_count("PaperConflict").unwrap() >= config.papers);
        assert!(db.row_count("ReviewPreference").unwrap() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = {
            let db = create_db().unwrap();
            generate(&db, &HotCrpConfig::small()).unwrap();
            db.dump()
        };
        let b = {
            let db = create_db().unwrap();
            generate(&db, &HotCrpConfig::small()).unwrap();
            db.dump()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn paper_config_matches_section_6() {
        let c = HotCrpConfig::paper();
        assert_eq!(
            (c.users, c.pc_members, c.papers, c.reviews),
            (430, 30, 450, 1400)
        );
    }

    #[test]
    fn scaled_config_scales() {
        let half = HotCrpConfig::scaled(0.5);
        assert_eq!(half.users, 215);
        assert_eq!(half.reviews, 700);
        let tiny = HotCrpConfig::scaled(0.001);
        assert!(tiny.pc_members >= 4);
    }
}
