//! Application workload queries for HotCRP.
//!
//! These mirror what the web application actually asks of the database and
//! are used to check that disguises preserve application utility (paper
//! §1: a disguise transforms data "while preserving application invariants
//! and utility").

use edna_relational::{Database, QueryResult, Result, Value};

/// The paper list: submitted papers with review counts (the homepage).
pub fn paper_list(db: &Database) -> Result<QueryResult> {
    db.execute(
        "SELECT p.paperId, p.title, COUNT(r.reviewId) AS reviews \
         FROM Paper p LEFT JOIN Review r ON r.paperId = p.paperId \
         WHERE p.timeSubmitted > 0 \
         GROUP BY p.paperId ORDER BY p.paperId",
    )
}

/// All submitted reviews of one paper, with reviewer names (the review
/// page; after scrubbing, names are placeholder names, never blank).
pub fn reviews_for_paper(db: &Database, paper_id: i64) -> Result<QueryResult> {
    db.execute(&format!(
        "SELECT r.reviewId, c.firstName, c.lastName, r.overAllMerit, r.commentsToAuthor \
         FROM Review r INNER JOIN ContactInfo c ON c.contactId = r.contactId \
         WHERE r.paperId = {paper_id} AND r.reviewSubmitted = 1 ORDER BY r.reviewId"
    ))
}

/// One user's profile and activity counts (the account page).
pub fn user_profile(db: &Database, contact_id: i64) -> Result<QueryResult> {
    db.execute(&format!(
        "SELECT c.firstName, c.lastName, c.email, c.affiliation, c.disabled \
         FROM ContactInfo c WHERE c.contactId = {contact_id}"
    ))
}

/// Number of reviews attributed to a user (0 after scrubbing).
pub fn review_count_for_user(db: &Database, contact_id: i64) -> Result<i64> {
    let r = db.execute(&format!(
        "SELECT COUNT(*) FROM Review WHERE contactId = {contact_id}"
    ))?;
    r.scalar()?.as_int()
}

/// Whether a contact can log in: exists, not disabled, has a password.
pub fn can_log_in(db: &Database, contact_id: i64) -> Result<bool> {
    let r = db.execute(&format!(
        "SELECT disabled, password FROM ContactInfo WHERE contactId = {contact_id}"
    ))?;
    Ok(match r.rows.first() {
        Some(row) => row[0] == Value::Bool(false) && !row[1].is_null(),
        None => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotcrp::generate::{generate, HotCrpConfig};
    use crate::hotcrp::{create_db, register_disguises};
    use edna_core::Disguiser;

    #[test]
    fn workload_runs_on_fresh_instance() {
        let db = create_db().unwrap();
        let inst = generate(&db, &HotCrpConfig::small()).unwrap();
        let papers = paper_list(&db).unwrap();
        assert_eq!(papers.rows.len(), HotCrpConfig::small().papers);
        let with_reviews = inst.review_ids.len();
        assert!(with_reviews > 0);
        let first_paper = inst.paper_ids[0];
        let _ = reviews_for_paper(&db, first_paper).unwrap();
        assert!(can_log_in(&db, inst.pc_contact_ids[0]).unwrap());
    }

    #[test]
    fn utility_preserved_after_scrubbing() {
        // §3's key property: after GDPR+, review texts are still in the
        // system and the application keeps working — but the user's
        // identity is gone and placeholders cannot log in.
        let db = create_db().unwrap();
        let inst = generate(&db, &HotCrpConfig::small()).unwrap();
        let edna = Disguiser::new(db.clone());
        register_disguises(&edna).unwrap();

        let bea = inst.pc_contact_ids[0];
        let reviews_before = db.row_count("Review").unwrap();
        let beas_reviews = review_count_for_user(&db, bea).unwrap();
        assert!(beas_reviews > 0);

        edna.apply("HotCRP-GDPR+", Some(&Value::Int(bea))).unwrap();

        // Review texts retained; attribution gone; app queries still run.
        assert_eq!(db.row_count("Review").unwrap(), reviews_before);
        assert_eq!(review_count_for_user(&db, bea).unwrap(), 0);
        assert!(!can_log_in(&db, bea).unwrap());
        let papers = paper_list(&db).unwrap();
        assert!(!papers.rows.is_empty());
        // Reviewer names on every paper resolve to some (placeholder) name.
        let r = reviews_for_paper(&db, inst.paper_ids[0]).unwrap();
        for row in &r.rows {
            assert!(!row[1].is_null(), "reviewer first name must resolve");
        }
    }
}
