//! Deterministic fake-data vocabulary shared by the generators.

use edna_util::rng::Rng;

const FIRST: &[&str] = &[
    "Bea",
    "Ada",
    "Grace",
    "Alan",
    "Edsger",
    "Barbara",
    "Leslie",
    "Tony",
    "Donald",
    "Radia",
    "Vint",
    "Tim",
    "Margaret",
    "Katherine",
    "Annie",
    "John",
    "Frances",
    "Jean",
    "Kay",
    "Mary",
];
const LAST: &[&str] = &[
    "Lovelace",
    "Hopper",
    "Turing",
    "Dijkstra",
    "Liskov",
    "Lamport",
    "Hoare",
    "Knuth",
    "Perlman",
    "Cerf",
    "Berners",
    "Hamilton",
    "Johnson",
    "Easley",
    "Backus",
    "Allen",
    "Bartik",
    "Antonelli",
    "McNulty",
    "Keller",
];
const AFFILIATIONS: &[&str] = &[
    "MIT",
    "Brown University",
    "Harvard University",
    "ETH Zurich",
    "Stanford",
    "UW",
    "Cambridge",
    "EPFL",
    "CMU",
    "Berkeley",
];
const WORDS: &[&str] = &[
    "privacy",
    "disguise",
    "vault",
    "anonymize",
    "decorrelate",
    "database",
    "system",
    "reveal",
    "placeholder",
    "transformation",
    "integrity",
    "policy",
    "schema",
    "predicate",
    "review",
    "paper",
    "conference",
    "shard",
    "index",
    "transaction",
    "latency",
    "storage",
    "consensus",
    "cache",
    "kernel",
    "network",
    "protocol",
    "queue",
    "scheduler",
    "replica",
];

/// A random first name.
pub fn first_name(rng: &mut impl Rng) -> String {
    FIRST[rng.gen_range(0..FIRST.len())].to_string()
}

/// A random last name.
pub fn last_name(rng: &mut impl Rng) -> String {
    LAST[rng.gen_range(0..LAST.len())].to_string()
}

/// A random affiliation.
pub fn affiliation(rng: &mut impl Rng) -> String {
    AFFILIATIONS[rng.gen_range(0..AFFILIATIONS.len())].to_string()
}

/// A random vocabulary word.
pub fn word(rng: &mut impl Rng) -> String {
    WORDS[rng.gen_range(0..WORDS.len())].to_string()
}

/// A random `n`-word sentence.
pub fn sentence(rng: &mut impl Rng, n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out
}

/// A random lowercase username.
pub fn username(rng: &mut impl Rng, tag: usize) -> String {
    format!(
        "{}{}{}",
        FIRST[rng.gen_range(0..FIRST.len())].to_lowercase(),
        WORDS[rng.gen_range(0..WORDS.len())],
        tag
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use edna_util::rng::Prng;

    #[test]
    fn deterministic_with_seed() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(1);
        assert_eq!(sentence(&mut a, 5), sentence(&mut b, 5));
        assert_eq!(username(&mut a, 3), username(&mut b, 3));
    }

    #[test]
    fn sentence_has_requested_words() {
        let mut rng = Prng::seed_from_u64(2);
        assert_eq!(sentence(&mut rng, 7).split(' ').count(), 7);
    }
}
