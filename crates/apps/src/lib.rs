//! `edna-apps`: application substrates for the paper's case studies (§6).
//!
//! Two applications, modeled on the real open-source systems the paper
//! evaluates:
//!
//! - [`hotcrp`] — a 25-object-type conference review system with a
//!   deterministic generator matching §6's experiment size (430 users,
//!   30 PC members, 450 papers, 1400 reviews), workload queries, and the
//!   three HotCRP disguises (`HotCRP-GDPR`, `HotCRP-GDPR+`,
//!   `HotCRP-ConfAnon`);
//! - [`lobsters`] — a 19-object-type news aggregator with `Lobsters-GDPR`.
//!
//! The disguises live as text DSL files under `disguises/`; the schemas as
//! SQL under `sql/`. Both are measured by [`loc`] for Figure 4.

#![warn(missing_docs)]

pub mod hotcrp;
pub mod lobsters;
pub mod loc;
pub mod names;
