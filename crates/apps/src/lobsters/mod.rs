//! The Lobsters application substrate: schema, data generator, and the
//! `Lobsters-GDPR` disguise.

pub mod generate;

use edna_core::Disguiser;
use edna_relational::Database;

/// The Lobsters-like schema (19 object types).
pub const SCHEMA_SQL: &str = include_str!("../../sql/lobsters.sql");

/// `Lobsters-GDPR`: the site's current account deletion policy.
pub const GDPR_DSL: &str = include_str!("../../disguises/lobsters_gdpr.edna");

/// Creates an empty database with the Lobsters schema installed.
pub fn create_db() -> edna_relational::Result<Database> {
    let db = Database::new();
    db.execute_script(SCHEMA_SQL)?;
    Ok(db)
}

/// Registers the Lobsters disguise with a disguiser.
pub fn register_disguises(edna: &Disguiser) -> edna_core::Result<()> {
    edna.register_dsl(GDPR_DSL)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::object_types;

    #[test]
    fn schema_installs() {
        let db = create_db().unwrap();
        assert_eq!(object_types(SCHEMA_SQL), 19, "Figure 4: 19 object types");
        assert_eq!(db.table_names().len(), 19);
    }

    #[test]
    fn disguise_validates() {
        let db = create_db().unwrap();
        let edna = Disguiser::new(db);
        register_disguises(&edna).unwrap();
        assert!(edna.spec("Lobsters-GDPR").unwrap().user_scoped);
    }
}
