//! Deterministic Lobsters data generator.

use edna_util::rng::Prng;
use edna_util::rng::Rng;

use edna_relational::{Database, Result, Value};

use crate::names::{sentence, username, word};

/// Sizing and seeding for a generated Lobsters instance.
#[derive(Debug, Clone, Copy)]
pub struct LobstersConfig {
    /// Registered users.
    pub users: usize,
    /// Submitted stories.
    pub stories: usize,
    /// Comments (threaded under stories).
    pub comments: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LobstersConfig {
    /// A mid-size instance for benches.
    pub fn medium() -> LobstersConfig {
        LobstersConfig {
            users: 200,
            stories: 400,
            comments: 1200,
            seed: 11,
        }
    }

    /// A population-targeted instance: exactly `users` users, each with
    /// the medium instance's per-user content density (2 stories and 6
    /// comments per user). Supports the 10⁴–10⁵-user write-scaling
    /// sweeps.
    pub fn sized(users: usize) -> LobstersConfig {
        let users = users.max(2);
        LobstersConfig {
            users,
            stories: users * 2,
            comments: users * 6,
            seed: 11,
        }
    }

    /// A small instance for fast tests.
    pub fn small() -> LobstersConfig {
        LobstersConfig {
            users: 20,
            stories: 30,
            comments: 80,
            seed: 11,
        }
    }
}

/// Ids of the generated principals.
#[derive(Debug, Clone, Default)]
pub struct LobstersInstance {
    /// User ids.
    pub user_ids: Vec<i64>,
    /// Story ids.
    pub story_ids: Vec<i64>,
    /// Comment ids.
    pub comment_ids: Vec<i64>,
}

/// Populates `db` (which must have the Lobsters schema) per `config`.
pub fn generate(db: &Database, config: &LobstersConfig) -> Result<LobstersInstance> {
    let mut rng = Prng::seed_from_u64(config.seed);
    let mut inst = LobstersInstance::default();

    // Tags.
    let mut tag_ids = Vec::new();
    for i in 0..15 {
        let id = db
            .insert_row(
                "tags",
                &[("tag", Value::Text(format!("{}{i}", word(&mut rng))))],
            )?
            .expect("auto id");
        tag_ids.push(id);
    }

    // Users; later users are invited by earlier ones.
    for i in 0..config.users {
        let inviter = if i > 0 && rng.gen_bool(0.7) {
            Value::Int(inst.user_ids[rng.gen_range(0..inst.user_ids.len())])
        } else {
            Value::Null
        };
        let id = db
            .insert_row(
                "users",
                &[
                    ("username", Value::Text(username(&mut rng, i))),
                    ("email", Value::Text(format!("user{i}@example.org"))),
                    ("password_digest", Value::Text(format!("digest-{i}"))),
                    ("about", Value::Text(sentence(&mut rng, 6))),
                    ("karma", Value::Int(rng.gen_range(0..500))),
                    ("last_login", Value::Int(rng.gen_range(0..1_000_000))),
                    ("invited_by_user_id", inviter),
                ],
            )?
            .expect("auto id");
        inst.user_ids.push(id);
    }

    // Stories with taggings and votes.
    for s in 0..config.stories {
        let author = inst.user_ids[rng.gen_range(0..inst.user_ids.len())];
        let id = db
            .insert_row(
                "stories",
                &[
                    ("user_id", Value::Int(author)),
                    ("title", Value::Text(sentence(&mut rng, 6))),
                    ("url", Value::Text(format!("https://example.org/{s}"))),
                    ("description", Value::Text(sentence(&mut rng, 12))),
                    ("score", Value::Int(rng.gen_range(1..100))),
                    ("created_at", Value::Int(s as i64 * 100)),
                ],
            )?
            .expect("auto id");
        inst.story_ids.push(id);
        let tag = tag_ids[rng.gen_range(0..tag_ids.len())];
        db.insert_row(
            "taggings",
            &[("story_id", Value::Int(id)), ("tag_id", Value::Int(tag))],
        )?;
        for _ in 0..rng.gen_range(0..4) {
            let voter = inst.user_ids[rng.gen_range(0..inst.user_ids.len())];
            db.insert_row(
                "votes",
                &[
                    ("user_id", Value::Int(voter)),
                    ("story_id", Value::Int(id)),
                    ("vote", Value::Int(1)),
                ],
            )?;
        }
    }

    // Threaded comments with votes.
    for c in 0..config.comments {
        let author = inst.user_ids[rng.gen_range(0..inst.user_ids.len())];
        let story = inst.story_ids[rng.gen_range(0..inst.story_ids.len())];
        let parent = if !inst.comment_ids.is_empty() && rng.gen_bool(0.3) {
            Value::Int(inst.comment_ids[rng.gen_range(0..inst.comment_ids.len())])
        } else {
            Value::Null
        };
        let id = db
            .insert_row(
                "comments",
                &[
                    ("user_id", Value::Int(author)),
                    ("story_id", Value::Int(story)),
                    ("parent_comment_id", parent),
                    ("comment", Value::Text(sentence(&mut rng, 18))),
                    ("score", Value::Int(rng.gen_range(0..50))),
                    ("created_at", Value::Int(c as i64 * 10)),
                ],
            )?
            .expect("auto id");
        inst.comment_ids.push(id);
        if rng.gen_bool(0.5) {
            let voter = inst.user_ids[rng.gen_range(0..inst.user_ids.len())];
            db.insert_row(
                "votes",
                &[
                    ("user_id", Value::Int(voter)),
                    ("comment_id", Value::Int(id)),
                    ("vote", Value::Int(1)),
                ],
            )?;
        }
    }

    // Messages, saved/hidden stories, ribbons, hats, invitations.
    for i in 0..config.users {
        let a = inst.user_ids[rng.gen_range(0..inst.user_ids.len())];
        let b = inst.user_ids[rng.gen_range(0..inst.user_ids.len())];
        if a != b {
            db.insert_row(
                "messages",
                &[
                    ("author_user_id", Value::Int(a)),
                    ("recipient_user_id", Value::Int(b)),
                    ("subject", Value::Text(word(&mut rng))),
                    ("body", Value::Text(sentence(&mut rng, 10))),
                ],
            )?;
        }
        let story = inst.story_ids[rng.gen_range(0..inst.story_ids.len())];
        match i % 3 {
            0 => {
                db.insert_row(
                    "saved_stories",
                    &[("user_id", Value::Int(a)), ("story_id", Value::Int(story))],
                )?;
            }
            1 => {
                db.insert_row(
                    "hidden_stories",
                    &[("user_id", Value::Int(a)), ("story_id", Value::Int(story))],
                )?;
            }
            _ => {
                db.insert_row(
                    "read_ribbons",
                    &[("user_id", Value::Int(a)), ("story_id", Value::Int(story))],
                )?;
            }
        }
        if i % 10 == 0 {
            db.insert_row(
                "hats",
                &[
                    ("user_id", Value::Int(a)),
                    ("hat", Value::Text(word(&mut rng))),
                ],
            )?;
            db.insert_row(
                "invitations",
                &[
                    ("user_id", Value::Int(a)),
                    ("email", Value::Text(format!("invitee{i}@example.org"))),
                    ("code", Value::Text(format!("code-{i}"))),
                ],
            )?;
        }
    }
    db.insert_row(
        "keystores",
        &[
            ("keyname", Value::Text("traffic:date".to_string())),
            ("keyvalue", Value::Int(1)),
        ],
    )?;
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lobsters::create_db;

    #[test]
    fn small_instance_has_expected_shape() {
        let db = create_db().unwrap();
        let c = LobstersConfig::small();
        let inst = generate(&db, &c).unwrap();
        assert_eq!(inst.user_ids.len(), c.users);
        assert_eq!(db.row_count("stories").unwrap(), c.stories);
        assert_eq!(db.row_count("comments").unwrap(), c.comments);
        assert!(db.row_count("votes").unwrap() > 0);
        assert!(db.row_count("messages").unwrap() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = {
            let db = create_db().unwrap();
            generate(&db, &LobstersConfig::small()).unwrap();
            db.dump()
        };
        let b = {
            let db = create_db().unwrap();
            generate(&db, &LobstersConfig::small()).unwrap();
            db.dump()
        };
        assert_eq!(a, b);
    }
}
