//! Integration tests for `ALTER TABLE` (schema evolution substrate).

use edna_relational::{Database, Error, Value};

fn db() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL);
         CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
         body TEXT, FOREIGN KEY (user_id) REFERENCES users(id));",
    )
    .unwrap();
    db.execute("INSERT INTO users (name) VALUES ('bea'), ('mel')")
        .unwrap();
    db.execute("INSERT INTO posts (user_id, body) VALUES (1, 'x'), (2, 'y')")
        .unwrap();
    db
}

#[test]
fn add_column_fills_default() {
    let db = db();
    db.execute("ALTER TABLE users ADD COLUMN karma INT NOT NULL DEFAULT 5")
        .unwrap();
    let r = db
        .execute("SELECT name, karma FROM users ORDER BY id")
        .unwrap();
    assert_eq!(r.rows[0], vec![Value::Text("bea".into()), Value::Int(5)]);
    // New inserts see the column too.
    db.execute("INSERT INTO users (name, karma) VALUES ('zoe', 9)")
        .unwrap();
    assert_eq!(
        db.execute("SELECT karma FROM users WHERE name = 'zoe'")
            .unwrap()
            .rows[0][0],
        Value::Int(9)
    );
}

#[test]
fn add_column_nullable_fills_null() {
    let db = db();
    db.execute("ALTER TABLE users ADD COLUMN bio TEXT").unwrap();
    let r = db.execute("SELECT bio FROM users").unwrap();
    assert!(r.rows.iter().all(|row| row[0].is_null()));
}

#[test]
fn add_column_rejections() {
    let db = db();
    // NOT NULL without default is rejected (existing rows can't comply).
    assert!(db
        .execute("ALTER TABLE users ADD COLUMN x INT NOT NULL")
        .is_err());
    // Duplicate name.
    assert!(db
        .execute("ALTER TABLE users ADD COLUMN name TEXT")
        .is_err());
    // AUTO_INCREMENT.
    assert!(db
        .execute("ALTER TABLE users ADD COLUMN n INT AUTO_INCREMENT")
        .is_err());
    // PRIMARY KEY in ADD COLUMN.
    assert!(db
        .execute("ALTER TABLE users ADD COLUMN p INT PRIMARY KEY")
        .is_err());
}

#[test]
fn add_unique_column_enforces_uniqueness() {
    let db = db();
    db.execute("ALTER TABLE users ADD COLUMN email TEXT UNIQUE")
        .unwrap();
    db.execute("UPDATE users SET email = 'a@x' WHERE id = 1")
        .unwrap();
    assert!(matches!(
        db.execute("UPDATE users SET email = 'a@x' WHERE id = 2"),
        Err(Error::UniqueViolation { .. })
    ));
}

#[test]
fn drop_column_shifts_and_reindexes() {
    let db = db();
    db.execute("ALTER TABLE posts ADD COLUMN score INT DEFAULT 1")
        .unwrap();
    db.execute("CREATE INDEX posts_by_score ON posts (score)")
        .unwrap();
    db.execute("ALTER TABLE posts DROP COLUMN body").unwrap();
    // Columns after the dropped one keep working (including their index).
    let r = db
        .execute("SELECT id, user_id, score FROM posts WHERE score = 1")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert!(db.execute("SELECT body FROM posts").is_err());
    // The PK survives and is still enforced.
    assert!(db
        .execute("INSERT INTO posts (id, user_id, score) VALUES (1, 1, 2)")
        .is_err());
}

#[test]
fn drop_column_protections() {
    let db = db();
    assert!(
        db.execute("ALTER TABLE posts DROP COLUMN id").is_err(),
        "primary key"
    );
    assert!(
        db.execute("ALTER TABLE posts DROP COLUMN user_id").is_err(),
        "fk column"
    );
    assert!(
        db.execute("ALTER TABLE users DROP COLUMN id").is_err(),
        "referenced parent"
    );
    assert!(
        db.execute("ALTER TABLE users DROP COLUMN ghost").is_err(),
        "missing"
    );
}

#[test]
fn rename_column_updates_fk_metadata() {
    let db = db();
    db.execute("ALTER TABLE users RENAME COLUMN id TO userId")
        .unwrap();
    // Child FK metadata followed the rename: parent deletes still restrict.
    assert!(db.execute("DELETE FROM users WHERE userId = 1").is_err());
    // And inserts still validate against the renamed parent column.
    assert!(db
        .execute("INSERT INTO posts (user_id, body) VALUES (99, 'z')")
        .is_err());
    db.execute("INSERT INTO posts (user_id, body) VALUES (2, 'z')")
        .unwrap();
    // Old name is gone.
    assert!(db.execute("SELECT id FROM users").is_err());
}

#[test]
fn rename_rejections() {
    let db = db();
    assert!(db
        .execute("ALTER TABLE users RENAME COLUMN ghost TO x")
        .is_err());
    assert!(db
        .execute("ALTER TABLE users RENAME COLUMN id TO name")
        .is_err());
}

#[test]
fn alter_rolls_back() {
    let db = db();
    let before = db.dump();
    db.begin().unwrap();
    db.execute("ALTER TABLE users ADD COLUMN karma INT DEFAULT 0")
        .unwrap();
    db.execute("ALTER TABLE posts DROP COLUMN body").unwrap();
    db.execute("ALTER TABLE users RENAME COLUMN name TO display_name")
        .unwrap();
    db.execute("UPDATE users SET karma = 3 WHERE id = 1")
        .unwrap();
    db.rollback().unwrap();
    assert_eq!(db.dump(), before);
    // Schema fully restored, including FK behavior.
    db.execute("SELECT name, id FROM users").unwrap();
    db.execute("SELECT body FROM posts").unwrap();
    assert!(db.execute("SELECT karma FROM users").is_err());
}

#[test]
fn rename_rolls_back_child_fk_metadata() {
    let db = db();
    db.begin().unwrap();
    db.execute("ALTER TABLE users RENAME COLUMN id TO userId")
        .unwrap();
    db.rollback().unwrap();
    // Child FK must point at `id` again.
    let schema = db.schema("posts").unwrap();
    assert_eq!(schema.foreign_keys[0].parent_column, "id");
    assert!(db
        .execute("INSERT INTO posts (user_id, body) VALUES (99, 'z')")
        .is_err());
}
