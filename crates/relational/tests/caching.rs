//! Integration tests for the statement cache and the shared (cached)
//! access-path chooser: hit/miss accounting, DDL invalidation, and
//! explain/execution agreement.

use std::collections::HashMap;

use edna_relational::{parse_expr, AccessPath, Database, Value};

fn params(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

fn db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, age INT)")
        .unwrap();
    db.execute("INSERT INTO users (name, age) VALUES ('bea', 30), ('mel', 40), ('zoe', 50)")
        .unwrap();
    db
}

#[test]
fn repeated_sql_hits_the_statement_cache() {
    let db = db();
    db.reset_stats();
    db.execute("SELECT name FROM users WHERE age = 40").unwrap();
    let after_first = db.stats();
    assert_eq!(after_first.stmt_cache_hits, 0, "first run must miss");
    assert!(after_first.stmt_cache_misses >= 1);
    db.execute("SELECT name FROM users WHERE age = 40").unwrap();
    db.execute("SELECT name FROM users WHERE age = 40").unwrap();
    let s = db.stats();
    assert_eq!(
        s.stmt_cache_hits, 2,
        "identical SQL text must be served parsed"
    );
    assert_eq!(s.stmt_cache_misses, after_first.stmt_cache_misses);
}

#[test]
fn param_bound_sql_shares_one_cached_statement() {
    let db = db();
    db.reset_stats();
    for age in [30, 40, 50] {
        let r = db
            .execute_with_params(
                "SELECT name FROM users WHERE age = $AGE",
                &params(&[("AGE", Value::Int(age))]),
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }
    let s = db.stats();
    assert_eq!(s.stmt_cache_misses, 1, "one parse serves every binding");
    assert_eq!(s.stmt_cache_hits, 2);
}

#[test]
fn create_index_flips_a_cached_full_scan_plan() {
    let db = db();
    let pred = parse_expr("age = 40").unwrap();
    // Prime the plan cache with a full-scan decision.
    assert_eq!(
        db.access_path("users", Some(&pred)).unwrap(),
        AccessPath::FullScan
    );
    db.reset_stats();
    db.execute("SELECT name FROM users WHERE age = 40").unwrap();
    assert_eq!(db.stats().table_scans, 1);
    assert_eq!(db.stats().index_probes, 0);

    db.execute("CREATE INDEX users_by_age ON users (age)")
        .unwrap();
    // The cached decision must be invalidated, not served stale.
    match db.access_path("users", Some(&pred)).unwrap() {
        AccessPath::IndexProbe { index, column } => {
            assert_eq!(index, "users_by_age");
            assert!(column.eq_ignore_ascii_case("age"));
        }
        AccessPath::FullScan => panic!("stale full-scan plan survived CREATE INDEX"),
    }
    db.reset_stats();
    let r = db.execute("SELECT name FROM users WHERE age = 40").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Text("mel".into())]]);
    assert_eq!(
        db.stats().index_probes,
        1,
        "execution must use the new index"
    );
    assert_eq!(db.stats().table_scans, 0);
}

#[test]
fn rolled_back_create_index_does_not_leave_a_stale_probe_plan() {
    let db = db();
    let pred = parse_expr("age = 40").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("CREATE INDEX users_by_age ON users (age)")
        .unwrap();
    assert!(
        db.access_path("users", Some(&pred)).unwrap().is_probe(),
        "inside the txn the index is visible"
    );
    db.execute("ROLLBACK").unwrap();
    assert_eq!(
        db.access_path("users", Some(&pred)).unwrap(),
        AccessPath::FullScan,
        "rollback undid the index; the cached probe plan must go with it"
    );
    // And execution agrees: the probe target no longer exists.
    db.reset_stats();
    db.execute("SELECT name FROM users WHERE age = 40").unwrap();
    assert_eq!(db.stats().table_scans, 1);
    assert_eq!(db.stats().index_probes, 0);
}

#[test]
fn drop_and_recreate_table_serves_the_new_schema() {
    let db = db();
    // Cache both the statement and a plan against the old schema.
    db.execute("SELECT * FROM users WHERE id = 1").unwrap();
    db.execute("DROP TABLE users").unwrap();
    db.execute("CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, nick TEXT)")
        .unwrap();
    db.execute("INSERT INTO users (nick) VALUES ('rex')")
        .unwrap();
    let r = db.execute("SELECT * FROM users WHERE id = 1").unwrap();
    assert_eq!(
        r.columns,
        vec!["users.id".to_string(), "users.nick".to_string()]
    );
    assert_eq!(r.rows, vec![vec![Value::Int(1), Value::Text("rex".into())]]);
}

#[test]
fn alter_table_is_visible_through_cached_statements() {
    let db = db();
    let wide = db.execute("SELECT * FROM users WHERE id = 1").unwrap();
    assert_eq!(wide.columns.len(), 3);
    db.execute("ALTER TABLE users DROP COLUMN age").unwrap();
    let narrow = db.execute("SELECT * FROM users WHERE id = 1").unwrap();
    assert_eq!(
        narrow.columns,
        vec!["users.id".to_string(), "users.name".to_string()],
        "cached SELECT * must not serve the pre-ALTER schema"
    );
}

#[test]
fn explain_and_execution_agree_for_param_bound_predicates() {
    let db = db();
    db.execute("CREATE INDEX users_by_age ON users (age)")
        .unwrap();
    // The pre-bind plan (what explain sees) says probe...
    let plan = db
        .explain("SELECT name FROM users WHERE age = $AGE")
        .unwrap();
    assert!(plan.contains("index probe on users.age"), "{plan}");
    // ...and the bound execution actually probes.
    db.reset_stats();
    db.execute_with_params(
        "SELECT name FROM users WHERE age = $AGE",
        &params(&[("AGE", Value::Int(30))]),
    )
    .unwrap();
    let s = db.stats();
    assert_eq!(
        s.index_probes, 1,
        "explain promised a probe; execution must deliver"
    );
    assert_eq!(s.table_scans, 0);
}

#[test]
fn plan_cache_hits_are_counted() {
    let db = db();
    db.execute("CREATE INDEX users_by_age ON users (age)")
        .unwrap();
    db.reset_stats();
    for _ in 0..3 {
        db.execute_with_params(
            "SELECT name FROM users WHERE age = $AGE",
            &params(&[("AGE", Value::Int(30))]),
        )
        .unwrap();
    }
    assert!(
        db.stats().plan_cache_hits >= 2,
        "repeated shape must reuse the access-path decision: {:?}",
        db.stats()
    );
}
