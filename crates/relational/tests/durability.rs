//! End-to-end WAL durability: committed writes survive a process "crash"
//! (dropping the database without saving) and come back via replay.

use std::path::PathBuf;
use std::sync::Arc;

use edna_relational::wal::WalGroupConfig;
use edna_relational::{Database, Value, WalCrash};

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("edna_durability_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self, file: &str) -> PathBuf {
        self.0.join(file)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn seed_schema(db: &Database) {
    db.execute_script(
        "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL);
         CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
         body TEXT, FOREIGN KEY (user_id) REFERENCES users(id) ON DELETE CASCADE);",
    )
    .unwrap();
}

#[test]
fn committed_rows_survive_a_crash_without_save() {
    let dir = TempDir::new("no_save");
    let wal_path = dir.path("db.wal");
    {
        let (db, report) = Database::open_durable(None, &wal_path).unwrap();
        assert_eq!(report.frames_replayed, 0);
        seed_schema(&db);
        db.execute("INSERT INTO users (name) VALUES ('bea'), ('mel')")
            .unwrap();
        db.execute("INSERT INTO posts (user_id, body) VALUES (1, 'hi')")
            .unwrap();
        db.execute("UPDATE users SET name = 'bee' WHERE id = 1")
            .unwrap();
        db.execute("DELETE FROM users WHERE id = 2").unwrap();
        // Crash: drop without ever calling save().
    }
    let (back, report) = Database::open_durable(None, &wal_path).unwrap();
    assert!(report.frames_replayed > 0);
    assert!(report.open_intents.is_empty());
    assert_eq!(back.verify_integrity(), Vec::<String>::new());
    assert_eq!(
        back.execute("SELECT name FROM users ORDER BY id")
            .unwrap()
            .rows,
        vec![vec![Value::Text("bee".into())]]
    );
    assert_eq!(
        back.execute("SELECT body FROM posts").unwrap().rows,
        vec![vec![Value::Text("hi".into())]]
    );
    // AUTO_INCREMENT continues past replayed ids.
    let r = back
        .execute("INSERT INTO users (name) VALUES ('zoe')")
        .unwrap();
    assert_eq!(r.last_insert_id, Some(3));
}

#[test]
fn checkpoint_truncates_and_replay_starts_at_watermark() {
    let dir = TempDir::new("checkpoint");
    let wal_path = dir.path("db.wal");
    let snap_path = dir.path("db.edna");
    {
        let (db, _) = Database::open_durable(None, &wal_path).unwrap();
        seed_schema(&db);
        db.execute("INSERT INTO users (name) VALUES ('bea')")
            .unwrap();
        db.save(&snap_path).unwrap();
        assert_eq!(
            db.wal().unwrap().size_bytes(),
            0,
            "checkpoint must truncate the log"
        );
        // Post-checkpoint writes land in the (new) log tail.
        db.execute("INSERT INTO users (name) VALUES ('mel')")
            .unwrap();
    }
    let (back, report) = Database::open_durable(Some(&snap_path), &wal_path).unwrap();
    assert_eq!(report.frames_replayed, 1, "only the post-checkpoint insert");
    assert!(report.snapshot_watermark > 0);
    assert_eq!(
        back.execute("SELECT COUNT(*) FROM users")
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(2)
    );
}

#[test]
fn explicit_transactions_log_one_frame_and_replay() {
    let dir = TempDir::new("explicit");
    let wal_path = dir.path("db.wal");
    {
        let (db, _) = Database::open_durable(None, &wal_path).unwrap();
        seed_schema(&db);
        let frames_before = db.wal().unwrap().last_lsn();
        db.transaction(|db| {
            db.execute("INSERT INTO users (name) VALUES ('bea')")?;
            db.execute("INSERT INTO posts (user_id, body) VALUES (1, 'x')")?;
            Ok(())
        })
        .unwrap();
        assert_eq!(
            db.wal().unwrap().last_lsn(),
            frames_before + 1,
            "one commit = one frame"
        );
        // A rolled-back transaction logs nothing.
        db.begin().unwrap();
        db.execute("INSERT INTO users (name) VALUES ('ghost')")
            .unwrap();
        db.rollback().unwrap();
        assert_eq!(db.wal().unwrap().last_lsn(), frames_before + 1);
    }
    let (back, _) = Database::open_durable(None, &wal_path).unwrap();
    assert_eq!(
        back.execute("SELECT COUNT(*) FROM users")
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(1)
    );
    assert_eq!(back.verify_integrity(), Vec::<String>::new());
}

#[test]
fn ddl_and_cascading_deletes_replay() {
    let dir = TempDir::new("ddl");
    let wal_path = dir.path("db.wal");
    {
        let (db, _) = Database::open_durable(None, &wal_path).unwrap();
        seed_schema(&db);
        db.execute("CREATE INDEX posts_by_user ON posts (user_id)")
            .unwrap();
        db.execute("INSERT INTO users (name) VALUES ('bea'), ('mel')")
            .unwrap();
        db.execute("INSERT INTO posts (user_id, body) VALUES (1, 'a'), (1, 'b'), (2, 'c')")
            .unwrap();
        // Cascade: deleting user 1 removes two posts in the same frame.
        db.execute("DELETE FROM users WHERE id = 1").unwrap();
        db.execute("DROP TABLE posts").unwrap();
        db.execute("ALTER TABLE users RENAME COLUMN name TO handle")
            .unwrap();
    }
    let (back, _) = Database::open_durable(None, &wal_path).unwrap();
    assert!(!back.has_table("posts"));
    assert_eq!(
        back.execute("SELECT handle FROM users").unwrap().rows,
        vec![vec![Value::Text("mel".into())]]
    );
    assert_eq!(back.verify_integrity(), Vec::<String>::new());
}

#[test]
fn failed_wal_append_rolls_the_commit_back() {
    let dir = TempDir::new("append_fail");
    let wal_path = dir.path("db.wal");
    let (db, _) = Database::open_durable(None, &wal_path).unwrap();
    seed_schema(&db);
    db.execute("INSERT INTO users (name) VALUES ('bea')")
        .unwrap();
    let wal = db.wal().unwrap();
    wal.set_crash_hook(Some(Arc::new(|i| {
        (i == 0).then_some(WalCrash::BeforeWrite)
    })));
    let err = db
        .execute("INSERT INTO users (name) VALUES ('ghost')")
        .unwrap_err();
    assert!(
        matches!(err, edna_relational::Error::FaultInjected(_)),
        "got: {err}"
    );
    // The insert is NOT visible: unlogged means uncommitted.
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM users")
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(1)
    );
    // While the injected crash is live, the log stays poisoned: a process
    // that "died" must not keep writing.
    assert!(db
        .execute("INSERT INTO users (name) VALUES ('dead')")
        .is_err());
    // Clearing the hook clears the simulated death; writes flow again.
    wal.set_crash_hook(None);
    db.execute("INSERT INTO users (name) VALUES ('mel')")
        .unwrap();
    let (back, _) = Database::open_durable(None, &wal_path).unwrap();
    assert_eq!(
        back.execute("SELECT COUNT(*) FROM users")
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(2)
    );
}

#[test]
fn concurrent_checkpoints_never_lose_acknowledged_commits() {
    // The database is Arc-shared: one thread commits acknowledged inserts
    // while another checkpoints in a loop. Every acknowledged commit must
    // be in the final snapshot or the WAL tail — a commit landing between
    // snapshot encode and log truncation must not fall through the gap.
    use std::sync::atomic::{AtomicBool, Ordering};

    let dir = TempDir::new("ckpt_race");
    let wal_path = dir.path("db.wal");
    let snap_path = dir.path("db.edna");
    const N: usize = 200;
    {
        let (db, _) = Database::open_durable(None, &wal_path).unwrap();
        seed_schema(&db);
        let done = Arc::new(AtomicBool::new(false));
        let writer = {
            let db = db.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                for i in 0..N {
                    db.execute(&format!("INSERT INTO users (name) VALUES ('u{i}')"))
                        .unwrap();
                }
                done.store(true, Ordering::SeqCst);
            })
        };
        while !done.load(Ordering::SeqCst) {
            db.save(&snap_path).unwrap();
        }
        writer.join().unwrap();
        // Crash: drop without a final save — unreplayed commits must be
        // sitting in the WAL tail, not erased by an earlier checkpoint.
    }
    let (back, _) = Database::open_durable(Some(&snap_path), &wal_path).unwrap();
    assert_eq!(back.verify_integrity(), Vec::<String>::new());
    assert_eq!(
        back.execute("SELECT COUNT(*) FROM users")
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(N as i64),
        "every acknowledged commit survives checkpoint + crash"
    );
}

#[test]
fn open_disguise_intent_survives_checkpoint() {
    // An intent marker with no commit marker guards vault-side state that
    // lives outside the snapshot; checkpoint truncation must carry it into
    // the fresh log so the next recovery still resolves it.
    let dir = TempDir::new("intent_ckpt");
    let wal_path = dir.path("db.wal");
    let snap_path = dir.path("db.edna");
    {
        let (db, _) = Database::open_durable(None, &wal_path).unwrap();
        seed_schema(&db);
        db.wal_disguise_intent(5, &Value::Int(1)).unwrap();
        db.save(&snap_path).unwrap();
        assert!(
            db.wal().unwrap().size_bytes() > 0,
            "the open intent must survive truncation"
        );
        // Crash with the disguise still half-applied.
    }
    let (_, report) = Database::open_durable(Some(&snap_path), &wal_path).unwrap();
    assert_eq!(report.open_intents.len(), 1);
    assert_eq!(report.open_intents[0].disguise_id, 5);
    assert_eq!(report.open_intents[0].user, Value::Int(1));
}

#[test]
fn solo_commit_fsyncs_immediately_through_group_pipeline() {
    // Group commit must not weaken the solo-committer contract: with no
    // co-committers, every acknowledged auto-commit is one immediate
    // write+fsync (no deferral window a crash could exploit).
    let dir = TempDir::new("solo_fsync");
    let (db, _) = Database::open_durable(None, &dir.path("db.wal")).unwrap();
    seed_schema(&db);
    db.wal().unwrap().set_group_commit(WalGroupConfig {
        max_frames: 64,
        max_delay: std::time::Duration::ZERO,
        fsync_floor: std::time::Duration::ZERO,
    });
    let fsyncs = db.metrics().counter("edna_wal_fsyncs_total", "").get();
    db.execute("INSERT INTO users (name) VALUES ('bea')")
        .unwrap();
    assert_eq!(
        db.metrics().counter("edna_wal_fsyncs_total", "").get(),
        fsyncs + 1,
        "a solo auto-commit is exactly one fsync"
    );
    db.execute("UPDATE users SET name = 'bee' WHERE id = 1")
        .unwrap();
    assert_eq!(
        db.metrics().counter("edna_wal_fsyncs_total", "").get(),
        fsyncs + 2,
        "each further solo commit fsyncs again"
    );
}

#[test]
fn group_commit_kill_sweep_with_concurrent_committers() {
    // Extend the every-frame kill sweep to the multi-threaded pipeline:
    // N committers push acknowledged inserts through group commit (an
    // fsync floor keeps flushes slow enough that real multi-frame batches
    // form) while the k-th WAL frame crashes in each style. Invariant:
    // an insert whose statement returned Ok was acknowledged durable, so
    // it must be present after recovery — no matter which frame of which
    // batch died.
    use std::sync::Mutex;

    const THREADS: usize = 4;
    const PER_THREAD: usize = 6;
    let dir = TempDir::new("group_sweep");

    let run = |wal_path: &PathBuf,
               hook: Option<edna_relational::WalCrashHook>|
     -> (Vec<String>, u64) {
        let (db, _) = Database::open_durable(None, wal_path).unwrap();
        seed_schema(&db);
        let wal = db.wal().unwrap();
        wal.set_group_commit(WalGroupConfig {
            max_frames: 8,
            max_delay: std::time::Duration::ZERO,
            fsync_floor: std::time::Duration::from_micros(100),
        });
        wal.set_crash_hook(hook);
        let acked = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let db = db.clone();
                let acked = &acked;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let name = format!("t{t}_{i}");
                        match db.execute(&format!("INSERT INTO users (name) VALUES ('{name}')")) {
                            Ok(_) => acked.lock().unwrap().push(name),
                            // The injected crash poisons the log; this
                            // committer is dead from here on.
                            Err(_) => break,
                        }
                    }
                });
            }
        });
        let frames = wal.crash_frame_count();
        (acked.into_inner().unwrap(), frames)
    };

    // Bound the sweep with a never-firing hook.
    let (all, frames) = run(&dir.path("count.wal"), Some(Arc::new(|_| None)));
    assert_eq!(all.len(), THREADS * PER_THREAD);
    assert_eq!(frames, (THREADS * PER_THREAD) as u64);

    for style in [
        WalCrash::BeforeWrite,
        WalCrash::TornWrite,
        WalCrash::AfterWrite,
    ] {
        for k in 0..frames {
            let wal_path = dir.path(&format!("group_{style:?}_{k}.wal"));
            let (acked, _) = run(
                &wal_path,
                Some(Arc::new(move |i| (i == k).then_some(style))),
            );
            assert!(
                acked.len() < THREADS * PER_THREAD,
                "style {style:?} frame {k}: the crash must kill at least one commit"
            );
            let (back, report) = Database::open_durable(None, &wal_path).unwrap();
            assert_eq!(
                back.verify_integrity(),
                Vec::<String>::new(),
                "style {style:?} frame {k}"
            );
            assert!(report.open_intents.is_empty());
            let recovered: std::collections::HashSet<String> = back
                .execute("SELECT name FROM users")
                .unwrap()
                .rows
                .into_iter()
                .map(|r| match &r[0] {
                    Value::Text(s) => s.clone(),
                    other => panic!("unexpected name {other:?}"),
                })
                .collect();
            for name in &acked {
                assert!(
                    recovered.contains(name),
                    "style {style:?} frame {k}: acknowledged insert '{name}' lost \
                     (recovered {} of {} acked)",
                    recovered.len(),
                    acked.len(),
                );
            }
            // BeforeWrite restores the durable boundary, losing the whole
            // crashed batch: nothing unacknowledged may survive. (Torn and
            // after-write crashes may leave unsynced-but-lingering frames
            // of the crashed batch on disk even though their committers
            // saw an error — durable-but-unacked is allowed,
            // lost-but-acked never is.)
            if style == WalCrash::BeforeWrite {
                assert_eq!(
                    recovered.len(),
                    acked.len(),
                    "style {style:?} frame {k}: an unacknowledged insert survived"
                );
            }
        }
    }
}

#[test]
fn crash_at_every_wal_frame_recovers_consistently() {
    // Sweep: crash the k-th WAL append in each of the three styles; after
    // each crash, recovery must yield a database where every committed
    // frame's effects are present, FK structure intact.
    let dir = TempDir::new("sweep");
    // Count the workload's frames with a never-firing hook.
    let workload = |db: &Database| -> edna_relational::Result<()> {
        db.execute("INSERT INTO users (name) VALUES ('bea'), ('mel')")?;
        db.execute("INSERT INTO posts (user_id, body) VALUES (1, 'a'), (2, 'b')")?;
        db.execute("UPDATE users SET name = 'bee' WHERE id = 1")?;
        db.execute("DELETE FROM posts WHERE id = 2")?;
        Ok(())
    };
    let frames = {
        let wal_path = dir.path("count.wal");
        let (db, _) = Database::open_durable(None, &wal_path).unwrap();
        seed_schema(&db);
        let wal = db.wal().unwrap();
        wal.set_crash_hook(Some(Arc::new(|_| None)));
        workload(&db).unwrap();
        wal.crash_frame_count()
    };
    assert!(
        frames >= 4,
        "expected one frame per statement, got {frames}"
    );
    for style in [
        WalCrash::BeforeWrite,
        WalCrash::TornWrite,
        WalCrash::AfterWrite,
    ] {
        for k in 0..frames {
            let wal_path = dir.path(&format!("sweep_{style:?}_{k}.wal"));
            {
                let (db, _) = Database::open_durable(None, &wal_path).unwrap();
                seed_schema(&db);
                let wal = db.wal().unwrap();
                wal.set_crash_hook(Some(Arc::new(move |i| (i == k).then_some(style))));
                let err = workload(&db);
                assert!(err.is_err(), "hook at frame {k} must fire");
            }
            let (back, report) = Database::open_durable(None, &wal_path).unwrap();
            assert_eq!(
                back.verify_integrity(),
                Vec::<String>::new(),
                "style {style:?} frame {k}"
            );
            // Durability floor: everything before the crashed frame
            // survived. (AfterWrite also persists the crashed frame.)
            let expected_frames = report.frames_scanned;
            let min_expected = k as usize + usize::from(style == WalCrash::AfterWrite);
            assert!(
                expected_frames >= min_expected,
                "style {style:?} frame {k}: {expected_frames} < {min_expected}"
            );
        }
    }
}
