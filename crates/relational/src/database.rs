//! The public database handle.
//!
//! [`Database`] is cheaply cloneable (`Arc` inside) and thread-safe: all
//! state sits behind a [`std::sync::RwLock`] — reads (SELECTs and typed
//! row reads) share the lock and run concurrently, while writes and
//! transactions take it exclusively (single-writer semantics, as the
//! paper's prototype applies each disguise in one large SQL transaction).
//! Statistics are atomic, and repeated SQL shapes skip the parser via a
//! per-database statement cache.
//!
//! Locks recover from poisoning: a panic inside one statement (e.g. from
//! a user callback in [`Database::update_with`]) must not wedge the
//! engine for every later caller. Poisoned plain-data locks (caches,
//! latency model) are simply re-entered; the engine-state lock
//! additionally rolls back any implicit transaction the panic abandoned,
//! so no half-applied statement becomes visible.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use std::sync::{Mutex, RwLock};

use edna_obs::{Histogram, MetricsRegistry, Tracer, DEFAULT_LATENCY_BUCKETS_US};
use edna_util::sync::{lock_unpoisoned, read_unpoisoned, write_unpoisoned};

use crate::access::AccessPath;
use crate::error::{Error, Result};
use crate::exec::{Inner, QueryResult};
use crate::expr::Expr;
use crate::parser::{parse_script, parse_statement, Statement};
use crate::schema::TableSchema;
use crate::stats::{LatencyModel, Stats, StatsSnapshot};
use crate::txn::Txn;
use crate::value::{Row, Value};
use crate::wal::{self, OpenIntent, RecoveryReport, ReplayOutcome, Wal, WalRecord};

/// An in-process relational database.
///
/// # Examples
///
/// ```
/// use edna_relational::Database;
///
/// let db = Database::new();
/// db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)").unwrap();
/// db.execute("INSERT INTO t (name) VALUES ('bea'), ('axolotl')").unwrap();
/// let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
/// assert_eq!(r.scalar().unwrap().as_int().unwrap(), 2);
/// ```
#[derive(Clone)]
pub struct Database {
    inner: Arc<RwLock<Inner>>,
    stats: Arc<Stats>,
    latency: Arc<RwLock<LatencyModel>>,
    fault: Arc<FaultState>,
    stmt_cache: Arc<Mutex<StmtCache>>,
    obs: Arc<DbObs>,
    wal: Arc<RwLock<Option<Arc<Wal>>>>,
    /// Transactions whose redo frame is staged in the WAL's group-commit
    /// pipeline but not yet durable, keyed by LSN. Their effects are
    /// already visible; if the batch flush fails, the WAL's abort handler
    /// pulls them from here and rolls them back before any committer
    /// observes the failure.
    pending_txns: Arc<Mutex<HashMap<u64, Txn>>>,
}

/// One entry of the slow-statement log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowStatement {
    /// The SQL text (typed-API statements log their operation name).
    pub sql: String,
    /// Wall-clock execution time, microseconds.
    pub micros: u64,
}

/// Entries the slow-statement log retains (oldest evicted first).
const SLOW_LOG_CAP: usize = 128;

/// Per-database observability state: optional tracer, statement latency
/// histogram, and the slow-statement log.
struct DbObs {
    tracer: RwLock<Option<Tracer>>,
    stmt_seconds: Arc<Histogram>,
    slow_threshold: RwLock<Option<Duration>>,
    slow_log: Mutex<VecDeque<SlowStatement>>,
    slow_total: Arc<edna_obs::Counter>,
}

impl DbObs {
    fn new(registry: &MetricsRegistry) -> DbObs {
        DbObs {
            tracer: RwLock::new(None),
            stmt_seconds: registry.histogram(
                "edna_statement_seconds",
                "In-engine statement execution latency.",
                DEFAULT_LATENCY_BUCKETS_US,
            ),
            slow_threshold: RwLock::new(None),
            slow_log: Mutex::new(VecDeque::new()),
            slow_total: registry.counter(
                "edna_slow_statements_total",
                "Statements exceeding the slow-statement threshold.",
            ),
        }
    }
}

/// SQL texts the statement cache holds before evicting least-recently-used
/// entries. A disguise workload repeats a handful of shapes; 256 leaves
/// generous headroom without letting ad-hoc SQL grow the cache unboundedly.
const STMT_CACHE_CAP: usize = 256;

/// An LRU cache of parsed statements, keyed by exact SQL text.
#[derive(Default)]
struct StmtCache {
    map: HashMap<String, CachedStmt>,
    tick: u64,
}

struct CachedStmt {
    stmt: Arc<Statement>,
    last_used: u64,
}

impl StmtCache {
    fn get(&mut self, sql: &str) -> Option<Arc<Statement>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(sql).map(|c| {
            c.last_used = tick;
            Arc::clone(&c.stmt)
        })
    }

    fn insert(&mut self, sql: String, stmt: Arc<Statement>) {
        if self.map.len() >= STMT_CACHE_CAP {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, c)| c.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
            }
        }
        self.tick += 1;
        self.map.insert(
            sql,
            CachedStmt {
                stmt,
                last_used: self.tick,
            },
        );
    }
}

/// A statement-level fault hook: called with the 0-based index of each
/// statement executed since the hook was installed; returning `true`
/// kills that statement with [`Error::FaultInjected`] *before* it runs.
///
/// This is the engine-side half of the fault-injection harness: tests
/// sweep the hook across every statement index of a workload to prove
/// that a fault at any point leaves the database unchanged (the disguiser
/// rolls its transaction back).
pub type FaultHook = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// Shared fault-injection state (statement counter + optional hook).
#[derive(Default)]
struct FaultState {
    hook: RwLock<Option<FaultHook>>,
    seq: AtomicU64,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        let stats = Arc::new(Stats::default());
        let obs = Arc::new(DbObs::new(&stats.registry()));
        Database {
            inner: Arc::new(RwLock::new(Inner::new())),
            stats,
            latency: Arc::new(RwLock::new(LatencyModel::NONE)),
            fault: Arc::new(FaultState::default()),
            stmt_cache: Arc::new(Mutex::new(StmtCache::default())),
            obs,
            wal: Arc::new(RwLock::new(None)),
            pending_txns: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    // ---- engine lock (poison-tolerant) -------------------------------------

    /// Read-locks the engine state, recovering from poisoning first.
    fn inner_read(&self) -> RwLockReadGuard<'_, Inner> {
        if self.inner.is_poisoned() {
            self.repair_poisoned();
        }
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write-locks the engine state, recovering from poisoning first.
    fn inner_write(&self) -> RwLockWriteGuard<'_, Inner> {
        if self.inner.is_poisoned() {
            self.repair_poisoned();
        }
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// A panic while the engine lock was held poisons it; the panicking
    /// statement may have died mid-write. Its implicit transaction (if
    /// any) still holds the undo log, so replay it before letting any
    /// later statement see the state. An *explicit* transaction is left
    /// open — its owner decides between COMMIT and ROLLBACK, and its undo
    /// log still covers the partial statement either way.
    fn repair_poisoned(&self) {
        let mut guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        if guard.txn.as_ref().is_some_and(|t| t.implicit) {
            let txn = guard.txn.take().expect("checked above");
            guard.rollback(txn);
        }
        self.inner.clear_poison();
    }

    // ---- fault injection ---------------------------------------------------

    /// Installs (or with `None` removes) a statement-level fault hook,
    /// resetting the statement index to 0. The hook is consulted once per
    /// statement — SQL and typed API alike — *before* execution; explicit
    /// [`Database::begin`]/[`Database::commit`]/[`Database::rollback`]
    /// calls are exempt so recovery paths cannot themselves be killed.
    pub fn set_fault_hook(&self, hook: Option<FaultHook>) {
        *write_unpoisoned(&self.fault.hook) = hook;
        self.fault.seq.store(0, Ordering::SeqCst);
    }

    /// Convenience: fail exactly the `n`th statement from now (0-based).
    pub fn fail_statement(&self, n: u64) {
        self.set_fault_hook(Some(Arc::new(move |i| i == n)));
    }

    /// Statements the installed hook has seen. With a never-firing hook
    /// (`|_| false`) this counts a workload's statements, giving the
    /// sweep bound for exhaustive fault injection.
    pub fn fault_statement_count(&self) -> u64 {
        self.fault.seq.load(Ordering::SeqCst)
    }

    /// Consults the fault hook, if any; charges one statement index.
    fn failpoint(&self) -> Result<()> {
        let hook = read_unpoisoned(&self.fault.hook);
        if let Some(h) = hook.as_ref() {
            let index = self.fault.seq.fetch_add(1, Ordering::SeqCst);
            if h(index) {
                return Err(Error::FaultInjected(index));
            }
        }
        Ok(())
    }

    // ---- SQL execution ----------------------------------------------------

    /// Parses and executes one SQL statement without parameters.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_with_params(sql, &HashMap::new())
    }

    /// Parses and executes one SQL statement with bound `$param`s. Repeat
    /// SQL texts skip the parser via the statement cache. `EXPLAIN ANALYZE
    /// <select>` is intercepted here and routed to the query profiler.
    pub fn execute_with_params(
        &self,
        sql: &str,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        if let Some(rest) = strip_explain_analyze(sql) {
            return self.explain_analyze(rest, params);
        }
        let started = Instant::now();
        let tracer = self.tracer();
        let hits_before = self.stats.stmt_cache_hits.get();
        let stmt = self.cached_statement(sql)?;
        if let Some(t) = &tracer {
            let cache = if self.stats.stmt_cache_hits.get() > hits_before {
                "hit"
            } else {
                "miss"
            };
            t.record(
                t.current(),
                "parse",
                started,
                started.elapsed(),
                vec![
                    ("sql".to_string(), truncate_sql(sql)),
                    ("cache".to_string(), cache.to_string()),
                ],
            );
        }
        let result = self.execute_stmt(&stmt, params);
        self.note_slow(sql, started.elapsed());
        result
    }

    /// The parsed form of `sql`, served from the statement cache when the
    /// exact text was executed before. Parsing happens outside the cache
    /// lock; a racing parse of the same text is wasted work, not an error.
    pub fn cached_statement(&self, sql: &str) -> Result<Arc<Statement>> {
        if let Some(stmt) = lock_unpoisoned(&self.stmt_cache).get(sql) {
            self.stats.bump(&self.stats.stmt_cache_hits, 1);
            return Ok(stmt);
        }
        self.stats.bump(&self.stats.stmt_cache_misses, 1);
        let stmt = Arc::new(parse_statement(sql)?);
        lock_unpoisoned(&self.stmt_cache).insert(sql.to_string(), Arc::clone(&stmt));
        Ok(stmt)
    }

    /// Executes a pre-parsed statement. SELECTs run under the shared (read)
    /// lock and so proceed concurrently; everything else serializes behind
    /// the write lock.
    pub fn execute_stmt(
        &self,
        stmt: &Statement,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        self.failpoint()?;
        match stmt {
            Statement::Begin => {
                self.begin()?;
                return Ok(QueryResult::default());
            }
            Statement::Commit => {
                self.commit()?;
                return Ok(QueryResult::default());
            }
            Statement::Rollback => {
                self.rollback()?;
                return Ok(QueryResult::default());
            }
            Statement::Select(sel) => {
                let started = Instant::now();
                let (result, lock_wait) = {
                    let inner = self.inner_read();
                    let lock_wait = started.elapsed();
                    self.stats.bump(&self.stats.statements, 1);
                    self.stats.bump(&self.stats.selects, 1);
                    (inner.select(sel, params, &self.stats), lock_wait)
                };
                let latency = *read_unpoisoned(&self.latency);
                latency.charge(0);
                self.note_statement("select", started, lock_wait);
                return result;
            }
            _ => {}
        }
        let is_ddl = matches!(
            stmt,
            Statement::CreateTable(_)
                | Statement::CreateIndex { .. }
                | Statement::DropTable { .. }
                | Statement::AlterTable { .. }
        );
        let op = match stmt {
            Statement::Insert { .. } => "insert",
            Statement::Update { .. } => "update",
            Statement::Delete { .. } => "delete",
            _ if is_ddl => "ddl",
            _ => "other",
        };
        let result = self.run_in_txn(op, |inner| inner.execute_stmt(stmt, params, &self.stats));
        if is_ddl && result.is_ok() {
            // Schema changed: drop cached parses so nothing stale survives
            // (the executor's plan cache is invalidated engine-side).
            lock_unpoisoned(&self.stmt_cache).map.clear();
        }
        result
    }

    /// Executes a `;`-separated script, stopping at the first error (any
    /// open explicit transaction is left open, mirroring SQL CLIs).
    pub fn execute_script(&self, sql: &str) -> Result<Vec<QueryResult>> {
        let stmts = parse_script(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute_stmt(stmt, &HashMap::new())?);
        }
        Ok(out)
    }

    /// Runs `f` inside the open transaction, or an implicit per-statement
    /// transaction if none is open (rolled back on error). The engine lock
    /// is released before any synthetic latency is charged, so concurrent
    /// callers overlap their simulated I/O. `op` labels the statement in
    /// traces and the latency histogram.
    fn run_in_txn<T>(&self, op: &str, f: impl FnOnce(&mut Inner) -> Result<T>) -> Result<T> {
        let written_before = self.stats.snapshot().rows_written;
        let started = Instant::now();
        let mut guard = self.inner_write();
        let lock_wait = started.elapsed();
        let inner = &mut *guard;
        let mut ticket = None;
        let result = if inner.txn.is_some() {
            let mark = inner.txn.as_ref().expect("checked").mark();
            match f(inner) {
                Ok(v) => Ok(v),
                Err(e) => {
                    // Statement-level rollback within the explicit txn.
                    let txn = inner.txn.take().expect("still open");
                    let txn = inner.rollback_to(txn, mark);
                    inner.txn = Some(txn);
                    Err(e)
                }
            }
        } else {
            inner.txn = Some(Txn::implicit());
            match f(inner) {
                Ok(v) => {
                    let txn = inner.txn.take().expect("installed above");
                    // Stage the redo frame while the lock still excludes
                    // other writers (the LSN order must match commit
                    // order); the durability wait happens after release
                    // so concurrent committers share one batch fsync.
                    match self.wal_stage_commit(inner, txn) {
                        Ok(t) => {
                            ticket = t;
                            Ok(v)
                        }
                        Err(e) => Err(e),
                    }
                }
                Err(e) => {
                    let txn = inner.txn.take().expect("installed above");
                    inner.rollback(txn);
                    Err(e)
                }
            }
        };
        drop(guard);
        let result = match (result, ticket) {
            (Ok(v), Some(t)) => self.wal_wait_commit(t).map(|()| v),
            (result, _) => result,
        };
        let latency = *read_unpoisoned(&self.latency);
        if !latency.is_none() {
            let written_after = self.stats.snapshot().rows_written;
            latency.charge(written_after.saturating_sub(written_before));
        }
        self.note_statement(op, started, lock_wait);
        result
    }

    /// Observes one finished statement: feeds the latency histogram and,
    /// when a tracer is installed, emits a `statement` span with
    /// `lock_wait`/`execute` children.
    fn note_statement(&self, op: &str, started: Instant, lock_wait: Duration) {
        let elapsed = started.elapsed();
        self.obs.stmt_seconds.observe(elapsed);
        if let Some(t) = self.tracer() {
            let id = t.record(
                t.current(),
                "statement",
                started,
                elapsed,
                vec![("op".to_string(), op.to_string())],
            );
            t.record(Some(id), "lock_wait", started, lock_wait, Vec::new());
            t.record(
                Some(id),
                "execute",
                started + lock_wait,
                elapsed.saturating_sub(lock_wait),
                Vec::new(),
            );
        }
    }

    /// Appends to the slow-statement log if `elapsed` crosses the
    /// configured threshold.
    fn note_slow(&self, sql: &str, elapsed: Duration) {
        let Some(threshold) = *read_unpoisoned(&self.obs.slow_threshold) else {
            return;
        };
        if elapsed < threshold {
            return;
        }
        self.obs.slow_total.inc();
        let mut log = lock_unpoisoned(&self.obs.slow_log);
        if log.len() == SLOW_LOG_CAP {
            log.pop_front();
        }
        log.push_back(SlowStatement {
            sql: sql.to_string(),
            micros: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
        });
    }

    // ---- transactions ------------------------------------------------------

    /// Opens an explicit transaction; errors if one is already open.
    pub fn begin(&self) -> Result<()> {
        let mut inner = self.inner_write();
        if inner.txn.is_some() {
            return Err(Error::Txn("transaction already open".to_string()));
        }
        inner.txn = Some(Txn::explicit());
        Ok(())
    }

    /// Commits the open transaction; errors if none is open. With a WAL
    /// attached the transaction's redo frame is durable (via the
    /// group-commit pipeline) before this returns; if logging fails the
    /// transaction is rolled back instead — nothing stays visible that is
    /// not also durable.
    pub fn commit(&self) -> Result<()> {
        let mut inner = self.inner_write();
        let ticket = match inner.txn.take() {
            Some(txn) => self.wal_stage_commit(&mut inner, txn)?,
            None => return Err(Error::Txn("COMMIT without BEGIN".to_string())),
        };
        drop(inner);
        match ticket {
            Some(t) => self.wal_wait_commit(t),
            None => Ok(()),
        }
    }

    /// Rolls back the open transaction; errors if none is open.
    pub fn rollback(&self) -> Result<()> {
        let mut inner = self.inner_write();
        match inner.txn.take() {
            Some(txn) => {
                inner.rollback(txn);
                Ok(())
            }
            None => Err(Error::Txn("ROLLBACK without BEGIN".to_string())),
        }
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.inner_read().txn.as_ref().is_some_and(|t| !t.implicit)
    }

    /// Runs `f` inside a fresh explicit transaction, committing on `Ok` and
    /// rolling back on `Err`.
    pub fn transaction<T>(&self, f: impl FnOnce(&Database) -> Result<T>) -> Result<T> {
        self.begin()?;
        match f(self) {
            Ok(v) => {
                self.commit()?;
                Ok(v)
            }
            Err(e) => {
                // Rollback can only fail if the txn vanished; prefer the
                // original error either way.
                let _ = self.rollback();
                Err(e)
            }
        }
    }

    // ---- write-ahead log and recovery --------------------------------------

    /// Attaches a write-ahead log: from now on every committed transaction
    /// gets a durable redo frame (via the group-commit pipeline) before
    /// its commit returns, and [`Database::save`] becomes a checkpoint
    /// (snapshot + log truncation). The log's counters are bound into
    /// this database's metrics registry, and its abort handler is wired
    /// to roll back transactions whose batch flush fails.
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        wal.bind_metrics(&self.stats.registry());
        let inner = Arc::clone(&self.inner);
        let pending = Arc::clone(&self.pending_txns);
        wal.set_abort_handler(Some(Arc::new(move |lsns: &[u64]| {
            let mut victims: Vec<(u64, Txn)> = {
                let mut p = lock_unpoisoned(&pending);
                lsns.iter()
                    .filter_map(|lsn| p.remove(lsn).map(|txn| (*lsn, txn)))
                    .collect()
            };
            if victims.is_empty() {
                // Only marker frames died; nothing visible to undo (and
                // skipping the engine lock here keeps a checkpoint that
                // holds a read guard from deadlocking against us).
                return;
            }
            // Two failed transactions can touch the same row slot; undo
            // in reverse commit order so each rollback sees the state its
            // undo log expects.
            victims.sort_by_key(|v| std::cmp::Reverse(v.0));
            let mut guard = inner.write().unwrap_or_else(PoisonError::into_inner);
            for (_, txn) in victims {
                guard.rollback(txn);
            }
        })));
        *write_unpoisoned(&self.wal) = Some(wal);
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<Arc<Wal>> {
        read_unpoisoned(&self.wal).clone()
    }

    /// The last LSN the attached WAL assigned (0 with no WAL or an empty
    /// one). Snapshots record this as their checkpoint watermark.
    pub fn wal_last_lsn(&self) -> u64 {
        self.wal().map(|w| w.last_lsn()).unwrap_or(0)
    }

    /// Stages a committing transaction's redo frame in the WAL's
    /// group-commit pipeline (no-op without a WAL or for a read-only
    /// transaction), returning the ticket to wait on *after* the engine
    /// lock is released. Called with the transaction already taken out of
    /// `inner`, so the live state *is* the post-commit state the redo
    /// conversion resolves after-images against. On staging failure the
    /// transaction is rolled back here (not staged ⇒ not logged ⇒ not
    /// committed); once staged, the transaction is parked in
    /// `pending_txns` so a failed batch flush can roll it back.
    fn wal_stage_commit(&self, inner: &mut Inner, txn: Txn) -> Result<Option<wal::WalTicket>> {
        let Some(w) = self.wal() else { return Ok(None) };
        if txn.undo.is_empty() {
            return Ok(None);
        }
        let staged =
            wal::redo_from_txn(inner, &txn).and_then(|ops| w.stage(&WalRecord::Txn { ops }));
        match staged {
            Ok(ticket) => {
                lock_unpoisoned(&self.pending_txns).insert(ticket.lsn, txn);
                Ok(Some(ticket))
            }
            Err(e) => {
                inner.rollback(txn);
                Err(e)
            }
        }
    }

    /// Blocks until a staged commit's batch is durable, then retires its
    /// `pending_txns` entry. On batch failure the WAL's abort handler has
    /// already rolled the transaction back (it runs before any waiter is
    /// released), so only the error needs propagating.
    fn wal_wait_commit(&self, ticket: wal::WalTicket) -> Result<()> {
        let Some(w) = self.wal() else {
            return Err(Error::Wal("WAL detached mid-commit".to_string()));
        };
        match w.wait_durable(ticket) {
            Ok(lsn) => {
                lock_unpoisoned(&self.pending_txns).remove(&lsn);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Appends a disguise *intent* marker: disguise `disguise_id` for
    /// `user` is about to write vault-side state. No-op without a WAL.
    pub fn wal_disguise_intent(&self, disguise_id: u64, user: &Value) -> Result<()> {
        if let Some(w) = self.wal() {
            w.append(&WalRecord::DisguiseIntent {
                disguise_id,
                user: user.clone(),
            })?;
        }
        Ok(())
    }

    /// Appends a disguise *commit* marker: disguise `disguise_id` fully
    /// applied; database, history, and vault agree. No-op without a WAL.
    pub fn wal_disguise_commit(&self, disguise_id: u64) -> Result<()> {
        if let Some(w) = self.wal() {
            w.append(&WalRecord::DisguiseCommit { disguise_id })?;
        }
        Ok(())
    }

    /// Appends a policy-run *start* marker: the scheduler is about to run
    /// `policy` at logical time `now`. No-op without a WAL.
    pub fn wal_policy_start(&self, policy: &str, now: i64) -> Result<()> {
        if let Some(w) = self.wal() {
            w.append(&WalRecord::PolicyRunStart {
                policy: policy.to_string(),
                now,
            })?;
        }
        Ok(())
    }

    /// Appends a policy-run *end* marker matching the start marker for
    /// `policy`. No-op without a WAL.
    pub fn wal_policy_end(&self, policy: &str) -> Result<()> {
        if let Some(w) = self.wal() {
            w.append(&WalRecord::PolicyRunEnd {
                policy: policy.to_string(),
            })?;
        }
        Ok(())
    }

    /// Replays scanned WAL records over this database. Txn frames with
    /// `lsn > watermark` are applied physically (no transaction, no
    /// constraint re-checks — they describe committed state); frames at or
    /// below the watermark are already contained in the snapshot and are
    /// skipped. Intent/commit markers are matched across the *whole* log
    /// regardless of watermark, since the vault state they guard lives
    /// outside the snapshot.
    pub fn replay_wal(
        &self,
        records: &[(u64, WalRecord)],
        watermark: u64,
    ) -> Result<ReplayOutcome> {
        let mut inner = self.inner_write();
        if inner.txn.is_some() {
            return Err(Error::Wal(
                "cannot replay into a database with an open transaction".to_string(),
            ));
        }
        let mut frames_replayed = 0;
        let mut intents: Vec<OpenIntent> = Vec::new();
        let mut policy_runs: Vec<wal::OpenPolicyRun> = Vec::new();
        for (lsn, record) in records {
            match record {
                WalRecord::Txn { ops } => {
                    if *lsn > watermark {
                        for op in ops {
                            wal::apply_op(&mut inner, op)?;
                        }
                        frames_replayed += 1;
                    }
                }
                WalRecord::DisguiseIntent { disguise_id, user } => {
                    intents.push(OpenIntent {
                        lsn: *lsn,
                        disguise_id: *disguise_id,
                        user: user.clone(),
                    });
                }
                WalRecord::DisguiseCommit { disguise_id } => {
                    intents.retain(|i| i.disguise_id != *disguise_id);
                }
                WalRecord::PolicyRunStart { policy, now } => {
                    policy_runs.push(wal::OpenPolicyRun {
                        lsn: *lsn,
                        policy: policy.clone(),
                        now: *now,
                    });
                }
                WalRecord::PolicyRunEnd { policy } => {
                    policy_runs.retain(|r| r.policy != *policy);
                }
                // The epoch lives in the `Wal` (re-derived by its own
                // open-time scan); replay has nothing to apply.
                WalRecord::Epoch { .. } => {}
            }
        }
        inner.invalidate_plans();
        drop(inner);
        lock_unpoisoned(&self.stmt_cache).map.clear();
        Ok(ReplayOutcome {
            frames_replayed,
            open_intents: intents,
            open_policy_runs: policy_runs,
        })
    }

    /// Applies one shipped WAL record to the live state (a replica's
    /// continuous replay). `Txn` frames are applied physically, exactly
    /// like [`Database::replay_wal`] — they describe a transaction the
    /// primary already committed; marker and epoch frames are no-ops here
    /// (the replica's `Wal` tracks them via `append_shipped`).
    pub fn apply_shipped(&self, record: &WalRecord) -> Result<()> {
        let WalRecord::Txn { ops } = record else {
            return Ok(());
        };
        let mut inner = self.inner_write();
        if inner.txn.is_some() {
            return Err(Error::Wal(
                "cannot apply shipped frame with an open transaction".to_string(),
            ));
        }
        for op in ops {
            wal::apply_op(&mut inner, op)?;
        }
        if ops.iter().any(|op| {
            matches!(
                op,
                wal::RedoOp::CreateTable { .. }
                    | wal::RedoOp::DropTable { .. }
                    | wal::RedoOp::AlterTable { .. }
                    | wal::RedoOp::CreateIndex { .. }
            )
        }) {
            inner.invalidate_plans();
            drop(inner);
            lock_unpoisoned(&self.stmt_cache).map.clear();
        }
        Ok(())
    }

    /// Opens a durable database: loads the snapshot (an empty database if
    /// `snapshot` is `None`), opens the WAL at `wal_path` (truncating any
    /// torn tail), replays the log's tail over the snapshot, and attaches
    /// the log for future commits. The report says what recovery did;
    /// `report.open_intents` must be resolved by the disguise layer before
    /// the vault is trusted.
    pub fn open_durable(
        snapshot: Option<&std::path::Path>,
        wal_path: &std::path::Path,
    ) -> Result<(Database, RecoveryReport)> {
        let started = Instant::now();
        let (db, watermark) = match snapshot {
            Some(p) => crate::snapshot::load_with_watermark(p)?,
            None => (Database::new(), 0),
        };
        let (wal, scan) = Wal::open(wal_path)?;
        let outcome = db.replay_wal(&scan.records, watermark)?;
        let last_lsn = scan
            .records
            .last()
            .map(|(lsn, _)| *lsn)
            .unwrap_or(watermark)
            .max(watermark);
        // The file alone under-counts after a checkpoint truncated it;
        // new frames must sort after everything the snapshot absorbed.
        wal.ensure_next_lsn(last_lsn + 1);
        db.attach_wal(Arc::new(wal));
        let report = RecoveryReport {
            frames_scanned: scan.records.len(),
            frames_replayed: outcome.frames_replayed,
            torn_bytes: scan.torn_bytes,
            snapshot_watermark: watermark,
            last_lsn,
            open_intents: outcome.open_intents,
            open_policy_runs: outcome.open_policy_runs,
            snapshot_promoted: false,
            duration: started.elapsed(),
        };
        let registry = db.metrics();
        registry
            .counter(
                "edna_wal_replayed_frames_total",
                "WAL frames replayed during recovery.",
            )
            .add(report.frames_replayed as u64);
        registry
            .counter(
                "edna_wal_torn_bytes_total",
                "Torn-tail bytes truncated off the WAL during recovery.",
            )
            .add(report.torn_bytes as u64);
        registry
            .gauge(
                "edna_recovery_duration_us",
                "Wall-clock microseconds the last recovery pass took.",
            )
            .set(report.duration.as_micros().min(u128::from(u64::MAX) / 2) as i64);
        Ok((db, report))
    }

    /// Self-checks structural invariants after recovery: foreign keys
    /// resolve, UNIQUE/PRIMARY KEY columns hold no duplicates, and
    /// AUTO_INCREMENT counters sit above every assigned id. Returns one
    /// human-readable line per violation (empty = consistent). The crash
    /// sweep calls this after every recovery; it is cheap enough to run
    /// unconditionally on open.
    pub fn verify_integrity(&self) -> Vec<String> {
        let inner = self.inner_read();
        let mut problems = Vec::new();
        for key in &inner.table_order {
            let t = &inner.tables[key];
            let name = &t.schema.name;
            // Foreign keys: every non-NULL child value has a parent.
            for fk in &t.schema.foreign_keys {
                let Ok(child_col) = t.schema.require_column(&fk.column) else {
                    problems.push(format!("{name}: FK column {} missing", fk.column));
                    continue;
                };
                let Some(parent) = inner.tables.get(&fk.parent_table.to_lowercase()) else {
                    problems.push(format!(
                        "{name}: FK parent table {} missing",
                        fk.parent_table
                    ));
                    continue;
                };
                let Ok(parent_col) = parent.schema.require_column(&fk.parent_column) else {
                    problems.push(format!(
                        "{name}: FK parent column {}.{} missing",
                        fk.parent_table, fk.parent_column
                    ));
                    continue;
                };
                for (_, row) in t.iter() {
                    let v = &row[child_col];
                    if *v == Value::Null {
                        continue;
                    }
                    let found = parent.iter().any(|(_, p)| p[parent_col] == *v);
                    if !found {
                        problems.push(format!(
                            "{name}.{}: dangling FK value {} (no row in {}.{})",
                            fk.column,
                            v.to_sql_literal(),
                            fk.parent_table,
                            fk.parent_column
                        ));
                    }
                }
            }
            // Unique columns (PRIMARY KEY and UNIQUE): no duplicates.
            for (pos, col) in t.schema.columns.iter().enumerate() {
                let unique = col.unique || t.schema.primary_key == Some(pos);
                if !unique {
                    continue;
                }
                let mut seen = std::collections::HashSet::new();
                for (_, row) in t.iter() {
                    let v = &row[pos];
                    if *v == Value::Null {
                        continue;
                    }
                    if !seen.insert(v.to_sql_literal()) {
                        problems.push(format!(
                            "{name}.{}: duplicate value {} in unique column",
                            col.name,
                            v.to_sql_literal()
                        ));
                    }
                }
            }
            // AUTO_INCREMENT sits above every assigned id.
            for (pos, col) in t.schema.columns.iter().enumerate() {
                if !col.auto_increment {
                    continue;
                }
                let max = t
                    .iter()
                    .filter_map(|(_, row)| row[pos].as_int().ok())
                    .max()
                    .unwrap_or(0);
                if t.next_auto <= max {
                    problems.push(format!(
                        "{name}.{}: AUTO_INCREMENT counter {} not above max id {max}",
                        col.name, t.next_auto
                    ));
                }
            }
        }
        problems
    }

    // ---- schema and typed access -------------------------------------------

    /// The schema of `table`.
    pub fn schema(&self, table: &str) -> Result<TableSchema> {
        Ok(self.inner_read().table(table)?.schema.clone())
    }

    /// All table names, in creation order.
    pub fn table_names(&self) -> Vec<String> {
        let inner = self.inner_read();
        inner
            .table_order
            .iter()
            .map(|k| inner.tables[k].schema.name.clone())
            .collect()
    }

    /// Whether `table` exists.
    pub fn has_table(&self, table: &str) -> bool {
        self.inner_read().table(table).is_ok()
    }

    /// Number of live rows in `table`.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        Ok(self.inner_read().table(table)?.len())
    }

    /// Rows of `table` matching `where_` (all rows if `None`), as full rows
    /// in schema column order.
    pub fn select_rows(
        &self,
        table: &str,
        where_: Option<&Expr>,
        params: &HashMap<String, Value>,
    ) -> Result<Vec<Row>> {
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.selects, 1);
        let started = Instant::now();
        let (rows, lock_wait) = {
            let inner = self.inner_read();
            let lock_wait = started.elapsed();
            let ids = inner.matching_row_ids(table, where_, params, &self.stats)?;
            let t = inner.table(table)?;
            let rows: Vec<Row> = ids
                .iter()
                .map(|&id| t.get(id).expect("live").clone())
                .collect();
            (rows, lock_wait)
        };
        let latency = *read_unpoisoned(&self.latency);
        latency.charge(0);
        self.note_statement("select", started, lock_wait);
        Ok(rows)
    }

    /// Inserts one row given `(column, value)` pairs; omitted columns take
    /// their default (or auto-increment). Returns the auto-assigned id, if
    /// any.
    pub fn insert_row(&self, table: &str, values: &[(&str, Value)]) -> Result<Option<i64>> {
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.inserts, 1);
        self.run_in_txn("insert", |inner| {
            let schema = inner.table(table)?.schema.clone();
            let mut row: Row = schema
                .columns
                .iter()
                .map(|c| c.default.clone().unwrap_or(Value::Null))
                .collect();
            for (col, v) in values {
                let pos = schema.require_column(col)?;
                row[pos] = v.clone();
            }
            inner.insert_row_checked(table, row, &self.stats)
        })
    }

    /// Deletes rows matching `where_`, applying referential actions;
    /// returns the number of rows removed (including cascades).
    pub fn delete_where(
        &self,
        table: &str,
        where_: &Expr,
        params: &HashMap<String, Value>,
    ) -> Result<usize> {
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.deletes, 1);
        self.run_in_txn("delete", |inner| {
            let ids = inner.matching_row_ids(table, Some(where_), params, &self.stats)?;
            let mut removed = 0;
            for id in ids {
                if inner.table(table)?.get(id).is_some() {
                    removed += inner.delete_row_checked(table, id, &self.stats)?;
                }
            }
            Ok(removed)
        })
    }

    /// Like [`Database::delete_where`], but returns every removed row
    /// (including cascaded child rows) as `(table, row)` pairs in deletion
    /// order — children precede the parent whose deletion cascaded to them.
    pub fn delete_where_returning(
        &self,
        table: &str,
        where_: &Expr,
        params: &HashMap<String, Value>,
    ) -> Result<Vec<(String, Row)>> {
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.deletes, 1);
        self.run_in_txn("delete", |inner| {
            let ids = inner.matching_row_ids(table, Some(where_), params, &self.stats)?;
            let mut collected = Vec::new();
            for id in ids {
                if inner.table(table)?.get(id).is_some() {
                    inner.delete_row_collect(table, id, &self.stats, &mut collected)?;
                }
            }
            Ok(collected)
        })
    }

    /// Inserts one fully materialized row (all columns, in schema order,
    /// including any explicit primary key). Used to restore rows verbatim.
    pub fn insert_full_row(&self, table: &str, row: Row) -> Result<()> {
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.inserts, 1);
        self.run_in_txn("insert", |inner| {
            inner.insert_row_checked(table, row, &self.stats)?;
            Ok(())
        })
    }

    /// Updates every row matching `where_` through `f`, which may mutate
    /// the row in place. Constraints are enforced per row.
    pub fn update_with(
        &self,
        table: &str,
        where_: Option<&Expr>,
        params: &HashMap<String, Value>,
        mut f: impl FnMut(&TableSchema, &mut Row) -> Result<()>,
    ) -> Result<usize> {
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.updates, 1);
        self.run_in_txn("update", |inner| {
            let ids = inner.matching_row_ids(table, where_, params, &self.stats)?;
            let schema = inner.table(table)?.schema.clone();
            let mut n = 0;
            for id in ids {
                let mut row = inner.table(table)?.get(id).expect("live").clone();
                f(&schema, &mut row)?;
                inner.update_row_checked(table, id, row, &self.stats)?;
                n += 1;
            }
            Ok(n)
        })
    }

    /// Applies a whole batch of per-row column writes under ONE lock
    /// acquisition and ONE statement charge: each entry addresses a row by
    /// its primary-key value and lists `(column index, new value)` writes.
    /// Rows whose primary key no longer exists are skipped; constraints are
    /// enforced (and undo logged) per row, so a violation anywhere rolls
    /// back the statement's earlier rows too. Returns the number of rows
    /// updated.
    ///
    /// This is the engine half of batched disguise application: a
    /// `Decorrelate`/`Modify` transform collects its per-row rewrites and
    /// flushes them here in one round trip instead of N.
    pub fn update_rows_by_pk(
        &self,
        table: &str,
        updates: &[(Value, Vec<(usize, Value)>)],
    ) -> Result<usize> {
        if updates.is_empty() {
            return Ok(0);
        }
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.updates, 1);
        self.run_in_txn("update", |inner| {
            inner.update_rows_by_pk(table, updates, &self.stats)
        })
    }

    /// Inserts a batch of fully materialized rows (all columns, in schema
    /// order) under one lock acquisition and one statement charge,
    /// returning the auto-increment value assigned to each. A constraint
    /// violation anywhere fails the whole batch (statement-level rollback).
    pub fn insert_rows(&self, table: &str, rows: Vec<Row>) -> Result<Vec<Option<i64>>> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.inserts, 1);
        self.run_in_txn("insert", |inner| {
            inner.insert_rows(table, rows, &self.stats)
        })
    }

    /// The access path execution would use for `table` under `pred` — the
    /// same (cached) decision the executor makes, exposed for `explain`.
    pub fn access_path(&self, table: &str, pred: Option<&Expr>) -> Result<AccessPath> {
        let inner = self.inner_read();
        let t = inner.table(table)?;
        Ok(match pred {
            Some(p) => inner.cached_access_path(t, p, &self.stats),
            None => AccessPath::FullScan,
        })
    }

    // ---- clock, stats, latency ----------------------------------------------

    /// The logical clock value `NOW()` evaluates against on the calling
    /// thread: a [`crate::clock::scoped`] override if one is active,
    /// otherwise the global clock.
    pub fn now(&self) -> i64 {
        crate::clock::current().unwrap_or_else(|| self.inner_read().now)
    }

    /// The global logical clock, ignoring any thread-local override —
    /// what snapshots persist and what other threads' statements see.
    pub fn global_now(&self) -> i64 {
        self.inner_read().now
    }

    /// Sets the logical clock (used by expiration/decay policies). With a
    /// WAL attached the new clock value is logged best-effort: a failed
    /// append loses only the clock (re-set by the caller on restart), not
    /// data, so it does not fail the call.
    pub fn set_now(&self, now: i64) {
        self.inner_write().now = now;
        if let Some(w) = self.wal() {
            let _ = w.append(&WalRecord::Txn {
                ops: vec![wal::RedoOp::SetNow { now }],
            });
        }
    }

    /// A snapshot of the execution counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Resets the execution counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// The metrics registry backing this database's counters and
    /// histograms; render with `render_prometheus()` / `render_json()`.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.stats.registry()
    }

    /// Installs (or with `None` removes) a tracer. While installed, the
    /// engine emits a `statement` span (with `lock_wait`/`execute`
    /// children) per statement and a `parse` span per SQL text.
    pub fn set_tracer(&self, tracer: Option<Tracer>) {
        *write_unpoisoned(&self.obs.tracer) = tracer;
    }

    /// The installed tracer, if any (clones share the span buffer).
    pub fn tracer(&self) -> Option<Tracer> {
        read_unpoisoned(&self.obs.tracer).clone()
    }

    /// Sets (or with `None` disables) the slow-statement threshold: SQL
    /// statements whose wall-clock time reaches it are appended to the
    /// slow-statement log and counted in `edna_slow_statements_total`.
    pub fn set_slow_statement_threshold(&self, threshold: Option<Duration>) {
        *write_unpoisoned(&self.obs.slow_threshold) = threshold;
    }

    /// The recorded slow statements, oldest first (bounded; oldest entries
    /// are evicted past the cap).
    pub fn slow_statements(&self) -> Vec<SlowStatement> {
        lock_unpoisoned(&self.obs.slow_log)
            .iter()
            .cloned()
            .collect()
    }

    /// Executes `SELECT` SQL under the query profiler and reports one row
    /// per executed operator: `operator`, `detail`, `rows` (rows the
    /// operator produced) and `time_us` (wall-clock spent in it), with a
    /// trailing `total` row. This is what `EXPLAIN ANALYZE <select>`
    /// (accepted by [`Database::execute`]) runs; the statement *is*
    /// executed for real, against live data.
    pub fn explain_analyze(
        &self,
        sql: &str,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(Error::Unsupported(
                "EXPLAIN ANALYZE supports SELECT statements only".to_string(),
            ));
        };
        self.failpoint()?;
        let started = Instant::now();
        let (result, profile) = {
            let inner = self.inner_read();
            self.stats.bump(&self.stats.statements, 1);
            self.stats.bump(&self.stats.selects, 1);
            let mut profile = Vec::new();
            let result = inner.select_profiled(&sel, params, &self.stats, &mut profile)?;
            (result, profile)
        };
        let total_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let mut rows: Vec<Row> = profile
            .iter()
            .map(|op| {
                vec![
                    Value::Text(op.op.to_string()),
                    Value::Text(op.detail.clone()),
                    Value::Int(op.rows as i64),
                    Value::Int(op.elapsed_us as i64),
                ]
            })
            .collect();
        rows.push(vec![
            Value::Text("total".to_string()),
            Value::Text(format!("{} row(s) returned", result.rows.len())),
            Value::Int(result.rows.len() as i64),
            Value::Int(total_us as i64),
        ]);
        Ok(QueryResult {
            columns: vec![
                "operator".to_string(),
                "detail".to_string(),
                "rows".to_string(),
                "time_us".to_string(),
            ],
            rows,
            ..QueryResult::default()
        })
    }

    /// Sets the synthetic latency model.
    pub fn set_latency(&self, model: LatencyModel) {
        *write_unpoisoned(&self.latency) = model;
    }

    /// The current synthetic latency model.
    pub fn latency(&self) -> LatencyModel {
        *read_unpoisoned(&self.latency)
    }

    /// Names of the indexed columns of `table` (implicit PK/UNIQUE indexes
    /// and explicit `CREATE INDEX`es), in index-creation order — the order
    /// the executor tries them for predicate probes.
    pub fn index_columns(&self, table: &str) -> Result<Vec<String>> {
        let inner = self.inner_read();
        let t = inner.table(table)?;
        Ok(t.indexes
            .iter()
            .map(|ix| t.schema.columns[ix.column].name.clone())
            .collect())
    }

    /// Extracts serializable images of every table, in creation order
    /// (used by [`crate::snapshot`]).
    pub fn snapshot_tables(&self) -> Result<Vec<crate::snapshot::TableSnapshot>> {
        let inner = self.inner_read();
        Ok(inner
            .table_order
            .iter()
            .map(|key| crate::snapshot::TableSnapshot::of(&inner.tables[key]))
            .collect())
    }

    /// Rebuilds a database from table images (used by [`crate::snapshot`]).
    /// Rows are assumed internally consistent; constraints are *not*
    /// re-checked row by row, but indexes are rebuilt and row slot ids are
    /// preserved (the WAL addresses rows by id).
    pub fn from_snapshots(snapshots: Vec<crate::snapshot::TableSnapshot>) -> Result<Database> {
        let db = Database::new();
        {
            let mut inner = db.inner_write();
            for snap in snapshots {
                snap.schema.validate()?;
                let key = snap.schema.name.to_lowercase();
                if inner.tables.contains_key(&key) {
                    return Err(Error::AlreadyExists(snap.schema.name.clone()));
                }
                inner.tables.insert(key.clone(), snap.into_table()?);
                inner.table_order.push(key);
            }
        }
        Ok(db)
    }

    /// Saves the database to a snapshot file (see [`crate::snapshot`]).
    /// With a WAL attached this is a **checkpoint**: the snapshot records
    /// the WAL watermark, and once it is durably renamed into place the
    /// log is truncated — every frame it held is contained in the
    /// snapshot. (Intent markers still open at the checkpoint are carried
    /// into the fresh log by [`Wal::truncate`].)
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let Some(w) = self.wal() else {
            return crate::snapshot::save(self, path);
        };
        // The database is Arc-shared and writable from other threads, so
        // hold the engine lock across encode → rename → truncate: a
        // transaction committing in the gap would have an LSN above the
        // captured watermark, effects absent from the snapshot, and its
        // frame deleted by the truncation — an acknowledged durable
        // commit lost. Commits stage their frame under the write lock, so
        // a read guard held here excludes new ones while letting
        // concurrent readers proceed.
        loop {
            // Drain the commit pipeline first: a staged-but-unflushed
            // frame belongs to a transaction whose effects are already
            // visible, and a failed flush would roll it back *after* the
            // snapshot encoded them — an unacknowledged commit made
            // durable by the checkpoint. Only snapshot a quiescent
            // pipeline.
            w.flush_pending()?;
            let inner = self.inner_read();
            if !w.pipeline_idle() {
                // A committer slipped a frame in between the flush and
                // the lock; let it finish and retry.
                drop(inner);
                std::thread::yield_now();
                continue;
            }
            let watermark = w.last_lsn();
            let snapshots: Vec<crate::snapshot::TableSnapshot> = inner
                .table_order
                .iter()
                .map(|key| crate::snapshot::TableSnapshot::of(&inner.tables[key]))
                .collect();
            let data = crate::snapshot::encode_parts(inner.now, watermark, &snapshots);
            crate::snapshot::write_atomic(&data, path.as_ref())?;
            w.truncate()?;
            drop(inner);
            return Ok(());
        }
    }

    /// Loads a database from a snapshot file (see [`crate::snapshot`]).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Database> {
        crate::snapshot::load(path)
    }

    /// A deep snapshot of all table contents, for test assertions: table
    /// name → sorted rows rendered as SQL literals.
    pub fn dump(&self) -> std::collections::BTreeMap<String, Vec<String>> {
        let inner = self.inner_read();
        let mut out = std::collections::BTreeMap::new();
        for key in &inner.table_order {
            let t = &inner.tables[key];
            let mut rows: Vec<String> = t
                .iter()
                .map(|(_, r)| {
                    r.iter()
                        .map(|v| v.to_sql_literal())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            rows.sort();
            out.insert(t.schema.name.clone(), rows);
        }
        out
    }
}

/// Strips a leading `EXPLAIN ANALYZE` (case-insensitive), returning the
/// statement text that follows, or `None` if `sql` is not one.
fn strip_explain_analyze(sql: &str) -> Option<&str> {
    let rest = strip_keyword(sql.trim_start(), "EXPLAIN")?;
    strip_keyword(rest.trim_start(), "ANALYZE")
}

/// Strips one leading keyword followed by whitespace (case-insensitive).
fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    let head = s.get(..kw.len())?;
    if !head.eq_ignore_ascii_case(kw) {
        return None;
    }
    let rest = &s[kw.len()..];
    if rest.starts_with(char::is_whitespace) {
        Some(rest)
    } else {
        None
    }
}

/// Trims SQL for span attributes: collapsed to one line, capped length.
fn truncate_sql(sql: &str) -> String {
    const MAX: usize = 120;
    let flat: String = sql.split_whitespace().collect::<Vec<_>>().join(" ");
    if flat.len() <= MAX {
        flat
    } else {
        let cut = (0..=MAX)
            .rev()
            .find(|&i| flat.is_char_boundary(i))
            .unwrap_or(0);
        format!("{}…", &flat[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn setup() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
             karma INT DEFAULT 0);
             CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             title TEXT, FOREIGN KEY (user_id) REFERENCES users(id));",
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_select_roundtrip() {
        let db = setup();
        let r = db
            .execute("INSERT INTO users (name) VALUES ('bea')")
            .unwrap();
        assert_eq!(r.last_insert_id, Some(1));
        let r = db
            .execute("SELECT id, name, karma FROM users WHERE id = 1")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![
                Value::Int(1),
                Value::Text("bea".into()),
                Value::Int(0)
            ]]
        );
    }

    #[test]
    fn fk_insert_enforced() {
        let db = setup();
        let err = db.execute("INSERT INTO posts (user_id, title) VALUES (99, 'x')");
        assert!(matches!(err, Err(Error::ForeignKeyViolation { .. })));
    }

    #[test]
    fn fk_delete_restrict() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('bea')")
            .unwrap();
        db.execute("INSERT INTO posts (user_id, title) VALUES (1, 'x')")
            .unwrap();
        assert!(db.execute("DELETE FROM users WHERE id = 1").is_err());
        // Remove the child first, then the parent delete succeeds.
        db.execute("DELETE FROM posts WHERE user_id = 1").unwrap();
        assert_eq!(
            db.execute("DELETE FROM users WHERE id = 1")
                .unwrap()
                .affected,
            1
        );
    }

    #[test]
    fn fk_delete_cascade() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE a (id INT PRIMARY KEY);
             CREATE TABLE b (id INT PRIMARY KEY, a_id INT, \
             FOREIGN KEY (a_id) REFERENCES a(id) ON DELETE CASCADE);",
        )
        .unwrap();
        db.execute("INSERT INTO a VALUES (1)").unwrap();
        db.execute("INSERT INTO b VALUES (10, 1), (11, 1)").unwrap();
        let r = db.execute("DELETE FROM a WHERE id = 1").unwrap();
        assert_eq!(r.affected, 3);
        assert_eq!(db.row_count("b").unwrap(), 0);
    }

    #[test]
    fn fk_delete_set_null() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE a (id INT PRIMARY KEY);
             CREATE TABLE b (id INT PRIMARY KEY, a_id INT, \
             FOREIGN KEY (a_id) REFERENCES a(id) ON DELETE SET NULL);",
        )
        .unwrap();
        db.execute("INSERT INTO a VALUES (1)").unwrap();
        db.execute("INSERT INTO b VALUES (10, 1)").unwrap();
        db.execute("DELETE FROM a WHERE id = 1").unwrap();
        let r = db.execute("SELECT a_id FROM b WHERE id = 10").unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
    }

    #[test]
    fn unique_violation() {
        let db = Database::new();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, email TEXT UNIQUE)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a@x')").unwrap();
        assert!(db.execute("INSERT INTO t VALUES (2, 'a@x')").is_err());
        // NULLs do not collide.
        db.execute("INSERT INTO t VALUES (3, NULL)").unwrap();
        db.execute("INSERT INTO t VALUES (4, NULL)").unwrap();
    }

    #[test]
    fn multi_row_insert_is_atomic() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap();
        // Second row violates NOT NULL; the whole statement must roll back.
        assert!(db
            .execute("INSERT INTO users (name) VALUES ('b'), (NULL)")
            .is_err());
        assert_eq!(db.row_count("users").unwrap(), 1);
    }

    #[test]
    fn explicit_transaction_rollback() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('keep')")
            .unwrap();
        let before = db.dump();
        db.begin().unwrap();
        db.execute("INSERT INTO users (name) VALUES ('gone')")
            .unwrap();
        db.execute("UPDATE users SET karma = 99 WHERE name = 'keep'")
            .unwrap();
        db.rollback().unwrap();
        assert_eq!(db.dump(), before);
    }

    #[test]
    fn statement_failure_inside_txn_keeps_earlier_work() {
        let db = setup();
        db.begin().unwrap();
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap();
        assert!(db
            .execute("INSERT INTO users (name) VALUES (NULL)")
            .is_err());
        db.commit().unwrap();
        assert_eq!(db.row_count("users").unwrap(), 1);
    }

    #[test]
    fn update_and_aggregates() {
        let db = setup();
        for name in ["a", "b", "c"] {
            db.execute(&format!("INSERT INTO users (name) VALUES ('{name}')"))
                .unwrap();
        }
        db.execute("UPDATE users SET karma = 10 WHERE name != 'a'")
            .unwrap();
        let r = db
            .execute("SELECT SUM(karma), AVG(karma), MAX(karma) FROM users")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(20));
        assert_eq!(r.rows[0][1], Value::Float(20.0 / 3.0));
        assert_eq!(r.rows[0][2], Value::Int(10));
    }

    #[test]
    fn group_by_and_order() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('u1'), ('u2')")
            .unwrap();
        db.execute("INSERT INTO posts (user_id, title) VALUES (1, 'a'), (1, 'b'), (2, 'c')")
            .unwrap();
        let r = db
            .execute("SELECT user_id, COUNT(*) AS n FROM posts GROUP BY user_id ORDER BY n DESC")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn joins_inner_and_left() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('u1'), ('u2')")
            .unwrap();
        db.execute("INSERT INTO posts (user_id, title) VALUES (1, 'a')")
            .unwrap();
        let inner = db
            .execute("SELECT u.name, p.title FROM users u INNER JOIN posts p ON p.user_id = u.id")
            .unwrap();
        assert_eq!(inner.rows.len(), 1);
        let left = db
            .execute(
                "SELECT u.name, p.title FROM users u LEFT JOIN posts p ON p.user_id = u.id \
                 ORDER BY u.id",
            )
            .unwrap();
        assert_eq!(left.rows.len(), 2);
        assert_eq!(left.rows[1][1], Value::Null);
    }

    #[test]
    fn params_bind() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('bea')")
            .unwrap();
        let mut params = HashMap::new();
        params.insert("UID".to_string(), Value::Int(1));
        let r = db
            .execute_with_params("SELECT name FROM users WHERE id = $UID", &params)
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Text("bea".into()));
        assert!(db
            .execute("SELECT name FROM users WHERE id = $UID")
            .is_err());
    }

    #[test]
    fn typed_api() {
        let db = setup();
        let id = db
            .insert_row("users", &[("name", Value::Text("bea".into()))])
            .unwrap();
        assert_eq!(id, Some(1));
        let pred = crate::parser::parse_expr("name = 'bea'").unwrap();
        let rows = db
            .select_rows("users", Some(&pred), &HashMap::new())
            .unwrap();
        assert_eq!(rows.len(), 1);
        let n = db
            .update_with("users", Some(&pred), &HashMap::new(), |schema, row| {
                let k = schema.require_column("karma")?;
                row[k] = Value::Int(7);
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            db.execute("SELECT karma FROM users WHERE id = 1")
                .unwrap()
                .rows[0][0],
            Value::Int(7)
        );
        let removed = db.delete_where("users", &pred, &HashMap::new()).unwrap();
        assert_eq!(removed, 1);
    }

    #[test]
    fn stats_count_queries() {
        let db = setup();
        db.reset_stats();
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap();
        db.execute("SELECT * FROM users").unwrap();
        let s = db.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.selects, 1);
        assert_eq!(s.statements, 2);
        assert!(s.rows_written >= 1);
    }

    #[test]
    fn drop_table_and_rollback_restores_it() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap();
        db.begin().unwrap();
        // Child table first (users is referenced by posts).
        db.execute("DROP TABLE posts").unwrap();
        db.execute("DROP TABLE users").unwrap();
        assert!(!db.has_table("users"));
        db.rollback().unwrap();
        assert!(db.has_table("users"));
        assert_eq!(db.row_count("users").unwrap(), 1);
    }

    #[test]
    fn now_follows_logical_clock() {
        let db = setup();
        db.set_now(12345);
        let r = db.execute("SELECT NOW() FROM users").unwrap();
        // No rows in users yet, so no output rows; insert one and retry.
        assert!(r.rows.is_empty());
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap();
        let r = db.execute("SELECT NOW() FROM users").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(12345));
    }

    #[test]
    fn auto_increment_respects_explicit_values() {
        let db = setup();
        db.execute("INSERT INTO users (id, name) VALUES (10, 'x')")
            .unwrap();
        let r = db.execute("INSERT INTO users (name) VALUES ('y')").unwrap();
        assert_eq!(r.last_insert_id, Some(11));
    }

    #[test]
    fn fault_hook_kills_the_chosen_statement_only() {
        let db = setup();
        db.fail_statement(1);
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap(); // stmt 0
        let err = db.execute("INSERT INTO users (name) VALUES ('b')"); // stmt 1
        assert_eq!(err.unwrap_err(), Error::FaultInjected(1));
        db.execute("INSERT INTO users (name) VALUES ('c')").unwrap(); // stmt 2
        assert_eq!(db.row_count("users").unwrap(), 2);
        assert_eq!(db.fault_statement_count(), 3);
        db.set_fault_hook(None);
        assert_eq!(db.fault_statement_count(), 0, "removal resets the index");
    }

    #[test]
    fn fault_hook_counts_typed_statements_and_spares_txn_control() {
        let db = setup();
        db.set_fault_hook(Some(Arc::new(|_| false)));
        db.begin().unwrap(); // exempt: not counted
        db.insert_row("users", &[("name", Value::Text("a".into()))])
            .unwrap();
        db.select_rows("users", None, &HashMap::new()).unwrap();
        db.update_with("users", None, &HashMap::new(), |_, _| Ok(()))
            .unwrap();
        db.commit().unwrap(); // exempt
        assert_eq!(db.fault_statement_count(), 3);
        // A hook that fails everything still lets rollback through.
        db.set_fault_hook(Some(Arc::new(|_| true)));
        db.begin().unwrap();
        assert!(db
            .insert_row("users", &[("name", Value::Text("b".into()))])
            .is_err());
        db.rollback().unwrap();
        db.set_fault_hook(None);
        assert_eq!(db.row_count("users").unwrap(), 1);
    }

    #[test]
    fn fault_mid_transaction_rolls_back_cleanly() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('keep')")
            .unwrap();
        let before = db.dump();
        db.fail_statement(1);
        let result = db.transaction(|db| {
            db.insert_row("users", &[("name", Value::Text("gone".into()))])?; // stmt 0
            db.insert_row("users", &[("name", Value::Text("never".into()))])?; // stmt 1: killed
            Ok(())
        });
        assert_eq!(result.unwrap_err(), Error::FaultInjected(1));
        db.set_fault_hook(None);
        assert_eq!(db.dump(), before);
    }

    #[test]
    fn parent_key_update_with_children_is_rejected() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap();
        db.execute("INSERT INTO posts (user_id, title) VALUES (1, 't')")
            .unwrap();
        assert!(db.execute("UPDATE users SET id = 5 WHERE id = 1").is_err());
        // Without children the key update is allowed.
        db.execute("DELETE FROM posts WHERE id = 1").unwrap();
        db.execute("UPDATE users SET id = 5 WHERE id = 1").unwrap();
    }
}

#[cfg(test)]
mod select_feature_tests {
    use super::*;
    use crate::value::Value;

    fn db() -> Database {
        let db = Database::new();
        db.execute(
            "CREATE TABLE votes (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT, score INT)",
        )
        .unwrap();
        for (u, s) in [(1, 5), (1, 5), (1, 3), (2, 4), (2, 4), (3, 1)] {
            db.execute(&format!(
                "INSERT INTO votes (user_id, score) VALUES ({u}, {s})"
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn offset_pages_through_results() {
        let db = db();
        let page1 = db
            .execute("SELECT id FROM votes ORDER BY id LIMIT 2")
            .unwrap();
        let page2 = db
            .execute("SELECT id FROM votes ORDER BY id LIMIT 2 OFFSET 2")
            .unwrap();
        assert_eq!(page1.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_eq!(page2.rows, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
        // Offset past the end yields nothing.
        let empty = db
            .execute("SELECT id FROM votes LIMIT 5 OFFSET 100")
            .unwrap();
        assert!(empty.rows.is_empty());
    }

    #[test]
    fn having_filters_groups_by_alias() {
        let db = db();
        let r = db
            .execute(
                "SELECT user_id, COUNT(*) AS n FROM votes GROUP BY user_id \
                 HAVING n > 1 ORDER BY user_id",
            )
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Int(3)],
                vec![Value::Int(2), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn count_distinct() {
        let db = db();
        let r = db
            .execute("SELECT COUNT(DISTINCT score), COUNT(score) FROM votes")
            .unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(4), Value::Int(6)]);
        // DISTINCT with other aggregates.
        let r = db.execute("SELECT SUM(DISTINCT score) FROM votes").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(5 + 3 + 4 + 1));
        // COUNT(DISTINCT *) is rejected.
        assert!(db.execute("SELECT COUNT(DISTINCT *) FROM votes").is_err());
    }

    #[test]
    fn having_without_group_by_checks_global_aggregate() {
        let db = db();
        let some = db
            .execute("SELECT COUNT(*) AS n FROM votes HAVING n > 5")
            .unwrap();
        assert_eq!(some.rows.len(), 1);
        let none = db
            .execute("SELECT COUNT(*) AS n FROM votes HAVING n > 100")
            .unwrap();
        assert!(none.rows.is_empty());
    }
}

#[cfg(test)]
mod subquery_tests {
    use super::*;
    use crate::value::Value;

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE authors (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, banned BOOL \
             NOT NULL DEFAULT FALSE);
             CREATE TABLE books (id INT PRIMARY KEY AUTO_INCREMENT, author_id INT NOT NULL, \
             title TEXT, FOREIGN KEY (author_id) REFERENCES authors(id));",
        )
        .unwrap();
        db.execute(
            "INSERT INTO authors (name, banned) VALUES ('a', FALSE), ('b', TRUE), \
             ('c', TRUE)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO books (author_id, title) VALUES (1, 't1'), (2, 't2'), (3, 't3'), \
             (2, 't4')",
        )
        .unwrap();
        db
    }

    #[test]
    fn in_select_filters_rows() {
        let db = db();
        let r = db
            .execute(
                "SELECT title FROM books WHERE author_id IN \
                 (SELECT id FROM authors WHERE banned = TRUE) ORDER BY id",
            )
            .unwrap();
        let titles: Vec<String> = r.rows.iter().map(|x| x[0].to_string()).collect();
        assert_eq!(titles, vec!["t2", "t3", "t4"]);
    }

    #[test]
    fn not_in_select() {
        let db = db();
        let r = db
            .execute(
                "SELECT title FROM books WHERE author_id NOT IN \
                 (SELECT id FROM authors WHERE banned = TRUE)",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Text("t1".into()));
    }

    #[test]
    fn subquery_in_update_and_delete_predicates() {
        let db = db();
        let n = db
            .execute(
                "UPDATE books SET title = '[banned]' WHERE author_id IN \
                 (SELECT id FROM authors WHERE banned = TRUE)",
            )
            .unwrap();
        assert_eq!(n.affected, 3);
        let d = db
            .execute(
                "DELETE FROM books WHERE author_id IN \
                 (SELECT id FROM authors WHERE banned = TRUE)",
            )
            .unwrap();
        assert_eq!(d.affected, 3);
        assert_eq!(db.row_count("books").unwrap(), 1);
    }

    #[test]
    fn nested_subqueries() {
        let db = db();
        let r = db
            .execute(
                "SELECT COUNT(*) FROM authors WHERE id IN \
                 (SELECT author_id FROM books WHERE author_id IN \
                  (SELECT id FROM authors WHERE banned = TRUE))",
            )
            .unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(2));
    }

    #[test]
    fn multi_column_subquery_rejected() {
        let db = db();
        assert!(db
            .execute("SELECT * FROM books WHERE author_id IN (SELECT id, name FROM authors)")
            .is_err());
    }

    #[test]
    fn empty_subquery_matches_nothing() {
        let db = db();
        let r = db
            .execute(
                "SELECT COUNT(*) FROM books WHERE author_id IN \
                 (SELECT id FROM authors WHERE name = 'nobody')",
            )
            .unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(0));
    }

    #[test]
    fn subquery_counts_as_statement() {
        let db = db();
        db.reset_stats();
        db.execute("SELECT title FROM books WHERE author_id IN (SELECT id FROM authors)")
            .unwrap();
        let s = db.stats();
        assert_eq!(s.selects, 2, "outer + subquery");
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;
    use crate::value::Value;
    use edna_obs::Tracer;

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT);
             CREATE INDEX idx_v ON t (v);",
        )
        .unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t (v) VALUES ('v{i}')"))
                .unwrap();
        }
        db
    }

    #[test]
    fn metrics_render_after_statements() {
        let d = db();
        let text = d.metrics().render_prometheus();
        assert!(text.contains("# TYPE edna_statements_total counter"));
        assert!(text.contains("edna_selects_total"));
        assert!(text.contains("# TYPE edna_statement_seconds histogram"));
        assert!(text.contains("edna_statement_seconds_bucket{le=\"+Inf\"}"));
        // Every INSERT above fed the statement histogram.
        assert!(text.contains("edna_statement_seconds_count 1"));
        // The JSON form must parse and carry the same counters.
        let json = d.metrics().render_json();
        let parsed = edna_obs::json::parse(&json).expect("metrics JSON parses");
        let obj = parsed.as_obj().unwrap();
        let stmts = obj["edna_statements_total"].as_obj().unwrap();
        // 2 DDL statements + 10 INSERTs.
        assert_eq!(stmts["value"].as_num(), Some(12.0));
    }

    #[test]
    fn explain_analyze_reports_real_operators() {
        let d = db();
        let r = d
            .execute("EXPLAIN ANALYZE SELECT v FROM t WHERE v = 'v3'")
            .unwrap();
        assert_eq!(r.columns, vec!["operator", "detail", "rows", "time_us"]);
        let ops: Vec<&str> = r
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Text(s) => s.as_str(),
                other => panic!("non-text operator {other:?}"),
            })
            .collect();
        assert!(
            ops.contains(&"probe"),
            "indexed lookup should probe: {ops:?}"
        );
        assert_eq!(*ops.last().unwrap(), "total");
        // The probe stage saw exactly the matching row.
        let probe = r
            .rows
            .iter()
            .find(|row| row[0] == Value::Text("probe".into()))
            .unwrap();
        assert_eq!(probe[2], Value::Int(1));

        // An unindexed predicate falls back to a scan over all 10 rows.
        let r = d
            .execute("EXPLAIN ANALYZE SELECT id FROM t WHERE id > 5")
            .unwrap();
        let scan = r
            .rows
            .iter()
            .find(|row| row[0] == Value::Text("scan".into()))
            .expect("scan operator");
        assert_eq!(scan[2], Value::Int(10), "scan reads every live row");
    }

    #[test]
    fn explain_analyze_rejects_non_select() {
        let d = db();
        let err = d.execute("EXPLAIN ANALYZE DELETE FROM t WHERE id = 1");
        assert!(matches!(err, Err(Error::Unsupported(_))), "{err:?}");
        // And bare EXPLAIN (without ANALYZE) is still a parse error, not
        // silently executed.
        assert!(d.execute("EXPLAIN SELECT * FROM t").is_err());
    }

    #[test]
    fn slow_statement_log_respects_threshold() {
        let d = db();
        // No threshold: nothing is recorded.
        d.execute("SELECT * FROM t").unwrap();
        assert!(d.slow_statements().is_empty());
        // Zero threshold: everything is recorded, counter moves.
        d.set_slow_statement_threshold(Some(Duration::ZERO));
        d.execute("SELECT * FROM t WHERE id = 1").unwrap();
        let slow = d.slow_statements();
        assert_eq!(slow.len(), 1);
        assert!(slow[0].sql.contains("WHERE id = 1"));
        assert!(d
            .metrics()
            .render_prometheus()
            .contains("edna_slow_statements_total 1"));
        // Unreachable threshold: recording stops.
        d.set_slow_statement_threshold(Some(Duration::from_secs(3600)));
        d.execute("SELECT * FROM t").unwrap();
        assert_eq!(d.slow_statements().len(), 1);
    }

    #[test]
    fn tracer_emits_statement_spans() {
        let d = db();
        let tracer = Tracer::new(1024);
        d.set_tracer(Some(tracer.clone()));
        d.execute("INSERT INTO t (v) VALUES ('traced')").unwrap();
        d.execute("SELECT * FROM t WHERE v = 'traced'").unwrap();
        d.set_tracer(None);

        let spans = tracer.spans();
        let stmt_ops: Vec<String> = spans
            .iter()
            .filter(|s| s.label == "statement")
            .filter_map(|s| {
                s.attrs
                    .iter()
                    .find(|(k, _)| k == "op")
                    .map(|(_, v)| v.clone())
            })
            .collect();
        assert_eq!(stmt_ops, vec!["insert".to_string(), "select".to_string()]);
        // Each statement span has lock_wait + execute children.
        let stmt = spans.iter().find(|s| s.label == "statement").unwrap();
        for child in ["lock_wait", "execute"] {
            assert!(
                spans
                    .iter()
                    .any(|s| s.label == child && s.parent == Some(stmt.id)),
                "missing child {child}"
            );
        }
        // Parse spans carry the (truncated) SQL text.
        let parse = spans.iter().find(|s| s.label == "parse").unwrap();
        assert!(parse
            .attrs
            .iter()
            .any(|(k, v)| k == "sql" && v.contains("INSERT")));

        // JSONL round trip.
        let jsonl = tracer.to_jsonl();
        for line in jsonl.lines() {
            let rec = crate::SpanRecord::from_json(line).expect("span line parses");
            assert!(!rec.label.is_empty());
        }
    }

    #[test]
    fn typed_select_feeds_statement_histogram() {
        let d = db();
        let before = histogram_count(&d);
        d.select_rows("t", None, &HashMap::new()).unwrap();
        assert_eq!(histogram_count(&d), before + 1);
    }

    fn histogram_count(d: &Database) -> u64 {
        let json = d.metrics().render_json();
        let parsed = edna_obs::json::parse(&json).unwrap();
        let obj = parsed.as_obj().unwrap();
        let hist = obj["edna_statement_seconds"].as_obj().unwrap();
        hist["count"].as_num().unwrap() as u64
    }

    #[test]
    fn poisoned_lock_recovers_and_rolls_back() {
        let d = db();
        // Panic mid-update, while the engine write lock is held and an
        // implicit transaction is open with one row already mutated.
        let mut seen = 0;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.update_with("t", None, &HashMap::new(), |schema, row| {
                seen += 1;
                let pos = schema.require_column("v")?;
                row[pos] = Value::Text("poisoned".into());
                if seen == 2 {
                    panic!("injected panic under engine lock");
                }
                Ok(())
            })
        }));
        assert!(result.is_err(), "closure panic must propagate");

        // The engine must self-repair: the abandoned implicit txn is rolled
        // back (no 'poisoned' values survive) and new statements work.
        let r = d
            .execute("SELECT COUNT(*) FROM t WHERE v = 'poisoned'")
            .unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(0));
        d.execute("INSERT INTO t (v) VALUES ('after')").unwrap();
        assert_eq!(d.row_count("t").unwrap(), 11);
    }

    #[test]
    fn poisoned_stmt_cache_recovers() {
        let d = db();
        // Poison the statement-cache mutex directly.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = d.stmt_cache.lock().unwrap();
            panic!("poison stmt cache");
        }));
        assert!(d.stmt_cache.is_poisoned());
        // Cached execution still works (lock_unpoisoned re-enters).
        d.execute("SELECT * FROM t WHERE id = $ID").unwrap_err();
        d.execute("SELECT * FROM t").unwrap();
    }

    #[test]
    fn auto_increment_restored_on_rollback() {
        let d = Database::new();
        d.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)")
            .unwrap();
        d.execute("INSERT INTO t (v) VALUES ('a')").unwrap(); // id 1
        d.execute("BEGIN").unwrap();
        d.execute("INSERT INTO t (v) VALUES ('b')").unwrap(); // id 2
                                                              // Explicit value ahead of the counter bumps it too...
        d.execute("INSERT INTO t (id, v) VALUES (50, 'c')").unwrap();
        d.execute("ROLLBACK").unwrap();
        // ...but rollback fully restores the counter (deliberately not
        // MySQL's leak-the-ids behavior — see exec.rs): the next insert
        // reuses id 2, not 51.
        let r = d.execute("INSERT INTO t (v) VALUES ('d')").unwrap();
        assert_eq!(r.last_insert_id, Some(2));
    }

    #[test]
    fn auto_increment_survives_snapshot_round_trip() {
        let d = Database::new();
        d.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)")
            .unwrap();
        for v in ["a", "b", "c"] {
            d.execute(&format!("INSERT INTO t (v) VALUES ('{v}')"))
                .unwrap();
        }
        // Delete the highest row: a naive max(id)+1 reconstruction would
        // hand out 3 again.
        d.execute("DELETE FROM t WHERE id = 3").unwrap();
        let restored = Database::from_snapshots(d.snapshot_tables().unwrap()).unwrap();
        let r = restored.execute("INSERT INTO t (v) VALUES ('d')").unwrap();
        assert_eq!(r.last_insert_id, Some(4), "snapshot must persist next_auto");
    }
}
