//! The public database handle.
//!
//! [`Database`] is cheaply cloneable (`Arc` inside) and thread-safe: all
//! state sits behind a [`std::sync::RwLock`] — reads (SELECTs and typed
//! row reads) share the lock and run concurrently, while writes and
//! transactions take it exclusively (single-writer semantics, as the
//! paper's prototype applies each disguise in one large SQL transaction).
//! Statistics are atomic, and repeated SQL shapes skip the parser via a
//! per-database statement cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::{Mutex, RwLock};

use crate::access::AccessPath;
use crate::error::{Error, Result};
use crate::exec::{Inner, QueryResult};
use crate::expr::Expr;
use crate::parser::{parse_script, parse_statement, Statement};
use crate::schema::TableSchema;
use crate::stats::{LatencyModel, Stats, StatsSnapshot};
use crate::txn::Txn;
use crate::value::{Row, Value};

/// An in-process relational database.
///
/// # Examples
///
/// ```
/// use edna_relational::Database;
///
/// let db = Database::new();
/// db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)").unwrap();
/// db.execute("INSERT INTO t (name) VALUES ('bea'), ('axolotl')").unwrap();
/// let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
/// assert_eq!(r.scalar().unwrap().as_int().unwrap(), 2);
/// ```
#[derive(Clone)]
pub struct Database {
    inner: Arc<RwLock<Inner>>,
    stats: Arc<Stats>,
    latency: Arc<RwLock<LatencyModel>>,
    fault: Arc<FaultState>,
    stmt_cache: Arc<Mutex<StmtCache>>,
}

/// SQL texts the statement cache holds before evicting least-recently-used
/// entries. A disguise workload repeats a handful of shapes; 256 leaves
/// generous headroom without letting ad-hoc SQL grow the cache unboundedly.
const STMT_CACHE_CAP: usize = 256;

/// An LRU cache of parsed statements, keyed by exact SQL text.
#[derive(Default)]
struct StmtCache {
    map: HashMap<String, CachedStmt>,
    tick: u64,
}

struct CachedStmt {
    stmt: Arc<Statement>,
    last_used: u64,
}

impl StmtCache {
    fn get(&mut self, sql: &str) -> Option<Arc<Statement>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(sql).map(|c| {
            c.last_used = tick;
            Arc::clone(&c.stmt)
        })
    }

    fn insert(&mut self, sql: String, stmt: Arc<Statement>) {
        if self.map.len() >= STMT_CACHE_CAP {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, c)| c.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
            }
        }
        self.tick += 1;
        self.map.insert(
            sql,
            CachedStmt {
                stmt,
                last_used: self.tick,
            },
        );
    }
}

/// A statement-level fault hook: called with the 0-based index of each
/// statement executed since the hook was installed; returning `true`
/// kills that statement with [`Error::FaultInjected`] *before* it runs.
///
/// This is the engine-side half of the fault-injection harness: tests
/// sweep the hook across every statement index of a workload to prove
/// that a fault at any point leaves the database unchanged (the disguiser
/// rolls its transaction back).
pub type FaultHook = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// Shared fault-injection state (statement counter + optional hook).
#[derive(Default)]
struct FaultState {
    hook: RwLock<Option<FaultHook>>,
    seq: AtomicU64,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database {
            inner: Arc::new(RwLock::new(Inner::new())),
            stats: Arc::new(Stats::default()),
            latency: Arc::new(RwLock::new(LatencyModel::NONE)),
            fault: Arc::new(FaultState::default()),
            stmt_cache: Arc::new(Mutex::new(StmtCache::default())),
        }
    }

    // ---- fault injection ---------------------------------------------------

    /// Installs (or with `None` removes) a statement-level fault hook,
    /// resetting the statement index to 0. The hook is consulted once per
    /// statement — SQL and typed API alike — *before* execution; explicit
    /// [`Database::begin`]/[`Database::commit`]/[`Database::rollback`]
    /// calls are exempt so recovery paths cannot themselves be killed.
    pub fn set_fault_hook(&self, hook: Option<FaultHook>) {
        *self.fault.hook.write().unwrap() = hook;
        self.fault.seq.store(0, Ordering::SeqCst);
    }

    /// Convenience: fail exactly the `n`th statement from now (0-based).
    pub fn fail_statement(&self, n: u64) {
        self.set_fault_hook(Some(Arc::new(move |i| i == n)));
    }

    /// Statements the installed hook has seen. With a never-firing hook
    /// (`|_| false`) this counts a workload's statements, giving the
    /// sweep bound for exhaustive fault injection.
    pub fn fault_statement_count(&self) -> u64 {
        self.fault.seq.load(Ordering::SeqCst)
    }

    /// Consults the fault hook, if any; charges one statement index.
    fn failpoint(&self) -> Result<()> {
        let hook = self.fault.hook.read().unwrap();
        if let Some(h) = hook.as_ref() {
            let index = self.fault.seq.fetch_add(1, Ordering::SeqCst);
            if h(index) {
                return Err(Error::FaultInjected(index));
            }
        }
        Ok(())
    }

    // ---- SQL execution ----------------------------------------------------

    /// Parses and executes one SQL statement without parameters.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_with_params(sql, &HashMap::new())
    }

    /// Parses and executes one SQL statement with bound `$param`s. Repeat
    /// SQL texts skip the parser via the statement cache.
    pub fn execute_with_params(
        &self,
        sql: &str,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        let stmt = self.cached_statement(sql)?;
        self.execute_stmt(&stmt, params)
    }

    /// The parsed form of `sql`, served from the statement cache when the
    /// exact text was executed before. Parsing happens outside the cache
    /// lock; a racing parse of the same text is wasted work, not an error.
    pub fn cached_statement(&self, sql: &str) -> Result<Arc<Statement>> {
        if let Some(stmt) = self.stmt_cache.lock().unwrap().get(sql) {
            self.stats.bump(&self.stats.stmt_cache_hits, 1);
            return Ok(stmt);
        }
        self.stats.bump(&self.stats.stmt_cache_misses, 1);
        let stmt = Arc::new(parse_statement(sql)?);
        self.stmt_cache
            .lock()
            .unwrap()
            .insert(sql.to_string(), Arc::clone(&stmt));
        Ok(stmt)
    }

    /// Executes a pre-parsed statement. SELECTs run under the shared (read)
    /// lock and so proceed concurrently; everything else serializes behind
    /// the write lock.
    pub fn execute_stmt(
        &self,
        stmt: &Statement,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        self.failpoint()?;
        match stmt {
            Statement::Begin => {
                self.begin()?;
                return Ok(QueryResult::default());
            }
            Statement::Commit => {
                self.commit()?;
                return Ok(QueryResult::default());
            }
            Statement::Rollback => {
                self.rollback()?;
                return Ok(QueryResult::default());
            }
            Statement::Select(sel) => {
                let result = {
                    let inner = self.inner.read().unwrap();
                    self.stats.bump(&self.stats.statements, 1);
                    self.stats.bump(&self.stats.selects, 1);
                    inner.select(sel, params, &self.stats)
                };
                let latency = *self.latency.read().unwrap();
                latency.charge(0);
                return result;
            }
            _ => {}
        }
        let is_ddl = matches!(
            stmt,
            Statement::CreateTable(_)
                | Statement::CreateIndex { .. }
                | Statement::DropTable { .. }
                | Statement::AlterTable { .. }
        );
        let result = self.run_in_txn(|inner| inner.execute_stmt(stmt, params, &self.stats));
        if is_ddl && result.is_ok() {
            // Schema changed: drop cached parses so nothing stale survives
            // (the executor's plan cache is invalidated engine-side).
            self.stmt_cache.lock().unwrap().map.clear();
        }
        result
    }

    /// Executes a `;`-separated script, stopping at the first error (any
    /// open explicit transaction is left open, mirroring SQL CLIs).
    pub fn execute_script(&self, sql: &str) -> Result<Vec<QueryResult>> {
        let stmts = parse_script(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute_stmt(stmt, &HashMap::new())?);
        }
        Ok(out)
    }

    /// Runs `f` inside the open transaction, or an implicit per-statement
    /// transaction if none is open (rolled back on error). The engine lock
    /// is released before any synthetic latency is charged, so concurrent
    /// callers overlap their simulated I/O.
    fn run_in_txn<T>(&self, f: impl FnOnce(&mut Inner) -> Result<T>) -> Result<T> {
        let written_before = self.stats.snapshot().rows_written;
        let mut guard = self.inner.write().unwrap();
        let inner = &mut *guard;
        let result = if inner.txn.is_some() {
            let mark = inner.txn.as_ref().expect("checked").mark();
            match f(inner) {
                Ok(v) => Ok(v),
                Err(e) => {
                    // Statement-level rollback within the explicit txn.
                    let txn = inner.txn.take().expect("still open");
                    let txn = inner.rollback_to(txn, mark);
                    inner.txn = Some(txn);
                    Err(e)
                }
            }
        } else {
            inner.txn = Some(Txn::implicit());
            match f(inner) {
                Ok(v) => {
                    inner.txn = None;
                    Ok(v)
                }
                Err(e) => {
                    let txn = inner.txn.take().expect("installed above");
                    inner.rollback(txn);
                    Err(e)
                }
            }
        };
        drop(guard);
        let latency = *self.latency.read().unwrap();
        if !latency.is_none() {
            let written_after = self.stats.snapshot().rows_written;
            latency.charge(written_after.saturating_sub(written_before));
        }
        result
    }

    // ---- transactions ------------------------------------------------------

    /// Opens an explicit transaction; errors if one is already open.
    pub fn begin(&self) -> Result<()> {
        let mut inner = self.inner.write().unwrap();
        if inner.txn.is_some() {
            return Err(Error::Txn("transaction already open".to_string()));
        }
        inner.txn = Some(Txn::explicit());
        Ok(())
    }

    /// Commits the open transaction; errors if none is open.
    pub fn commit(&self) -> Result<()> {
        let mut inner = self.inner.write().unwrap();
        match inner.txn.take() {
            Some(_) => Ok(()),
            None => Err(Error::Txn("COMMIT without BEGIN".to_string())),
        }
    }

    /// Rolls back the open transaction; errors if none is open.
    pub fn rollback(&self) -> Result<()> {
        let mut inner = self.inner.write().unwrap();
        match inner.txn.take() {
            Some(txn) => {
                inner.rollback(txn);
                Ok(())
            }
            None => Err(Error::Txn("ROLLBACK without BEGIN".to_string())),
        }
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.inner
            .read()
            .unwrap()
            .txn
            .as_ref()
            .is_some_and(|t| !t.implicit)
    }

    /// Runs `f` inside a fresh explicit transaction, committing on `Ok` and
    /// rolling back on `Err`.
    pub fn transaction<T>(&self, f: impl FnOnce(&Database) -> Result<T>) -> Result<T> {
        self.begin()?;
        match f(self) {
            Ok(v) => {
                self.commit()?;
                Ok(v)
            }
            Err(e) => {
                // Rollback can only fail if the txn vanished; prefer the
                // original error either way.
                let _ = self.rollback();
                Err(e)
            }
        }
    }

    // ---- schema and typed access -------------------------------------------

    /// The schema of `table`.
    pub fn schema(&self, table: &str) -> Result<TableSchema> {
        Ok(self.inner.read().unwrap().table(table)?.schema.clone())
    }

    /// All table names, in creation order.
    pub fn table_names(&self) -> Vec<String> {
        let inner = self.inner.read().unwrap();
        inner
            .table_order
            .iter()
            .map(|k| inner.tables[k].schema.name.clone())
            .collect()
    }

    /// Whether `table` exists.
    pub fn has_table(&self, table: &str) -> bool {
        self.inner.read().unwrap().table(table).is_ok()
    }

    /// Number of live rows in `table`.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        Ok(self.inner.read().unwrap().table(table)?.len())
    }

    /// Rows of `table` matching `where_` (all rows if `None`), as full rows
    /// in schema column order.
    pub fn select_rows(
        &self,
        table: &str,
        where_: Option<&Expr>,
        params: &HashMap<String, Value>,
    ) -> Result<Vec<Row>> {
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.selects, 1);
        let rows = {
            let inner = self.inner.read().unwrap();
            let ids = inner.matching_row_ids(table, where_, params, &self.stats)?;
            let t = inner.table(table)?;
            ids.iter()
                .map(|&id| t.get(id).expect("live").clone())
                .collect()
        };
        let latency = *self.latency.read().unwrap();
        latency.charge(0);
        Ok(rows)
    }

    /// Inserts one row given `(column, value)` pairs; omitted columns take
    /// their default (or auto-increment). Returns the auto-assigned id, if
    /// any.
    pub fn insert_row(&self, table: &str, values: &[(&str, Value)]) -> Result<Option<i64>> {
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.inserts, 1);
        self.run_in_txn(|inner| {
            let schema = inner.table(table)?.schema.clone();
            let mut row: Row = schema
                .columns
                .iter()
                .map(|c| c.default.clone().unwrap_or(Value::Null))
                .collect();
            for (col, v) in values {
                let pos = schema.require_column(col)?;
                row[pos] = v.clone();
            }
            inner.insert_row_checked(table, row, &self.stats)
        })
    }

    /// Deletes rows matching `where_`, applying referential actions;
    /// returns the number of rows removed (including cascades).
    pub fn delete_where(
        &self,
        table: &str,
        where_: &Expr,
        params: &HashMap<String, Value>,
    ) -> Result<usize> {
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.deletes, 1);
        self.run_in_txn(|inner| {
            let ids = inner.matching_row_ids(table, Some(where_), params, &self.stats)?;
            let mut removed = 0;
            for id in ids {
                if inner.table(table)?.get(id).is_some() {
                    removed += inner.delete_row_checked(table, id, &self.stats)?;
                }
            }
            Ok(removed)
        })
    }

    /// Like [`Database::delete_where`], but returns every removed row
    /// (including cascaded child rows) as `(table, row)` pairs in deletion
    /// order — children precede the parent whose deletion cascaded to them.
    pub fn delete_where_returning(
        &self,
        table: &str,
        where_: &Expr,
        params: &HashMap<String, Value>,
    ) -> Result<Vec<(String, Row)>> {
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.deletes, 1);
        self.run_in_txn(|inner| {
            let ids = inner.matching_row_ids(table, Some(where_), params, &self.stats)?;
            let mut collected = Vec::new();
            for id in ids {
                if inner.table(table)?.get(id).is_some() {
                    inner.delete_row_collect(table, id, &self.stats, &mut collected)?;
                }
            }
            Ok(collected)
        })
    }

    /// Inserts one fully materialized row (all columns, in schema order,
    /// including any explicit primary key). Used to restore rows verbatim.
    pub fn insert_full_row(&self, table: &str, row: Row) -> Result<()> {
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.inserts, 1);
        self.run_in_txn(|inner| {
            inner.insert_row_checked(table, row, &self.stats)?;
            Ok(())
        })
    }

    /// Updates every row matching `where_` through `f`, which may mutate
    /// the row in place. Constraints are enforced per row.
    pub fn update_with(
        &self,
        table: &str,
        where_: Option<&Expr>,
        params: &HashMap<String, Value>,
        mut f: impl FnMut(&TableSchema, &mut Row) -> Result<()>,
    ) -> Result<usize> {
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.updates, 1);
        self.run_in_txn(|inner| {
            let ids = inner.matching_row_ids(table, where_, params, &self.stats)?;
            let schema = inner.table(table)?.schema.clone();
            let mut n = 0;
            for id in ids {
                let mut row = inner.table(table)?.get(id).expect("live").clone();
                f(&schema, &mut row)?;
                inner.update_row_checked(table, id, row, &self.stats)?;
                n += 1;
            }
            Ok(n)
        })
    }

    /// Applies a whole batch of per-row column writes under ONE lock
    /// acquisition and ONE statement charge: each entry addresses a row by
    /// its primary-key value and lists `(column index, new value)` writes.
    /// Rows whose primary key no longer exists are skipped; constraints are
    /// enforced (and undo logged) per row, so a violation anywhere rolls
    /// back the statement's earlier rows too. Returns the number of rows
    /// updated.
    ///
    /// This is the engine half of batched disguise application: a
    /// `Decorrelate`/`Modify` transform collects its per-row rewrites and
    /// flushes them here in one round trip instead of N.
    pub fn update_rows_by_pk(
        &self,
        table: &str,
        updates: &[(Value, Vec<(usize, Value)>)],
    ) -> Result<usize> {
        if updates.is_empty() {
            return Ok(0);
        }
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.updates, 1);
        self.run_in_txn(|inner| inner.update_rows_by_pk(table, updates, &self.stats))
    }

    /// Inserts a batch of fully materialized rows (all columns, in schema
    /// order) under one lock acquisition and one statement charge,
    /// returning the auto-increment value assigned to each. A constraint
    /// violation anywhere fails the whole batch (statement-level rollback).
    pub fn insert_rows(&self, table: &str, rows: Vec<Row>) -> Result<Vec<Option<i64>>> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        self.failpoint()?;
        self.stats.bump(&self.stats.statements, 1);
        self.stats.bump(&self.stats.inserts, 1);
        self.run_in_txn(|inner| inner.insert_rows(table, rows, &self.stats))
    }

    /// The access path execution would use for `table` under `pred` — the
    /// same (cached) decision the executor makes, exposed for `explain`.
    pub fn access_path(&self, table: &str, pred: Option<&Expr>) -> Result<AccessPath> {
        let inner = self.inner.read().unwrap();
        let t = inner.table(table)?;
        Ok(match pred {
            Some(p) => inner.cached_access_path(t, p, &self.stats),
            None => AccessPath::FullScan,
        })
    }

    // ---- clock, stats, latency ----------------------------------------------

    /// The logical clock value returned by `NOW()`.
    pub fn now(&self) -> i64 {
        self.inner.read().unwrap().now
    }

    /// Sets the logical clock (used by expiration/decay policies).
    pub fn set_now(&self, now: i64) {
        self.inner.write().unwrap().now = now;
    }

    /// A snapshot of the execution counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Resets the execution counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Sets the synthetic latency model.
    pub fn set_latency(&self, model: LatencyModel) {
        *self.latency.write().unwrap() = model;
    }

    /// The current synthetic latency model.
    pub fn latency(&self) -> LatencyModel {
        *self.latency.read().unwrap()
    }

    /// Names of the indexed columns of `table` (implicit PK/UNIQUE indexes
    /// and explicit `CREATE INDEX`es), in index-creation order — the order
    /// the executor tries them for predicate probes.
    pub fn index_columns(&self, table: &str) -> Result<Vec<String>> {
        let inner = self.inner.read().unwrap();
        let t = inner.table(table)?;
        Ok(t.indexes
            .iter()
            .map(|ix| t.schema.columns[ix.column].name.clone())
            .collect())
    }

    /// Extracts serializable images of every table, in creation order
    /// (used by [`crate::snapshot`]).
    pub fn snapshot_tables(&self) -> Result<Vec<crate::snapshot::TableSnapshot>> {
        let inner = self.inner.read().unwrap();
        let mut out = Vec::with_capacity(inner.table_order.len());
        for key in &inner.table_order {
            let t = &inner.tables[key];
            let indexes = t
                .indexes
                .iter()
                .filter(|ix| !ix.name.starts_with("_auto_"))
                .map(|ix| {
                    (
                        ix.name.clone(),
                        t.schema.columns[ix.column].name.clone(),
                        ix.unique,
                    )
                })
                .collect();
            out.push(crate::snapshot::TableSnapshot {
                schema: t.schema.clone(),
                next_auto: t.next_auto,
                indexes,
                rows: t.iter().map(|(_, r)| r.clone()).collect(),
            });
        }
        Ok(out)
    }

    /// Rebuilds a database from table images (used by [`crate::snapshot`]).
    /// Rows are assumed internally consistent; constraints are *not*
    /// re-checked row by row, but indexes are rebuilt.
    pub fn from_snapshots(snapshots: Vec<crate::snapshot::TableSnapshot>) -> Result<Database> {
        let db = Database::new();
        {
            let mut inner = db.inner.write().unwrap();
            for snap in snapshots {
                snap.schema.validate()?;
                let key = snap.schema.name.to_lowercase();
                if inner.tables.contains_key(&key) {
                    return Err(Error::AlreadyExists(snap.schema.name.clone()));
                }
                let mut table = crate::storage::Table::new(snap.schema);
                for (name, column, unique) in snap.indexes {
                    let pos = table.schema.require_column(&column)?;
                    table.add_index(name, pos, unique)?;
                }
                for row in snap.rows {
                    if row.len() != table.schema.arity() {
                        return Err(Error::Eval(format!(
                            "snapshot row arity mismatch in {}",
                            table.schema.name
                        )));
                    }
                    table.insert_unchecked(row);
                }
                table.next_auto = snap.next_auto;
                inner.tables.insert(key.clone(), table);
                inner.table_order.push(key);
            }
        }
        Ok(db)
    }

    /// Saves the database to a snapshot file (see [`crate::snapshot`]).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        crate::snapshot::save(self, path)
    }

    /// Loads a database from a snapshot file (see [`crate::snapshot`]).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Database> {
        crate::snapshot::load(path)
    }

    /// A deep snapshot of all table contents, for test assertions: table
    /// name → sorted rows rendered as SQL literals.
    pub fn dump(&self) -> std::collections::BTreeMap<String, Vec<String>> {
        let inner = self.inner.read().unwrap();
        let mut out = std::collections::BTreeMap::new();
        for key in &inner.table_order {
            let t = &inner.tables[key];
            let mut rows: Vec<String> = t
                .iter()
                .map(|(_, r)| {
                    r.iter()
                        .map(|v| v.to_sql_literal())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            rows.sort();
            out.insert(t.schema.name.clone(), rows);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn setup() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
             karma INT DEFAULT 0);
             CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             title TEXT, FOREIGN KEY (user_id) REFERENCES users(id));",
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_select_roundtrip() {
        let db = setup();
        let r = db
            .execute("INSERT INTO users (name) VALUES ('bea')")
            .unwrap();
        assert_eq!(r.last_insert_id, Some(1));
        let r = db
            .execute("SELECT id, name, karma FROM users WHERE id = 1")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![
                Value::Int(1),
                Value::Text("bea".into()),
                Value::Int(0)
            ]]
        );
    }

    #[test]
    fn fk_insert_enforced() {
        let db = setup();
        let err = db.execute("INSERT INTO posts (user_id, title) VALUES (99, 'x')");
        assert!(matches!(err, Err(Error::ForeignKeyViolation { .. })));
    }

    #[test]
    fn fk_delete_restrict() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('bea')")
            .unwrap();
        db.execute("INSERT INTO posts (user_id, title) VALUES (1, 'x')")
            .unwrap();
        assert!(db.execute("DELETE FROM users WHERE id = 1").is_err());
        // Remove the child first, then the parent delete succeeds.
        db.execute("DELETE FROM posts WHERE user_id = 1").unwrap();
        assert_eq!(
            db.execute("DELETE FROM users WHERE id = 1")
                .unwrap()
                .affected,
            1
        );
    }

    #[test]
    fn fk_delete_cascade() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE a (id INT PRIMARY KEY);
             CREATE TABLE b (id INT PRIMARY KEY, a_id INT, \
             FOREIGN KEY (a_id) REFERENCES a(id) ON DELETE CASCADE);",
        )
        .unwrap();
        db.execute("INSERT INTO a VALUES (1)").unwrap();
        db.execute("INSERT INTO b VALUES (10, 1), (11, 1)").unwrap();
        let r = db.execute("DELETE FROM a WHERE id = 1").unwrap();
        assert_eq!(r.affected, 3);
        assert_eq!(db.row_count("b").unwrap(), 0);
    }

    #[test]
    fn fk_delete_set_null() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE a (id INT PRIMARY KEY);
             CREATE TABLE b (id INT PRIMARY KEY, a_id INT, \
             FOREIGN KEY (a_id) REFERENCES a(id) ON DELETE SET NULL);",
        )
        .unwrap();
        db.execute("INSERT INTO a VALUES (1)").unwrap();
        db.execute("INSERT INTO b VALUES (10, 1)").unwrap();
        db.execute("DELETE FROM a WHERE id = 1").unwrap();
        let r = db.execute("SELECT a_id FROM b WHERE id = 10").unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
    }

    #[test]
    fn unique_violation() {
        let db = Database::new();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, email TEXT UNIQUE)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a@x')").unwrap();
        assert!(db.execute("INSERT INTO t VALUES (2, 'a@x')").is_err());
        // NULLs do not collide.
        db.execute("INSERT INTO t VALUES (3, NULL)").unwrap();
        db.execute("INSERT INTO t VALUES (4, NULL)").unwrap();
    }

    #[test]
    fn multi_row_insert_is_atomic() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap();
        // Second row violates NOT NULL; the whole statement must roll back.
        assert!(db
            .execute("INSERT INTO users (name) VALUES ('b'), (NULL)")
            .is_err());
        assert_eq!(db.row_count("users").unwrap(), 1);
    }

    #[test]
    fn explicit_transaction_rollback() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('keep')")
            .unwrap();
        let before = db.dump();
        db.begin().unwrap();
        db.execute("INSERT INTO users (name) VALUES ('gone')")
            .unwrap();
        db.execute("UPDATE users SET karma = 99 WHERE name = 'keep'")
            .unwrap();
        db.rollback().unwrap();
        assert_eq!(db.dump(), before);
    }

    #[test]
    fn statement_failure_inside_txn_keeps_earlier_work() {
        let db = setup();
        db.begin().unwrap();
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap();
        assert!(db
            .execute("INSERT INTO users (name) VALUES (NULL)")
            .is_err());
        db.commit().unwrap();
        assert_eq!(db.row_count("users").unwrap(), 1);
    }

    #[test]
    fn update_and_aggregates() {
        let db = setup();
        for name in ["a", "b", "c"] {
            db.execute(&format!("INSERT INTO users (name) VALUES ('{name}')"))
                .unwrap();
        }
        db.execute("UPDATE users SET karma = 10 WHERE name != 'a'")
            .unwrap();
        let r = db
            .execute("SELECT SUM(karma), AVG(karma), MAX(karma) FROM users")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(20));
        assert_eq!(r.rows[0][1], Value::Float(20.0 / 3.0));
        assert_eq!(r.rows[0][2], Value::Int(10));
    }

    #[test]
    fn group_by_and_order() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('u1'), ('u2')")
            .unwrap();
        db.execute("INSERT INTO posts (user_id, title) VALUES (1, 'a'), (1, 'b'), (2, 'c')")
            .unwrap();
        let r = db
            .execute("SELECT user_id, COUNT(*) AS n FROM posts GROUP BY user_id ORDER BY n DESC")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn joins_inner_and_left() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('u1'), ('u2')")
            .unwrap();
        db.execute("INSERT INTO posts (user_id, title) VALUES (1, 'a')")
            .unwrap();
        let inner = db
            .execute("SELECT u.name, p.title FROM users u INNER JOIN posts p ON p.user_id = u.id")
            .unwrap();
        assert_eq!(inner.rows.len(), 1);
        let left = db
            .execute(
                "SELECT u.name, p.title FROM users u LEFT JOIN posts p ON p.user_id = u.id \
                 ORDER BY u.id",
            )
            .unwrap();
        assert_eq!(left.rows.len(), 2);
        assert_eq!(left.rows[1][1], Value::Null);
    }

    #[test]
    fn params_bind() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('bea')")
            .unwrap();
        let mut params = HashMap::new();
        params.insert("UID".to_string(), Value::Int(1));
        let r = db
            .execute_with_params("SELECT name FROM users WHERE id = $UID", &params)
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Text("bea".into()));
        assert!(db
            .execute("SELECT name FROM users WHERE id = $UID")
            .is_err());
    }

    #[test]
    fn typed_api() {
        let db = setup();
        let id = db
            .insert_row("users", &[("name", Value::Text("bea".into()))])
            .unwrap();
        assert_eq!(id, Some(1));
        let pred = crate::parser::parse_expr("name = 'bea'").unwrap();
        let rows = db
            .select_rows("users", Some(&pred), &HashMap::new())
            .unwrap();
        assert_eq!(rows.len(), 1);
        let n = db
            .update_with("users", Some(&pred), &HashMap::new(), |schema, row| {
                let k = schema.require_column("karma")?;
                row[k] = Value::Int(7);
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            db.execute("SELECT karma FROM users WHERE id = 1")
                .unwrap()
                .rows[0][0],
            Value::Int(7)
        );
        let removed = db.delete_where("users", &pred, &HashMap::new()).unwrap();
        assert_eq!(removed, 1);
    }

    #[test]
    fn stats_count_queries() {
        let db = setup();
        db.reset_stats();
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap();
        db.execute("SELECT * FROM users").unwrap();
        let s = db.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.selects, 1);
        assert_eq!(s.statements, 2);
        assert!(s.rows_written >= 1);
    }

    #[test]
    fn drop_table_and_rollback_restores_it() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap();
        db.begin().unwrap();
        // Child table first (users is referenced by posts).
        db.execute("DROP TABLE posts").unwrap();
        db.execute("DROP TABLE users").unwrap();
        assert!(!db.has_table("users"));
        db.rollback().unwrap();
        assert!(db.has_table("users"));
        assert_eq!(db.row_count("users").unwrap(), 1);
    }

    #[test]
    fn now_follows_logical_clock() {
        let db = setup();
        db.set_now(12345);
        let r = db.execute("SELECT NOW() FROM users").unwrap();
        // No rows in users yet, so no output rows; insert one and retry.
        assert!(r.rows.is_empty());
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap();
        let r = db.execute("SELECT NOW() FROM users").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(12345));
    }

    #[test]
    fn auto_increment_respects_explicit_values() {
        let db = setup();
        db.execute("INSERT INTO users (id, name) VALUES (10, 'x')")
            .unwrap();
        let r = db.execute("INSERT INTO users (name) VALUES ('y')").unwrap();
        assert_eq!(r.last_insert_id, Some(11));
    }

    #[test]
    fn fault_hook_kills_the_chosen_statement_only() {
        let db = setup();
        db.fail_statement(1);
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap(); // stmt 0
        let err = db.execute("INSERT INTO users (name) VALUES ('b')"); // stmt 1
        assert_eq!(err.unwrap_err(), Error::FaultInjected(1));
        db.execute("INSERT INTO users (name) VALUES ('c')").unwrap(); // stmt 2
        assert_eq!(db.row_count("users").unwrap(), 2);
        assert_eq!(db.fault_statement_count(), 3);
        db.set_fault_hook(None);
        assert_eq!(db.fault_statement_count(), 0, "removal resets the index");
    }

    #[test]
    fn fault_hook_counts_typed_statements_and_spares_txn_control() {
        let db = setup();
        db.set_fault_hook(Some(Arc::new(|_| false)));
        db.begin().unwrap(); // exempt: not counted
        db.insert_row("users", &[("name", Value::Text("a".into()))])
            .unwrap();
        db.select_rows("users", None, &HashMap::new()).unwrap();
        db.update_with("users", None, &HashMap::new(), |_, _| Ok(()))
            .unwrap();
        db.commit().unwrap(); // exempt
        assert_eq!(db.fault_statement_count(), 3);
        // A hook that fails everything still lets rollback through.
        db.set_fault_hook(Some(Arc::new(|_| true)));
        db.begin().unwrap();
        assert!(db
            .insert_row("users", &[("name", Value::Text("b".into()))])
            .is_err());
        db.rollback().unwrap();
        db.set_fault_hook(None);
        assert_eq!(db.row_count("users").unwrap(), 1);
    }

    #[test]
    fn fault_mid_transaction_rolls_back_cleanly() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('keep')")
            .unwrap();
        let before = db.dump();
        db.fail_statement(1);
        let result = db.transaction(|db| {
            db.insert_row("users", &[("name", Value::Text("gone".into()))])?; // stmt 0
            db.insert_row("users", &[("name", Value::Text("never".into()))])?; // stmt 1: killed
            Ok(())
        });
        assert_eq!(result.unwrap_err(), Error::FaultInjected(1));
        db.set_fault_hook(None);
        assert_eq!(db.dump(), before);
    }

    #[test]
    fn parent_key_update_with_children_is_rejected() {
        let db = setup();
        db.execute("INSERT INTO users (name) VALUES ('a')").unwrap();
        db.execute("INSERT INTO posts (user_id, title) VALUES (1, 't')")
            .unwrap();
        assert!(db.execute("UPDATE users SET id = 5 WHERE id = 1").is_err());
        // Without children the key update is allowed.
        db.execute("DELETE FROM posts WHERE id = 1").unwrap();
        db.execute("UPDATE users SET id = 5 WHERE id = 1").unwrap();
    }
}

#[cfg(test)]
mod select_feature_tests {
    use super::*;
    use crate::value::Value;

    fn db() -> Database {
        let db = Database::new();
        db.execute(
            "CREATE TABLE votes (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT, score INT)",
        )
        .unwrap();
        for (u, s) in [(1, 5), (1, 5), (1, 3), (2, 4), (2, 4), (3, 1)] {
            db.execute(&format!(
                "INSERT INTO votes (user_id, score) VALUES ({u}, {s})"
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn offset_pages_through_results() {
        let db = db();
        let page1 = db
            .execute("SELECT id FROM votes ORDER BY id LIMIT 2")
            .unwrap();
        let page2 = db
            .execute("SELECT id FROM votes ORDER BY id LIMIT 2 OFFSET 2")
            .unwrap();
        assert_eq!(page1.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_eq!(page2.rows, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
        // Offset past the end yields nothing.
        let empty = db
            .execute("SELECT id FROM votes LIMIT 5 OFFSET 100")
            .unwrap();
        assert!(empty.rows.is_empty());
    }

    #[test]
    fn having_filters_groups_by_alias() {
        let db = db();
        let r = db
            .execute(
                "SELECT user_id, COUNT(*) AS n FROM votes GROUP BY user_id \
                 HAVING n > 1 ORDER BY user_id",
            )
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Int(3)],
                vec![Value::Int(2), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn count_distinct() {
        let db = db();
        let r = db
            .execute("SELECT COUNT(DISTINCT score), COUNT(score) FROM votes")
            .unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(4), Value::Int(6)]);
        // DISTINCT with other aggregates.
        let r = db.execute("SELECT SUM(DISTINCT score) FROM votes").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(5 + 3 + 4 + 1));
        // COUNT(DISTINCT *) is rejected.
        assert!(db.execute("SELECT COUNT(DISTINCT *) FROM votes").is_err());
    }

    #[test]
    fn having_without_group_by_checks_global_aggregate() {
        let db = db();
        let some = db
            .execute("SELECT COUNT(*) AS n FROM votes HAVING n > 5")
            .unwrap();
        assert_eq!(some.rows.len(), 1);
        let none = db
            .execute("SELECT COUNT(*) AS n FROM votes HAVING n > 100")
            .unwrap();
        assert!(none.rows.is_empty());
    }
}

#[cfg(test)]
mod subquery_tests {
    use super::*;
    use crate::value::Value;

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE authors (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, banned BOOL \
             NOT NULL DEFAULT FALSE);
             CREATE TABLE books (id INT PRIMARY KEY AUTO_INCREMENT, author_id INT NOT NULL, \
             title TEXT, FOREIGN KEY (author_id) REFERENCES authors(id));",
        )
        .unwrap();
        db.execute(
            "INSERT INTO authors (name, banned) VALUES ('a', FALSE), ('b', TRUE), \
             ('c', TRUE)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO books (author_id, title) VALUES (1, 't1'), (2, 't2'), (3, 't3'), \
             (2, 't4')",
        )
        .unwrap();
        db
    }

    #[test]
    fn in_select_filters_rows() {
        let db = db();
        let r = db
            .execute(
                "SELECT title FROM books WHERE author_id IN \
                 (SELECT id FROM authors WHERE banned = TRUE) ORDER BY id",
            )
            .unwrap();
        let titles: Vec<String> = r.rows.iter().map(|x| x[0].to_string()).collect();
        assert_eq!(titles, vec!["t2", "t3", "t4"]);
    }

    #[test]
    fn not_in_select() {
        let db = db();
        let r = db
            .execute(
                "SELECT title FROM books WHERE author_id NOT IN \
                 (SELECT id FROM authors WHERE banned = TRUE)",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Text("t1".into()));
    }

    #[test]
    fn subquery_in_update_and_delete_predicates() {
        let db = db();
        let n = db
            .execute(
                "UPDATE books SET title = '[banned]' WHERE author_id IN \
                 (SELECT id FROM authors WHERE banned = TRUE)",
            )
            .unwrap();
        assert_eq!(n.affected, 3);
        let d = db
            .execute(
                "DELETE FROM books WHERE author_id IN \
                 (SELECT id FROM authors WHERE banned = TRUE)",
            )
            .unwrap();
        assert_eq!(d.affected, 3);
        assert_eq!(db.row_count("books").unwrap(), 1);
    }

    #[test]
    fn nested_subqueries() {
        let db = db();
        let r = db
            .execute(
                "SELECT COUNT(*) FROM authors WHERE id IN \
                 (SELECT author_id FROM books WHERE author_id IN \
                  (SELECT id FROM authors WHERE banned = TRUE))",
            )
            .unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(2));
    }

    #[test]
    fn multi_column_subquery_rejected() {
        let db = db();
        assert!(db
            .execute("SELECT * FROM books WHERE author_id IN (SELECT id, name FROM authors)")
            .is_err());
    }

    #[test]
    fn empty_subquery_matches_nothing() {
        let db = db();
        let r = db
            .execute(
                "SELECT COUNT(*) FROM books WHERE author_id IN \
                 (SELECT id FROM authors WHERE name = 'nobody')",
            )
            .unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(0));
    }

    #[test]
    fn subquery_counts_as_statement() {
        let db = db();
        db.reset_stats();
        db.execute("SELECT title FROM books WHERE author_id IN (SELECT id FROM authors)")
            .unwrap();
        let s = db.stats();
        assert_eq!(s.selects, 2, "outer + subquery");
    }
}
