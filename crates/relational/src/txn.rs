//! Transactions: an undo log replayed in reverse on rollback.
//!
//! Every mutating operation appends an [`UndoOp`] describing how to restore
//! the previous state. Statements outside an explicit `BEGIN`/`COMMIT` run
//! in an implicit transaction so that a mid-statement constraint violation
//! (e.g. row 3 of a multi-row INSERT) leaves the database untouched.

use crate::storage::{RowId, Table};
use crate::value::Row;

/// One entry in a transaction's undo log.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // Field names are self-describing.
pub enum UndoOp {
    /// A row was inserted; undo removes it.
    Inserted { table: String, row_id: RowId },
    /// A row was deleted; undo restores it at the same slot.
    Deleted {
        table: String,
        row_id: RowId,
        row: Row,
    },
    /// A row was updated; undo restores the old image.
    Updated {
        table: String,
        row_id: RowId,
        old_row: Row,
    },
    /// A table was created; undo drops it.
    CreatedTable { name: String },
    /// A table was dropped; undo restores the whole table.
    DroppedTable { name: String, table: Box<Table> },
    /// An index was created; undo drops it.
    CreatedIndex { table: String, index: String },
    /// AUTO_INCREMENT counter advanced; undo restores the old value.
    AutoIncrement { table: String, old_value: i64 },
    /// A table was altered (or had its FK metadata touched by a rename in
    /// a parent table); undo restores the whole pre-alter table.
    AlteredTable { name: String, table: Box<Table> },
}

/// An open transaction: its undo log plus bookkeeping.
#[derive(Debug, Default)]
pub struct Txn {
    /// Undo operations in application order (rolled back in reverse).
    pub undo: Vec<UndoOp>,
    /// Whether this is an implicit single-statement transaction.
    pub implicit: bool,
}

impl Txn {
    /// Creates an explicit transaction.
    pub fn explicit() -> Txn {
        Txn {
            undo: Vec::new(),
            implicit: false,
        }
    }

    /// Creates an implicit (single-statement) transaction.
    pub fn implicit() -> Txn {
        Txn {
            undo: Vec::new(),
            implicit: true,
        }
    }

    /// Records an undo operation.
    pub fn record(&mut self, op: UndoOp) {
        self.undo.push(op);
    }

    /// Number of recorded operations (used for partial rollback points).
    pub fn mark(&self) -> usize {
        self.undo.len()
    }
}
