//! Statement execution over the engine's internal state.
//!
//! `Inner` owns the tables and the open transaction; [`crate::Database`]
//! wraps it in a lock and exposes the public API. All mutations funnel
//! through the helpers here so that undo logging, index maintenance, and
//! constraint checks cannot be bypassed.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use edna_util::sync::lock_unpoisoned;

use crate::access::{choose_access_path, AccessPath};
use crate::error::{Error, Result};
use crate::expr::{eval, eval_predicate, BinOp, EvalContext, Expr};
use crate::parser::{AggFunc, AlterAction, Join, JoinKind, Projection, SelectStmt, Statement};
use crate::schema::{ForeignKey, ReferentialAction, TableSchema};
use crate::stats::Stats;
use crate::storage::{RowId, Table};
use crate::txn::{Txn, UndoOp};
use crate::value::{Row, Value};

/// The result of executing one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Column names (SELECT only).
    pub columns: Vec<String>,
    /// Result rows (SELECT only).
    pub rows: Vec<Row>,
    /// Rows affected (INSERT/UPDATE/DELETE).
    pub affected: usize,
    /// The AUTO_INCREMENT id assigned by the last INSERT, if any.
    pub last_insert_id: Option<i64>,
}

impl QueryResult {
    /// Position of a result column by case-insensitive name (qualified
    /// names match on their suffix too).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| {
            c.eq_ignore_ascii_case(name)
                || c.rsplit('.')
                    .next()
                    .is_some_and(|s| s.eq_ignore_ascii_case(name))
        })
    }

    /// The single value of a one-row, one-column result (e.g. `COUNT(*)`).
    pub fn scalar(&self) -> Result<&Value> {
        self.rows
            .first()
            .and_then(|r| r.first())
            .ok_or_else(|| Error::Eval("expected a scalar result".to_string()))
    }
}

/// One executed operator of a profiled SELECT (`EXPLAIN ANALYZE`): what
/// ran, how many rows it produced, and the wall-clock time it took.
#[derive(Debug, Clone)]
pub(crate) struct OpProfile {
    /// Operator kind (`scan`, `probe`, `join`, `filter`, ...).
    pub op: &'static str,
    /// Human-readable specifics (table, index, join target).
    pub detail: String,
    /// Rows the operator produced.
    pub rows: u64,
    /// Wall-clock time spent in the operator, microseconds.
    pub elapsed_us: u64,
}

/// The engine's internal, lock-protected state.
pub(crate) struct Inner {
    /// Tables keyed by lowercase name.
    pub tables: HashMap<String, Table>,
    /// Table names in creation order (for deterministic iteration).
    pub table_order: Vec<String>,
    /// The open transaction, if any.
    pub txn: Option<Txn>,
    /// Logical clock returned by `NOW()`.
    pub now: i64,
    /// Cached access-path decisions keyed by
    /// `(lowercase table name, predicate text)`. The predicate text is the
    /// *pre-bind* form (`id = $UID`), so one entry serves every binding of
    /// a parameterized shape. Interior mutability lets the read path
    /// populate it under the engine's shared (read) lock. Cleared by any
    /// DDL — including DDL undone by a rollback.
    plan_cache: Mutex<HashMap<(String, String), AccessPath>>,
}

/// Entries the plan cache may hold before it is wholesale cleared; a
/// backstop against unbounded per-row literal predicates, far above the
/// handful of shapes a disguise workload produces.
const PLAN_CACHE_CAP: usize = 1024;

impl Inner {
    pub fn new() -> Inner {
        Inner {
            tables: HashMap::new(),
            table_order: Vec::new(),
            txn: None,
            now: 0,
            plan_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The clock `NOW()` evaluates against: a thread-local override (a
    /// policy run evaluating at its tick's timestamp) if one is active on
    /// the executing thread, otherwise the global clock.
    pub(crate) fn clock(&self) -> i64 {
        crate::clock::current().unwrap_or(self.now)
    }

    /// Drops every cached access path. Called on any schema change: a new
    /// index can flip a scan to a probe, a drop can do the reverse.
    pub(crate) fn invalidate_plans(&self) {
        lock_unpoisoned(&self.plan_cache).clear();
    }

    /// The access path for `table` under the *pre-bind* predicate `pred`,
    /// served from the plan cache when the shape was seen before.
    pub(crate) fn cached_access_path(
        &self,
        table: &Table,
        pred: &Expr,
        stats: &Stats,
    ) -> AccessPath {
        let key = (table.schema.name.to_lowercase(), pred.to_string());
        // Poison-tolerant: the cache only ever holds complete entries, so
        // a panic elsewhere must not wedge every later plan lookup.
        let mut cache = lock_unpoisoned(&self.plan_cache);
        if let Some(path) = cache.get(&key) {
            stats.bump(&stats.plan_cache_hits, 1);
            return path.clone();
        }
        let path = choose_access_path(table, Some(pred));
        if cache.len() >= PLAN_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, path.clone());
        path
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_lowercase())
            .ok_or_else(|| Error::NoSuchTable(name.to_string()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_lowercase())
            .ok_or_else(|| Error::NoSuchTable(name.to_string()))
    }

    fn record(&mut self, op: UndoOp) {
        if let Some(txn) = self.txn.as_mut() {
            txn.record(op);
        }
    }

    /// Executes one parsed statement. The caller manages the implicit
    /// transaction wrapper.
    pub fn execute_stmt(
        &mut self,
        stmt: &Statement,
        params: &HashMap<String, Value>,
        stats: &Stats,
    ) -> Result<QueryResult> {
        stats.bump(&stats.statements, 1);
        match stmt {
            Statement::CreateTable(schema) => self.create_table(schema.clone()),
            Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            } => self.create_index(name, table, column, *unique),
            Statement::DropTable { name, if_exists } => self.drop_table(name, *if_exists),
            Statement::AlterTable { table, action } => self.alter_table(table, action),
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                stats.bump(&stats.inserts, 1);
                self.insert(table, columns.as_deref(), rows, params, stats)
            }
            Statement::Select(sel) => {
                stats.bump(&stats.selects, 1);
                self.select(sel, params, stats)
            }
            Statement::Update {
                table,
                sets,
                where_,
            } => {
                stats.bump(&stats.updates, 1);
                self.update(table, sets, where_.as_ref(), params, stats)
            }
            Statement::Delete { table, where_ } => {
                stats.bump(&stats.deletes, 1);
                self.delete(table, where_.as_ref(), params, stats)
            }
            // BEGIN/COMMIT/ROLLBACK are intercepted by Database::execute.
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(Error::Txn(
                "transaction statements must go through Database".to_string(),
            )),
        }
    }

    // ---- DDL ---------------------------------------------------------------

    fn create_table(&mut self, schema: TableSchema) -> Result<QueryResult> {
        schema.validate()?;
        let key = schema.name.to_lowercase();
        if self.tables.contains_key(&key) {
            return Err(Error::AlreadyExists(schema.name));
        }
        // Validate FK targets exist (self-reference allowed).
        for fk in &schema.foreign_keys {
            if !fk.parent_table.eq_ignore_ascii_case(&schema.name) {
                let parent = self.table(&fk.parent_table)?;
                parent.schema.require_column(&fk.parent_column)?;
            } else {
                schema.require_column(&fk.parent_column)?;
            }
        }
        let name = schema.name.clone();
        self.tables.insert(key.clone(), Table::new(schema));
        self.table_order.push(key);
        self.record(UndoOp::CreatedTable { name });
        self.invalidate_plans();
        Ok(QueryResult::default())
    }

    fn create_index(
        &mut self,
        name: &str,
        table: &str,
        column: &str,
        unique: bool,
    ) -> Result<QueryResult> {
        let t = self.table_mut(table)?;
        let col = t.schema.require_column(column)?;
        if t.indexes
            .iter()
            .any(|ix| ix.name.eq_ignore_ascii_case(name))
        {
            return Err(Error::AlreadyExists(name.to_string()));
        }
        t.add_index(name.to_string(), col, unique)?;
        let table_name = t.schema.name.clone();
        self.record(UndoOp::CreatedIndex {
            table: table_name,
            index: name.to_string(),
        });
        self.invalidate_plans();
        Ok(QueryResult::default())
    }

    fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<QueryResult> {
        let key = name.to_lowercase();
        match self.tables.remove(&key) {
            Some(t) => {
                self.table_order.retain(|n| n != &key);
                self.record(UndoOp::DroppedTable {
                    name: t.schema.name.clone(),
                    table: Box::new(t),
                });
                self.invalidate_plans();
                Ok(QueryResult::default())
            }
            None if if_exists => Ok(QueryResult::default()),
            None => Err(Error::NoSuchTable(name.to_string())),
        }
    }

    fn alter_table(&mut self, table: &str, action: &AlterAction) -> Result<QueryResult> {
        // Snapshot for undo before any mutation.
        let snapshot = self.table(table)?.clone();
        let table_name = snapshot.schema.name.clone();
        match action {
            AlterAction::AddColumn(col) => {
                if col.auto_increment {
                    return Err(Error::Unsupported(
                        "ALTER TABLE ADD COLUMN ... AUTO_INCREMENT".to_string(),
                    ));
                }
                if col.not_null && col.default.is_none() {
                    return Err(Error::NotNullViolation {
                        table: table_name,
                        column: col.name.clone(),
                    });
                }
                let t = self.table_mut(table)?;
                if t.schema.column_index(&col.name).is_some() {
                    return Err(Error::AlreadyExists(format!("{table_name}.{}", col.name)));
                }
                let fill = col.default.clone().unwrap_or(Value::Null);
                t.schema.columns.push(col.clone());
                t.fill_new_column(fill);
                if col.unique {
                    let pos = t.schema.columns.len() - 1;
                    t.add_index(format!("_auto_{table_name}_{}", col.name), pos, true)?;
                }
            }
            AlterAction::DropColumn(name) => {
                let t = self.table(table)?;
                let pos = t.schema.require_column(name)?;
                if t.schema.primary_key == Some(pos) {
                    return Err(Error::Unsupported(format!(
                        "cannot drop primary key column {table_name}.{name}"
                    )));
                }
                if t.schema.foreign_key_on(name).is_some() {
                    return Err(Error::Unsupported(format!(
                        "cannot drop foreign-key column {table_name}.{name}"
                    )));
                }
                // Referenced by any child table's FK?
                for (child, fk) in self.children_of(&table_name) {
                    if fk.parent_column.eq_ignore_ascii_case(name) {
                        return Err(Error::Unsupported(format!(
                            "cannot drop {table_name}.{name}: referenced by {child}.{}",
                            fk.column
                        )));
                    }
                }
                let t = self.table_mut(table)?;
                t.drop_column(pos);
            }
            AlterAction::RenameColumn { from, to } => {
                let t = self.table(table)?;
                let pos = t.schema.require_column(from)?;
                if t.schema.column_index(to).is_some() {
                    return Err(Error::AlreadyExists(format!("{table_name}.{to}")));
                }
                // Child tables referencing the renamed parent column need
                // their FK metadata updated (and undo snapshots).
                let children: Vec<(String, String)> = self
                    .children_of(&table_name)
                    .into_iter()
                    .filter(|(_, fk)| fk.parent_column.eq_ignore_ascii_case(from))
                    .map(|(child, fk)| (child, fk.column))
                    .collect();
                for (child, _) in &children {
                    let child_snapshot = self.table(child)?.clone();
                    let child_name = child_snapshot.schema.name.clone();
                    self.record(UndoOp::AlteredTable {
                        name: child_name,
                        table: Box::new(child_snapshot),
                    });
                }
                for (child, fk_col) in &children {
                    let ct = self.table_mut(child)?;
                    for fk in &mut ct.schema.foreign_keys {
                        if fk.parent_table.eq_ignore_ascii_case(&table_name)
                            && fk.column.eq_ignore_ascii_case(fk_col)
                        {
                            fk.parent_column = to.clone();
                        }
                    }
                }
                let t = self.table_mut(table)?;
                t.schema.columns[pos].name = to.clone();
                for fk in &mut t.schema.foreign_keys {
                    if fk.column.eq_ignore_ascii_case(from) {
                        fk.column = to.clone();
                    }
                }
            }
        }
        self.record(UndoOp::AlteredTable {
            name: table_name,
            table: Box::new(snapshot),
        });
        self.invalidate_plans();
        Ok(QueryResult::default())
    }

    // ---- INSERT ------------------------------------------------------------

    fn insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<Expr>],
        params: &HashMap<String, Value>,
        stats: &Stats,
    ) -> Result<QueryResult> {
        // Resolve target column positions.
        let (schema, positions): (TableSchema, Vec<usize>) = {
            let t = self.table(table)?;
            let positions = match columns {
                Some(cols) => cols
                    .iter()
                    .map(|c| t.schema.require_column(c))
                    .collect::<Result<Vec<_>>>()?,
                None => (0..t.schema.arity()).collect(),
            };
            (t.schema.clone(), positions)
        };
        let empty_cols: Vec<String> = Vec::new();
        let empty_row: Vec<Value> = Vec::new();
        let mut last_insert_id = None;
        let mut affected = 0usize;
        for exprs in rows {
            if exprs.len() != positions.len() {
                return Err(Error::Eval(format!(
                    "INSERT into {table}: {} values for {} columns",
                    exprs.len(),
                    positions.len()
                )));
            }
            // Evaluate value expressions in a row-free context.
            let ctx = EvalContext {
                columns: &empty_cols,
                row: &empty_row,
                params,
                now: self.clock(),
            };
            let mut row: Row = schema
                .columns
                .iter()
                .map(|c| c.default.clone().unwrap_or(Value::Null))
                .collect();
            for (expr, &pos) in exprs.iter().zip(&positions) {
                row[pos] = eval(expr, &ctx)?;
            }
            let id = self.insert_row_checked(table, row, stats)?;
            if let Some(v) = id {
                last_insert_id = Some(v);
            }
            affected += 1;
        }
        Ok(QueryResult {
            affected,
            last_insert_id,
            ..QueryResult::default()
        })
    }

    /// Inserts one materialized row with all checks; returns the
    /// auto-increment value if one was assigned.
    pub fn insert_row_checked(
        &mut self,
        table: &str,
        mut row: Row,
        stats: &Stats,
    ) -> Result<Option<i64>> {
        let schema = self.table(table)?.schema.clone();
        if row.len() != schema.arity() {
            return Err(Error::Eval(format!(
                "row arity {} != table arity {} for {table}",
                row.len(),
                schema.arity()
            )));
        }
        // Coerce to declared types.
        for (i, col) in schema.columns.iter().enumerate() {
            row[i] = row[i].coerce_to(col.ty)?;
        }
        // AUTO_INCREMENT assignment.
        //
        // Counter-rollback semantics (deliberately *not* MySQL's): every
        // bump of `next_auto` — the auto-assign path below and the
        // keep-ahead bump for explicit values — logs an
        // `UndoOp::AutoIncrement` carrying the prior value, and rollback
        // restores it (see `rollback_to`). Snapshots persist `next_auto`
        // and restore it verbatim (`Database::from_snapshots`). MySQL
        // instead lets rolled-back transactions burn ids; we choose full
        // restore so a rolled-back disguise leaves the database
        // bit-identical, which the fault-injection suite asserts.
        let mut assigned: Option<i64> = None;
        for (i, col) in schema.columns.iter().enumerate() {
            if col.auto_increment && row[i].is_null() {
                let t = self.table_mut(table)?;
                let v = t.next_auto;
                t.next_auto += 1;
                let old_value = v;
                row[i] = Value::Int(v);
                assigned = Some(v);
                self.record(UndoOp::AutoIncrement {
                    table: schema.name.clone(),
                    old_value,
                });
            } else if col.auto_increment {
                // Keep the counter ahead of explicit values.
                if let Value::Int(v) = row[i] {
                    let t = self.table_mut(table)?;
                    if v >= t.next_auto {
                        let old_value = t.next_auto;
                        t.next_auto = v + 1;
                        self.record(UndoOp::AutoIncrement {
                            table: schema.name.clone(),
                            old_value,
                        });
                    }
                }
            }
        }
        // NOT NULL.
        for (i, col) in schema.columns.iter().enumerate() {
            if col.not_null && row[i].is_null() {
                return Err(Error::NotNullViolation {
                    table: schema.name.clone(),
                    column: col.name.clone(),
                });
            }
        }
        // UNIQUE.
        self.table(table)?.check_unique(&row, None)?;
        // FOREIGN KEY parents.
        for fk in &schema.foreign_keys {
            let col = schema.require_column(&fk.column)?;
            self.check_fk_parent(fk, &row[col], stats)?;
        }
        let t = self.table_mut(table)?;
        let row_id = t.insert_unchecked(row);
        stats.bump(&stats.rows_written, 1);
        self.record(UndoOp::Inserted {
            table: schema.name.clone(),
            row_id,
        });
        Ok(assigned)
    }

    fn check_fk_parent(&self, fk: &ForeignKey, value: &Value, stats: &Stats) -> Result<()> {
        if value.is_null() {
            return Ok(());
        }
        let parent = self.table(&fk.parent_table)?;
        let pcol = parent.schema.require_column(&fk.parent_column)?;
        let found = match parent.index_on(pcol) {
            Some(ix) => {
                stats.bump(&stats.index_probes, 1);
                !ix.lookup(value).is_empty()
            }
            None => {
                stats.bump(&stats.table_scans, 1);
                parent
                    .iter()
                    .any(|(_, r)| r[pcol].sql_eq(value) == Some(true))
            }
        };
        if found {
            Ok(())
        } else {
            Err(Error::ForeignKeyViolation {
                table: fk.parent_table.clone(),
                column: fk.column.clone(),
                detail: format!("no parent row with {} = {value}", fk.parent_column),
            })
        }
    }

    // ---- row selection -------------------------------------------------------

    /// Replaces every uncorrelated `IN (SELECT ...)` in `expr` with an
    /// `IN (v1, v2, ...)` list by running the subquery once. Subqueries
    /// must produce exactly one column; their rows become the list.
    pub fn resolve_subqueries(
        &self,
        expr: &Expr,
        params: &HashMap<String, Value>,
        stats: &Stats,
    ) -> Result<Expr> {
        Ok(match expr {
            Expr::InSelect {
                expr: inner,
                select,
                negated,
            } => {
                stats.bump(&stats.statements, 1);
                stats.bump(&stats.selects, 1);
                let result = self.select(select, params, stats)?;
                if result.columns.len() != 1 {
                    return Err(Error::Eval(format!(
                        "IN subquery must return one column, got {}",
                        result.columns.len()
                    )));
                }
                let list = result
                    .rows
                    .into_iter()
                    .map(|mut r| Expr::Literal(r.remove(0)))
                    .collect();
                Expr::InList {
                    expr: Box::new(self.resolve_subqueries(inner, params, stats)?),
                    list,
                    negated: *negated,
                }
            }
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(self.resolve_subqueries(expr, params, stats)?),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(self.resolve_subqueries(lhs, params, stats)?),
                rhs: Box::new(self.resolve_subqueries(rhs, params, stats)?),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.resolve_subqueries(expr, params, stats)?),
                list: list
                    .iter()
                    .map(|e| self.resolve_subqueries(e, params, stats))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.resolve_subqueries(expr, params, stats)?),
                negated: *negated,
            },
            other => other.clone(),
        })
    }

    /// Row ids in `table` matching the optional predicate, using an index
    /// when the predicate pins an indexed column to a constant.
    pub fn matching_row_ids(
        &self,
        table: &str,
        where_: Option<&Expr>,
        params: &HashMap<String, Value>,
        stats: &Stats,
    ) -> Result<Vec<RowId>> {
        let bound = match where_ {
            Some(e) => {
                let resolved = self.resolve_subqueries(e, params, stats)?;
                Some(resolved.bind_params(params)?)
            }
            None => None,
        };
        let t = self.table(table)?;
        let col_names: Vec<String> = t.schema.columns.iter().map(|c| c.name.clone()).collect();
        // Access-path selection goes through the shared chooser (cached on
        // the pre-bind predicate text), so execution and `explain` decide
        // identically. The probe value itself comes from the *bound*
        // predicate; if it cannot be extracted (or the cached index is
        // gone), fall back defensively to a scan.
        let path = match where_ {
            Some(orig) => self.cached_access_path(t, orig, stats),
            None => AccessPath::FullScan,
        };
        let via_index: Option<Vec<RowId>> = match (&path, &bound) {
            (AccessPath::IndexProbe { index, column }, Some(pred)) => {
                pred.equality_constant(column).and_then(|v| {
                    t.indexes
                        .iter()
                        .find(|ix| ix.name.eq_ignore_ascii_case(index))
                        .map(|ix| ix.lookup(&v).to_vec())
                })
            }
            _ => None,
        };
        let candidates: Vec<RowId> = match via_index {
            Some(ids) => {
                stats.bump(&stats.index_probes, 1);
                ids
            }
            None => {
                stats.bump(&stats.table_scans, 1);
                t.row_ids()
            }
        };
        let mut out = Vec::new();
        for id in candidates {
            let row = t.get(id).expect("candidate ids are live");
            let keep = match &bound {
                Some(pred) => {
                    let ctx = EvalContext {
                        columns: &col_names,
                        row,
                        params,
                        now: self.clock(),
                    };
                    eval_predicate(pred, &ctx)?
                }
                None => true,
            };
            if keep {
                out.push(id);
            }
        }
        stats.bump(&stats.rows_read, out.len() as u64);
        Ok(out)
    }

    // ---- UPDATE ------------------------------------------------------------

    fn update(
        &mut self,
        table: &str,
        sets: &[(String, Expr)],
        where_: Option<&Expr>,
        params: &HashMap<String, Value>,
        stats: &Stats,
    ) -> Result<QueryResult> {
        let ids = self.matching_row_ids(table, where_, params, stats)?;
        let schema = self.table(table)?.schema.clone();
        let set_positions: Vec<(usize, &Expr)> = sets
            .iter()
            .map(|(c, e)| Ok((schema.require_column(c)?, e)))
            .collect::<Result<Vec<_>>>()?;
        let col_names: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
        let mut affected = 0usize;
        for id in ids {
            let old_row = self.table(table)?.get(id).expect("live row").clone();
            let mut new_row = old_row.clone();
            for (pos, expr) in &set_positions {
                let ctx = EvalContext {
                    columns: &col_names,
                    row: &old_row,
                    params,
                    now: self.clock(),
                };
                new_row[*pos] = eval(expr, &ctx)?;
            }
            self.update_row_checked(table, id, new_row, stats)?;
            affected += 1;
        }
        Ok(QueryResult {
            affected,
            ..QueryResult::default()
        })
    }

    /// Replaces row `id` with `new_row`, enforcing all constraints.
    pub fn update_row_checked(
        &mut self,
        table: &str,
        id: RowId,
        mut new_row: Row,
        stats: &Stats,
    ) -> Result<()> {
        let schema = self.table(table)?.schema.clone();
        let old_row = self
            .table(table)?
            .get(id)
            .ok_or_else(|| Error::Eval("row vanished".into()))?
            .clone();
        for (i, col) in schema.columns.iter().enumerate() {
            new_row[i] = new_row[i].coerce_to(col.ty)?;
            if col.not_null && new_row[i].is_null() {
                return Err(Error::NotNullViolation {
                    table: schema.name.clone(),
                    column: col.name.clone(),
                });
            }
        }
        self.table(table)?.check_unique(&new_row, Some(id))?;
        // FK: child side — changed FK columns must reference existing parents.
        for fk in &schema.foreign_keys {
            let col = schema.require_column(&fk.column)?;
            if old_row[col] != new_row[col] {
                self.check_fk_parent(fk, &new_row[col], stats)?;
            }
        }
        // FK: parent side — a changed referenced key must not strand children.
        for (child_name, fk) in self.children_of(&schema.name) {
            let pcol = schema.require_column(&fk.parent_column)?;
            if old_row[pcol] != new_row[pcol] {
                let referencing =
                    self.child_rows_referencing(&child_name, &fk, &old_row[pcol], stats)?;
                if !referencing.is_empty() {
                    return Err(Error::ForeignKeyViolation {
                        table: schema.name.clone(),
                        column: fk.parent_column.clone(),
                        detail: format!(
                            "cannot change referenced key: {} row(s) in {child_name} reference it",
                            referencing.len()
                        ),
                    });
                }
            }
        }
        let t = self.table_mut(table)?;
        t.replace(id, new_row);
        stats.bump(&stats.rows_written, 1);
        self.record(UndoOp::Updated {
            table: schema.name.clone(),
            row_id: id,
            old_row,
        });
        Ok(())
    }

    /// Applies a batch of per-row column writes, each row addressed by its
    /// primary-key value. All constraint checks and undo logging of
    /// [`Inner::update_row_checked`] apply per row; rows whose primary key
    /// no longer exists are skipped. Returns the number of rows updated.
    pub fn update_rows_by_pk(
        &mut self,
        table: &str,
        updates: &[(Value, Vec<(usize, Value)>)],
        stats: &Stats,
    ) -> Result<usize> {
        let (pk_col, table_name) = {
            let t = self.table(table)?;
            let pk = t.schema.primary_key.ok_or_else(|| {
                Error::Eval(format!(
                    "{}: no primary key for batch update",
                    t.schema.name
                ))
            })?;
            (pk, t.schema.name.clone())
        };
        let mut affected = 0usize;
        for (pk_value, writes) in updates {
            let id = {
                let t = self.table(table)?;
                let ids = match t.index_on(pk_col) {
                    Some(ix) => {
                        stats.bump(&stats.index_probes, 1);
                        ix.lookup(pk_value).to_vec()
                    }
                    None => {
                        stats.bump(&stats.table_scans, 1);
                        t.iter()
                            .filter(|(_, r)| r[pk_col].sql_eq(pk_value) == Some(true))
                            .map(|(id, _)| id)
                            .collect()
                    }
                };
                match ids.first() {
                    Some(&id) => id,
                    None => continue,
                }
            };
            let mut new_row = self
                .table(table)?
                .get(id)
                .ok_or_else(|| Error::Eval(format!("{table_name}: indexed row vanished")))?
                .clone();
            for (col, value) in writes {
                if *col >= new_row.len() {
                    return Err(Error::Eval(format!(
                        "{table_name}: column index {col} out of range in batch update"
                    )));
                }
                new_row[*col] = value.clone();
            }
            stats.bump(&stats.rows_read, 1);
            self.update_row_checked(table, id, new_row, stats)?;
            affected += 1;
        }
        Ok(affected)
    }

    /// Inserts a batch of fully materialized rows with all checks, returning
    /// the auto-increment value assigned to each (if any).
    pub fn insert_rows(
        &mut self,
        table: &str,
        rows: Vec<Row>,
        stats: &Stats,
    ) -> Result<Vec<Option<i64>>> {
        let mut assigned = Vec::with_capacity(rows.len());
        for row in rows {
            assigned.push(self.insert_row_checked(table, row, stats)?);
        }
        Ok(assigned)
    }

    // ---- DELETE ------------------------------------------------------------

    fn delete(
        &mut self,
        table: &str,
        where_: Option<&Expr>,
        params: &HashMap<String, Value>,
        stats: &Stats,
    ) -> Result<QueryResult> {
        let ids = self.matching_row_ids(table, where_, params, stats)?;
        let mut affected = 0usize;
        for id in ids {
            // Cascades may have removed this row already.
            if self.table(table)?.get(id).is_some() {
                affected += self.delete_row_checked(table, id, stats)?;
            }
        }
        Ok(QueryResult {
            affected,
            ..QueryResult::default()
        })
    }

    /// Deletes row `id`, applying referential actions; returns the total
    /// number of rows removed (including cascades).
    pub fn delete_row_checked(&mut self, table: &str, id: RowId, stats: &Stats) -> Result<usize> {
        let mut scratch = Vec::new();
        self.delete_row_collect(table, id, stats, &mut scratch)
    }

    /// Like [`Inner::delete_row_checked`], but records every removed row
    /// (including cascades) into `collected` in deletion order
    /// (children before their parents).
    pub fn delete_row_collect(
        &mut self,
        table: &str,
        id: RowId,
        stats: &Stats,
        collected: &mut Vec<(String, Row)>,
    ) -> Result<usize> {
        let schema = self.table(table)?.schema.clone();
        let row = self
            .table(table)?
            .get(id)
            .ok_or_else(|| Error::Eval("row vanished".into()))?
            .clone();
        let mut removed = 0usize;
        for (child_name, fk) in self.children_of(&schema.name) {
            let pcol = schema.require_column(&fk.parent_column)?;
            let key = &row[pcol];
            if key.is_null() {
                continue;
            }
            let child_ids = self.child_rows_referencing(&child_name, &fk, key, stats)?;
            if child_ids.is_empty() {
                continue;
            }
            match fk.on_delete {
                ReferentialAction::Restrict => {
                    return Err(Error::ForeignKeyViolation {
                        table: schema.name.clone(),
                        column: fk.parent_column.clone(),
                        detail: format!(
                            "{} row(s) in {child_name} reference the deleted row",
                            child_ids.len()
                        ),
                    });
                }
                ReferentialAction::Cascade => {
                    for cid in child_ids {
                        if self.table(&child_name)?.get(cid).is_some() {
                            removed +=
                                self.delete_row_collect(&child_name, cid, stats, collected)?;
                        }
                    }
                }
                ReferentialAction::SetNull => {
                    let child_schema = self.table(&child_name)?.schema.clone();
                    let ccol = child_schema.require_column(&fk.column)?;
                    for cid in child_ids {
                        let mut new_row = self.table(&child_name)?.get(cid).expect("live").clone();
                        new_row[ccol] = Value::Null;
                        self.update_row_checked(&child_name, cid, new_row, stats)?;
                    }
                }
            }
        }
        let t = self.table_mut(table)?;
        if let Some(old) = t.remove(id) {
            stats.bump(&stats.rows_written, 1);
            collected.push((schema.name.clone(), old.clone()));
            self.record(UndoOp::Deleted {
                table: schema.name.clone(),
                row_id: id,
                row: old,
            });
            removed += 1;
        }
        Ok(removed)
    }

    /// All `(child_table, fk)` relationships referencing `parent`.
    pub fn children_of(&self, parent: &str) -> Vec<(String, ForeignKey)> {
        let mut out = Vec::new();
        for key in &self.table_order {
            let t = &self.tables[key];
            for fk in &t.schema.foreign_keys {
                if fk.parent_table.eq_ignore_ascii_case(parent) {
                    out.push((t.schema.name.clone(), fk.clone()));
                }
            }
        }
        out
    }

    fn child_rows_referencing(
        &self,
        child: &str,
        fk: &ForeignKey,
        key: &Value,
        stats: &Stats,
    ) -> Result<Vec<RowId>> {
        let t = self.table(child)?;
        let ccol = t.schema.require_column(&fk.column)?;
        match t.index_on(ccol) {
            Some(ix) => {
                stats.bump(&stats.index_probes, 1);
                Ok(ix.lookup(key).to_vec())
            }
            None => {
                stats.bump(&stats.table_scans, 1);
                Ok(t.iter()
                    .filter(|(_, r)| r[ccol].sql_eq(key) == Some(true))
                    .map(|(id, _)| id)
                    .collect())
            }
        }
    }

    // ---- SELECT ------------------------------------------------------------

    pub(crate) fn select(
        &self,
        sel: &SelectStmt,
        params: &HashMap<String, Value>,
        stats: &Stats,
    ) -> Result<QueryResult> {
        self.select_impl(sel, params, stats, None)
    }

    /// Like [`Inner::select`], but records one [`OpProfile`] per executed
    /// operator into `profile` (the `EXPLAIN ANALYZE` backend).
    pub(crate) fn select_profiled(
        &self,
        sel: &SelectStmt,
        params: &HashMap<String, Value>,
        stats: &Stats,
        profile: &mut Vec<OpProfile>,
    ) -> Result<QueryResult> {
        self.select_impl(sel, params, stats, Some(profile))
    }

    fn select_impl(
        &self,
        sel: &SelectStmt,
        params: &HashMap<String, Value>,
        stats: &Stats,
        mut profile: Option<&mut Vec<OpProfile>>,
    ) -> Result<QueryResult> {
        let note = |profile: &mut Option<&mut Vec<OpProfile>>,
                    op: &'static str,
                    detail: String,
                    rows: u64,
                    since: Instant| {
            if let Some(p) = profile.as_deref_mut() {
                p.push(OpProfile {
                    op,
                    detail,
                    rows,
                    elapsed_us: since.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                });
            }
        };
        let resolved_where = match &sel.where_ {
            Some(p) => Some(self.resolve_subqueries(p, params, stats)?),
            None => None,
        };
        let access_started = Instant::now();
        // Build the joined relation: qualified column names + rows. A
        // join-free SELECT asks the shared access-path chooser (the same
        // cached decision `explain` reports) whether the WHERE clause pins
        // an indexed column; if so only the probe's candidates are
        // materialized. The full predicate still runs below, so a probe
        // never changes results — only how many rows it touches.
        let (mut col_names, mut rows) = if sel.joins.is_empty() {
            let t = self.table(&sel.from)?;
            let prefix = sel.from_alias.as_deref().unwrap_or(&t.schema.name);
            let cols: Vec<String> = t
                .schema
                .columns
                .iter()
                .map(|c| format!("{prefix}.{}", c.name))
                .collect();
            let path = match &sel.where_ {
                Some(orig) => self.cached_access_path(t, orig, stats),
                None => AccessPath::FullScan,
            };
            let probe: Option<Vec<crate::storage::RowId>> = match &path {
                AccessPath::IndexProbe { index, column } => resolved_where.as_ref().and_then(|p| {
                    p.bind_params(params)
                        .ok()
                        .and_then(|bound| bound.equality_constant(column))
                        .and_then(|v| {
                            t.indexes
                                .iter()
                                .find(|ix| ix.name.eq_ignore_ascii_case(index))
                                .map(|ix| ix.lookup(&v).to_vec())
                        })
                }),
                AccessPath::FullScan => None,
            };
            let probe_used = probe.is_some();
            let rows: Vec<Row> = match probe {
                Some(ids) => {
                    stats.bump(&stats.index_probes, 1);
                    ids.into_iter()
                        .map(|id| t.get(id).expect("index ids are live").clone())
                        .collect()
                }
                None => {
                    stats.bump(&stats.table_scans, 1);
                    t.iter().map(|(_, r)| r.clone()).collect()
                }
            };
            let (op, detail) = match (&path, probe_used) {
                (AccessPath::IndexProbe { index, .. }, true) => {
                    ("probe", format!("{} via {}", sel.from, index))
                }
                _ => ("scan", sel.from.clone()),
            };
            note(&mut profile, op, detail, rows.len() as u64, access_started);
            (cols, rows)
        } else {
            let base = self.base_relation(&sel.from, sel.from_alias.as_deref())?;
            stats.bump(&stats.table_scans, 1);
            note(
                &mut profile,
                "scan",
                sel.from.clone(),
                base.1.len() as u64,
                access_started,
            );
            base
        };
        for join in &sel.joins {
            let join_started = Instant::now();
            let (jc, jr) = self.base_relation(&join.table, join.alias.as_deref())?;
            (col_names, rows) =
                self.join_relations(col_names, rows, jc, jr, join, params, stats)?;
            note(
                &mut profile,
                "join",
                join.table.clone(),
                rows.len() as u64,
                join_started,
            );
        }
        // Filter.
        let filter_started = Instant::now();
        let had_filter = resolved_where.is_some();
        let mut filtered = Vec::new();
        if let Some(pred) = &resolved_where {
            for row in rows {
                let ctx = EvalContext {
                    columns: &col_names,
                    row: &row,
                    params,
                    now: self.clock(),
                };
                if eval_predicate(pred, &ctx)? {
                    filtered.push(row);
                }
            }
        } else {
            filtered = rows;
        }
        stats.bump(&stats.rows_read, filtered.len() as u64);
        if had_filter {
            note(
                &mut profile,
                "filter",
                "where".to_string(),
                filtered.len() as u64,
                filter_started,
            );
        }

        let project_started = Instant::now();
        let has_aggregates = sel
            .projections
            .iter()
            .any(|p| matches!(p, Projection::Aggregate { .. }));
        let aggregated = has_aggregates || !sel.group_by.is_empty();
        let mut result = if aggregated {
            self.project_aggregate(sel, &col_names, filtered, params)?
        } else {
            self.project_plain(sel, &col_names, filtered, params)?
        };
        note(
            &mut profile,
            if aggregated { "aggregate" } else { "project" },
            if sel.order_by.is_empty() {
                String::new()
            } else {
                "ordered".to_string()
            },
            result.rows.len() as u64,
            project_started,
        );
        if sel.distinct {
            let distinct_started = Instant::now();
            let mut seen = std::collections::HashSet::new();
            result.rows.retain(|r| {
                let key: String = r
                    .iter()
                    .map(|v| v.to_sql_literal())
                    .collect::<Vec<_>>()
                    .join("\u{1}");
                seen.insert(key)
            });
            note(
                &mut profile,
                "distinct",
                String::new(),
                result.rows.len() as u64,
                distinct_started,
            );
        }
        let limit_started = Instant::now();
        let had_limit = sel.offset.is_some() || sel.limit.is_some();
        if let Some(offset) = sel.offset {
            if offset >= result.rows.len() {
                result.rows.clear();
            } else {
                result.rows.drain(..offset);
            }
        }
        if let Some(limit) = sel.limit {
            result.rows.truncate(limit);
        }
        if had_limit {
            note(
                &mut profile,
                "limit",
                String::new(),
                result.rows.len() as u64,
                limit_started,
            );
        }
        Ok(result)
    }

    fn base_relation(&self, table: &str, alias: Option<&str>) -> Result<(Vec<String>, Vec<Row>)> {
        let t = self.table(table)?;
        let prefix = alias.unwrap_or(&t.schema.name);
        let cols: Vec<String> = t
            .schema
            .columns
            .iter()
            .map(|c| format!("{prefix}.{}", c.name))
            .collect();
        let rows: Vec<Row> = t.iter().map(|(_, r)| r.clone()).collect();
        Ok((cols, rows))
    }

    #[allow(clippy::too_many_arguments)]
    fn join_relations(
        &self,
        left_cols: Vec<String>,
        left_rows: Vec<Row>,
        right_cols: Vec<String>,
        right_rows: Vec<Row>,
        join: &Join,
        params: &HashMap<String, Value>,
        stats: &Stats,
    ) -> Result<(Vec<String>, Vec<Row>)> {
        let mut cols = left_cols.clone();
        cols.extend(right_cols.iter().cloned());
        // Detect equi-join `l = r` to build a hash join.
        let equi = detect_equi_join(&join.on, &left_cols, &right_cols);
        let mut out = Vec::new();
        match equi {
            Some((lpos, rpos)) => {
                stats.bump(&stats.index_probes, 1);
                let mut hash: HashMap<String, Vec<usize>> = HashMap::new();
                for (i, r) in right_rows.iter().enumerate() {
                    if !r[rpos].is_null() {
                        hash.entry(r[rpos].to_sql_literal()).or_default().push(i);
                    }
                }
                for l in &left_rows {
                    let mut matched = false;
                    if !l[lpos].is_null() {
                        if let Some(idxs) = hash.get(&l[lpos].to_sql_literal()) {
                            for &i in idxs {
                                let mut row = l.clone();
                                row.extend(right_rows[i].iter().cloned());
                                // Re-check the full ON expr in case it has extra conjuncts.
                                let ctx = EvalContext {
                                    columns: &cols,
                                    row: &row,
                                    params,
                                    now: self.clock(),
                                };
                                if eval_predicate(&join.on, &ctx)? {
                                    out.push(row);
                                    matched = true;
                                }
                            }
                        }
                    }
                    if !matched && join.kind == JoinKind::Left {
                        let mut row = l.clone();
                        row.extend(std::iter::repeat_n(Value::Null, right_cols.len()));
                        out.push(row);
                    }
                }
            }
            None => {
                stats.bump(&stats.table_scans, 1);
                for l in &left_rows {
                    let mut matched = false;
                    for r in &right_rows {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        let ctx = EvalContext {
                            columns: &cols,
                            row: &row,
                            params,
                            now: self.clock(),
                        };
                        if eval_predicate(&join.on, &ctx)? {
                            out.push(row);
                            matched = true;
                        }
                    }
                    if !matched && join.kind == JoinKind::Left {
                        let mut row = l.clone();
                        row.extend(std::iter::repeat_n(Value::Null, right_cols.len()));
                        out.push(row);
                    }
                }
            }
        }
        Ok((cols, out))
    }

    fn project_plain(
        &self,
        sel: &SelectStmt,
        col_names: &[String],
        mut rows: Vec<Row>,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        // ORDER BY evaluates against the pre-projection relation.
        if !sel.order_by.is_empty() {
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
            for row in rows {
                let ctx = EvalContext {
                    columns: col_names,
                    row: &row,
                    params,
                    now: self.clock(),
                };
                let keys = sel
                    .order_by
                    .iter()
                    .map(|k| eval(&k.expr, &ctx))
                    .collect::<Result<Vec<_>>>()?;
                keyed.push((keys, row));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, key) in sel.order_by.iter().enumerate() {
                    let ord = ka[i].total_cmp(&kb[i]);
                    let ord = if key.desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            rows = keyed.into_iter().map(|(_, r)| r).collect();
        }
        // Projection.
        let mut out_cols: Vec<String> = Vec::new();
        for p in &sel.projections {
            match p {
                Projection::Wildcard => out_cols.extend(col_names.iter().cloned()),
                Projection::Expr { expr, alias } => {
                    out_cols.push(alias.clone().unwrap_or_else(|| expr.to_string()))
                }
                Projection::Aggregate { .. } => unreachable!("aggregate handled elsewhere"),
            }
        }
        let mut out_rows = Vec::with_capacity(rows.len());
        for row in rows {
            let ctx = EvalContext {
                columns: col_names,
                row: &row,
                params,
                now: self.clock(),
            };
            let mut out = Vec::with_capacity(out_cols.len());
            for p in &sel.projections {
                match p {
                    Projection::Wildcard => out.extend(row.iter().cloned()),
                    Projection::Expr { expr, .. } => out.push(eval(expr, &ctx)?),
                    Projection::Aggregate { .. } => unreachable!(),
                }
            }
            out_rows.push(out);
        }
        Ok(QueryResult {
            columns: out_cols,
            rows: out_rows,
            ..QueryResult::default()
        })
    }

    fn project_aggregate(
        &self,
        sel: &SelectStmt,
        col_names: &[String],
        rows: Vec<Row>,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        // Group rows by the GROUP BY key (empty key = one global group).
        let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
        let mut group_index: HashMap<String, usize> = HashMap::new();
        for row in rows {
            let ctx = EvalContext {
                columns: col_names,
                row: &row,
                params,
                now: self.clock(),
            };
            let key: Vec<Value> = sel
                .group_by
                .iter()
                .map(|e| eval(e, &ctx))
                .collect::<Result<Vec<_>>>()?;
            let key_str: String = key
                .iter()
                .map(|v| v.to_sql_literal())
                .collect::<Vec<_>>()
                .join("\u{1}");
            match group_index.get(&key_str) {
                Some(&i) => groups[i].1.push(row),
                None => {
                    group_index.insert(key_str, groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        if groups.is_empty() && sel.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }
        // Output columns.
        let mut out_cols = Vec::new();
        for p in &sel.projections {
            match p {
                Projection::Wildcard => {
                    return Err(Error::Unsupported("SELECT * with aggregates".to_string()))
                }
                Projection::Expr { expr, alias } => {
                    out_cols.push(alias.clone().unwrap_or_else(|| expr.to_string()))
                }
                Projection::Aggregate {
                    func,
                    arg,
                    distinct,
                    alias,
                } => out_cols.push(alias.clone().unwrap_or_else(|| {
                    let f = match func {
                        AggFunc::Count => "COUNT",
                        AggFunc::Sum => "SUM",
                        AggFunc::Min => "MIN",
                        AggFunc::Max => "MAX",
                        AggFunc::Avg => "AVG",
                    };
                    let d = if *distinct { "DISTINCT " } else { "" };
                    match arg {
                        Some(a) => format!("{f}({d}{a})"),
                        None => format!("{f}(*)"),
                    }
                })),
            }
        }
        let mut out_rows = Vec::with_capacity(groups.len());
        for (_, grows) in &groups {
            let mut out = Vec::with_capacity(out_cols.len());
            for p in &sel.projections {
                match p {
                    Projection::Wildcard => unreachable!(),
                    Projection::Expr { expr, .. } => {
                        // Per-group scalar: evaluated on the first row.
                        match grows.first() {
                            Some(first) => {
                                let ctx = EvalContext {
                                    columns: col_names,
                                    row: first,
                                    params,
                                    now: self.clock(),
                                };
                                out.push(eval(expr, &ctx)?);
                            }
                            None => out.push(Value::Null),
                        }
                    }
                    Projection::Aggregate {
                        func,
                        arg,
                        distinct,
                        ..
                    } => out.push(self.aggregate(
                        *func,
                        arg.as_ref(),
                        *distinct,
                        col_names,
                        grows,
                        params,
                    )?),
                }
            }
            out_rows.push(out);
        }
        // HAVING filters the projected rows (aggregate aliases visible).
        if let Some(having) = &sel.having {
            let mut kept = Vec::with_capacity(out_rows.len());
            for row in out_rows {
                let ctx = EvalContext {
                    columns: &out_cols,
                    row: &row,
                    params,
                    now: self.clock(),
                };
                if eval_predicate(having, &ctx)? {
                    kept.push(row);
                }
            }
            out_rows = kept;
        }
        // ORDER BY over the projected rows (aliases visible).
        if !sel.order_by.is_empty() {
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(out_rows.len());
            for row in out_rows {
                let ctx = EvalContext {
                    columns: &out_cols,
                    row: &row,
                    params,
                    now: self.clock(),
                };
                let keys = sel
                    .order_by
                    .iter()
                    .map(|k| eval(&k.expr, &ctx))
                    .collect::<Result<Vec<_>>>()?;
                keyed.push((keys, row));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, key) in sel.order_by.iter().enumerate() {
                    let ord = ka[i].total_cmp(&kb[i]);
                    let ord = if key.desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            out_rows = keyed.into_iter().map(|(_, r)| r).collect();
        }
        Ok(QueryResult {
            columns: out_cols,
            rows: out_rows,
            ..QueryResult::default()
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn aggregate(
        &self,
        func: AggFunc,
        arg: Option<&Expr>,
        distinct: bool,
        col_names: &[String],
        rows: &[Row],
        params: &HashMap<String, Value>,
    ) -> Result<Value> {
        let mut values = Vec::new();
        if let Some(expr) = arg {
            let mut seen = std::collections::HashSet::new();
            for row in rows {
                let ctx = EvalContext {
                    columns: col_names,
                    row,
                    params,
                    now: self.clock(),
                };
                let v = eval(expr, &ctx)?;
                if v.is_null() {
                    continue;
                }
                if distinct && !seen.insert(v.to_sql_literal()) {
                    continue;
                }
                values.push(v);
            }
        }
        Ok(match func {
            AggFunc::Count => match arg {
                Some(_) => Value::Int(values.len() as i64),
                None => Value::Int(rows.len() as i64),
            },
            AggFunc::Sum => {
                if values.is_empty() {
                    Value::Null
                } else if values.iter().all(|v| matches!(v, Value::Int(_))) {
                    Value::Int(values.iter().map(|v| v.as_int().unwrap_or(0)).sum())
                } else {
                    let mut s = 0.0;
                    for v in &values {
                        s += match v {
                            Value::Int(i) => *i as f64,
                            Value::Float(f) => *f,
                            other => {
                                return Err(Error::Eval(format!("SUM of {other}")));
                            }
                        };
                    }
                    Value::Float(s)
                }
            }
            AggFunc::Min => values
                .into_iter()
                .min_by(|a, b| a.total_cmp(b))
                .unwrap_or(Value::Null),
            AggFunc::Max => values
                .into_iter()
                .max_by(|a, b| a.total_cmp(b))
                .unwrap_or(Value::Null),
            AggFunc::Avg => {
                if values.is_empty() {
                    Value::Null
                } else {
                    let mut s = 0.0;
                    let n = values.len() as f64;
                    for v in &values {
                        s += match v {
                            Value::Int(i) => *i as f64,
                            Value::Float(f) => *f,
                            other => {
                                return Err(Error::Eval(format!("AVG of {other}")));
                            }
                        };
                    }
                    Value::Float(s / n)
                }
            }
        })
    }

    // ---- rollback ----------------------------------------------------------

    /// Applies the undo log of `txn` in reverse order.
    pub fn rollback(&mut self, txn: Txn) {
        self.rollback_to(txn, 0);
    }

    /// Rolls back to a previous [`Txn::mark`], leaving earlier ops intact;
    /// ops beyond `mark` are undone and dropped. The truncated txn is NOT
    /// reinstalled — callers do that if needed.
    pub fn rollback_to(&mut self, mut txn: Txn, mark: usize) -> Txn {
        let mut undid_ddl = false;
        while txn.undo.len() > mark {
            let op = txn.undo.pop().expect("len checked");
            undid_ddl |= matches!(
                op,
                UndoOp::CreatedTable { .. }
                    | UndoOp::DroppedTable { .. }
                    | UndoOp::CreatedIndex { .. }
                    | UndoOp::AlteredTable { .. }
            );
            match op {
                UndoOp::Inserted { table, row_id } => {
                    if let Some(t) = self.tables.get_mut(&table.to_lowercase()) {
                        t.remove(row_id);
                    }
                }
                UndoOp::Deleted { table, row_id, row } => {
                    if let Some(t) = self.tables.get_mut(&table.to_lowercase()) {
                        t.restore_at(row_id, row);
                    }
                }
                UndoOp::Updated {
                    table,
                    row_id,
                    old_row,
                } => {
                    if let Some(t) = self.tables.get_mut(&table.to_lowercase()) {
                        t.replace(row_id, old_row);
                    }
                }
                UndoOp::CreatedTable { name } => {
                    let key = name.to_lowercase();
                    self.tables.remove(&key);
                    self.table_order.retain(|n| n != &key);
                }
                UndoOp::DroppedTable { name, table } => {
                    let key = name.to_lowercase();
                    self.tables.insert(key.clone(), *table);
                    self.table_order.push(key);
                }
                UndoOp::CreatedIndex { table, index } => {
                    if let Some(t) = self.tables.get_mut(&table.to_lowercase()) {
                        let _ = t.drop_index(&index);
                    }
                }
                UndoOp::AutoIncrement { table, old_value } => {
                    // Full-restore semantics: undo records exist for both
                    // the auto-assign and explicit keep-ahead bumps, and
                    // ops replay newest-first, so the counter lands back
                    // on its pre-transaction value (unlike MySQL, which
                    // burns ids on rollback).
                    if let Some(t) = self.tables.get_mut(&table.to_lowercase()) {
                        t.next_auto = old_value;
                    }
                }
                UndoOp::AlteredTable { name, table } => {
                    self.tables.insert(name.to_lowercase(), *table);
                }
            }
        }
        if undid_ddl {
            self.invalidate_plans();
        }
        txn
    }
}

/// If `on` is (or conjoins) `left_col = right_col` with one side from each
/// relation, returns the two column positions.
pub(crate) fn detect_equi_join(
    on: &Expr,
    left_cols: &[String],
    right_cols: &[String],
) -> Option<(usize, usize)> {
    fn find(cols: &[String], table: Option<&str>, name: &str) -> Option<usize> {
        cols.iter().position(|c| match table {
            Some(t) => c.eq_ignore_ascii_case(&format!("{t}.{name}")),
            None => c
                .rsplit('.')
                .next()
                .is_some_and(|s| s.eq_ignore_ascii_case(name)),
        })
    }
    match on {
        Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } => {
            let (lt, ln) = match lhs.as_ref() {
                Expr::Column { table, name } => (table.as_deref(), name.as_str()),
                _ => return None,
            };
            let (rt, rn) = match rhs.as_ref() {
                Expr::Column { table, name } => (table.as_deref(), name.as_str()),
                _ => return None,
            };
            if let (Some(l), Some(r)) = (find(left_cols, lt, ln), find(right_cols, rt, rn)) {
                return Some((l, r));
            }
            if let (Some(l), Some(r)) = (find(left_cols, rt, rn), find(right_cols, lt, ln)) {
                return Some((l, r));
            }
            None
        }
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => detect_equi_join(lhs, left_cols, right_cols)
            .or_else(|| detect_equi_join(rhs, left_cols, right_cols)),
        _ => None,
    }
}

#[cfg(test)]
mod select_edge_tests {
    use crate::{Database, Value};

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE u (id INT PRIMARY KEY, name TEXT);
             CREATE TABLE p (id INT PRIMARY KEY, uid INT, tag TEXT, score INT);",
        )
        .unwrap();
        db.execute("INSERT INTO u VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        db.execute("INSERT INTO p VALUES (10, 1, 'x', 5), (11, 1, 'y', 5), (12, 2, 'x', 7)")
            .unwrap();
        db
    }

    #[test]
    fn left_join_with_extra_on_conjunct() {
        let db = db();
        // The extra conjunct rejects some hash-join matches; LEFT JOIN must
        // still emit the unmatched left rows with NULLs.
        let r = db
            .execute(
                "SELECT u.name, p.id FROM u LEFT JOIN p ON p.uid = u.id AND p.score > 6 \
                 ORDER BY u.id, p.id",
            )
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Text("a".into()), Value::Null],
                vec![Value::Text("b".into()), Value::Int(12)],
            ]
        );
    }

    #[test]
    fn select_distinct_dedupes() {
        let db = db();
        let r = db
            .execute("SELECT DISTINCT tag FROM p ORDER BY tag")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let r2 = db.execute("SELECT DISTINCT tag, score FROM p").unwrap();
        assert_eq!(r2.rows.len(), 3, "distinct applies to the whole projection");
    }

    #[test]
    fn qualified_star_and_aliases() {
        let db = db();
        let r = db
            .execute("SELECT * FROM u AS alias INNER JOIN p ON p.uid = alias.id")
            .unwrap();
        assert_eq!(r.columns.len(), 2 + 4);
        assert!(r.columns[0].starts_with("alias."));
    }

    #[test]
    fn error_paths_do_not_panic() {
        let db = db();
        assert!(db.execute("SELECT ghost FROM u").is_err());
        assert!(db.execute("SELECT * FROM ghost").is_err());
        assert!(db
            .execute("SELECT name FROM u INNER JOIN ghost ON 1 = 1")
            .is_err());
        assert!(db
            .execute("SELECT * FROM u WHERE LENGTH(id, name) = 1")
            .is_err());
        // Aggregates mixed with SELECT * are unsupported, not UB.
        assert!(db.execute("SELECT *, COUNT(*) FROM u").is_err());
    }

    #[test]
    fn order_by_multiple_keys_and_nulls() {
        let db = db();
        db.execute("INSERT INTO p VALUES (13, 2, NULL, 7)").unwrap();
        let r = db
            .execute("SELECT id, tag FROM p ORDER BY score DESC, tag ASC")
            .unwrap();
        // score 7 first (ids 12,13) with NULL tag sorting before 'x'.
        assert_eq!(r.rows[0][0], Value::Int(13));
        assert_eq!(r.rows[1][0], Value::Int(12));
    }

    #[test]
    fn group_by_expression_key() {
        let db = db();
        let r = db
            .execute(
                "SELECT score % 2 AS parity, COUNT(*) AS n FROM p GROUP BY score % 2 \
                 ORDER BY parity",
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1), Value::Int(3)]]);
    }
}
