//! Error types for the relational engine.

use std::fmt;

/// Any error produced by the relational engine.
///
/// The engine never panics on malformed SQL or constraint violations; every
/// public entry point returns [`Result`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // Field names are self-describing.
pub enum Error {
    /// The SQL text could not be tokenized.
    Lex { position: usize, message: String },
    /// The token stream could not be parsed into a statement or expression.
    Parse { position: usize, message: String },
    /// A referenced table does not exist.
    NoSuchTable(String),
    /// A referenced column does not exist in the given table.
    NoSuchColumn { table: String, column: String },
    /// A referenced index does not exist.
    NoSuchIndex(String),
    /// An object with this name already exists.
    AlreadyExists(String),
    /// A NOT NULL column would receive NULL.
    NotNullViolation { table: String, column: String },
    /// A UNIQUE or PRIMARY KEY constraint would be violated.
    UniqueViolation {
        table: String,
        column: String,
        value: String,
    },
    /// A foreign-key constraint would be violated.
    ForeignKeyViolation {
        table: String,
        column: String,
        detail: String,
    },
    /// A value had the wrong type for the operation or column.
    TypeMismatch { expected: String, found: String },
    /// Expression evaluation failed (bad function arity, division by zero, ...).
    Eval(String),
    /// An unbound `$param` placeholder was evaluated.
    UnboundParam(String),
    /// Transaction-state misuse (e.g. COMMIT without BEGIN).
    Txn(String),
    /// The statement is valid SQL but unsupported by this engine.
    Unsupported(String),
    /// A statement-level fault hook (see `Database::set_fault_hook`)
    /// killed this statement; `0` names the statement's 0-based index
    /// since the hook was installed. Only produced by fault-injection
    /// tests, never by normal execution.
    FaultInjected(u64),
    /// The write-ahead log failed (I/O stringified — the error must stay
    /// `Clone + Eq` — or a corrupt/unreplayable record at recovery). A
    /// commit that hits this is rolled back: nothing is durable that is
    /// not also logged.
    Wal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            Error::Parse { position, message } => {
                write!(f, "parse error at token {position}: {message}")
            }
            Error::NoSuchTable(t) => write!(f, "no such table: {t}"),
            Error::NoSuchColumn { table, column } => {
                write!(f, "no such column: {table}.{column}")
            }
            Error::NoSuchIndex(i) => write!(f, "no such index: {i}"),
            Error::AlreadyExists(n) => write!(f, "object already exists: {n}"),
            Error::NotNullViolation { table, column } => {
                write!(f, "NOT NULL violation: {table}.{column}")
            }
            Error::UniqueViolation {
                table,
                column,
                value,
            } => {
                write!(f, "UNIQUE violation: {table}.{column} = {value}")
            }
            Error::ForeignKeyViolation {
                table,
                column,
                detail,
            } => {
                write!(f, "FOREIGN KEY violation on {table}.{column}: {detail}")
            }
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::UnboundParam(p) => write!(f, "unbound parameter: ${p}"),
            Error::Txn(m) => write!(f, "transaction error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::FaultInjected(i) => {
                write!(f, "injected fault at statement index {i}")
            }
            Error::Wal(m) => write!(f, "WAL error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;
