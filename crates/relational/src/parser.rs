//! Recursive-descent parser for the engine's SQL subset.
//!
//! Supported statements: `CREATE TABLE`, `CREATE [UNIQUE] INDEX`,
//! `DROP TABLE [IF EXISTS]`, `INSERT INTO`, `SELECT` (projections,
//! `INNER`/`LEFT JOIN`, `WHERE`, `GROUP BY`, `ORDER BY`, `LIMIT`,
//! aggregates), `UPDATE`, `DELETE`, and `BEGIN`/`COMMIT`/`ROLLBACK`.
//! Expressions use a precedence-climbing parser; see [`parse_expr`].

use crate::error::{Error, Result};
use crate::expr::{BinOp, Expr, UnOp};
use crate::lexer::{lex, Token, TokenKind};
use crate::schema::{ColumnDef, ForeignKey, ReferentialAction, TableSchema};
use crate::value::{DataType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // Field names are self-describing.
pub enum Statement {
    /// `CREATE TABLE`.
    CreateTable(TableSchema),
    /// `CREATE [UNIQUE] INDEX name ON table (col)`.
    CreateIndex {
        name: String,
        table: String,
        column: String,
        unique: bool,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable { name: String, if_exists: bool },
    /// `ALTER TABLE name ADD COLUMN <coldef>` / `DROP COLUMN col` /
    /// `RENAME COLUMN old TO new`.
    AlterTable { table: String, action: AlterAction },
    /// `INSERT INTO table [(cols)] VALUES (...), (...)`.
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    /// `SELECT ...`.
    Select(SelectStmt),
    /// `UPDATE table SET col = expr [, ...] [WHERE ...]`.
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        where_: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE ...]`.
    Delete { table: String, where_: Option<Expr> },
    /// `BEGIN [TRANSACTION]`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
}

/// The action of an `ALTER TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum AlterAction {
    /// Add a column (filled with its DEFAULT, or NULL, in existing rows).
    AddColumn(ColumnDef),
    /// Drop a column (rejected for primary keys and foreign-key columns).
    DropColumn(String),
    /// Rename a column.
    RenameColumn {
        /// Existing column name.
        from: String,
        /// New column name.
        to: String,
    },
}

/// One SELECT projection item.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // Field names are self-describing.
pub enum Projection {
    /// `*`.
    Wildcard,
    /// `expr [AS alias]`.
    Expr { expr: Expr, alias: Option<String> },
    /// Aggregate call: `COUNT(*)`, `COUNT([DISTINCT] expr)`, `SUM(expr)`, ...
    Aggregate {
        func: AggFunc,
        arg: Option<Expr>,
        distinct: bool,
        alias: Option<String>,
    },
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG`
    Avg,
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `INNER JOIN` (also bare `JOIN`).
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
}

/// One JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Inner or left.
    pub kind: JoinKind,
    /// Joined table name.
    pub table: String,
    /// Optional alias.
    pub alias: Option<String>,
    /// `ON` predicate.
    pub on: Expr,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// Descending if true.
    pub desc: bool,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub projections: Vec<Projection>,
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Base table.
    pub from: String,
    /// Base-table alias.
    pub from_alias: Option<String>,
    /// JOIN clauses, in order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate, evaluated over the projected (post-aggregate)
    /// row, so aggregate aliases are visible.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<usize>,
    /// OFFSET row count.
    pub offset: Option<usize>,
}

/// Parses a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(src: &str) -> Result<Statement> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";");
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a `;`-separated script into statements.
pub fn parse_script(src: &str) -> Result<Vec<Statement>> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at_eof() {
        out.push(p.statement()?);
        if !p.eat_sym(";") {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

/// Parses a standalone scalar expression (e.g. a WHERE clause body).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn advance(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            position: self.pos,
            message: message.into(),
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(TokenKind::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(TokenKind::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}, found {:?}", self.peek())))
        }
    }

    /// Accepts an identifier; also accepts keywords usable as names in
    /// non-ambiguous positions (e.g. a column named `key`).
    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err(format!("expected identifier, found {:?}", self.peek()))),
        }
    }

    // ---- statements -------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(TokenKind::Keyword(k)) => match k.as_str() {
                "CREATE" => self.create(),
                "DROP" => self.drop_table(),
                "ALTER" => self.alter_table(),
                "INSERT" => self.insert(),
                "SELECT" => Ok(Statement::Select(self.select()?)),
                "UPDATE" => self.update(),
                "DELETE" => self.delete(),
                "BEGIN" => {
                    self.pos += 1;
                    self.eat_keyword("TRANSACTION");
                    Ok(Statement::Begin)
                }
                "COMMIT" => {
                    self.pos += 1;
                    Ok(Statement::Commit)
                }
                "ROLLBACK" => {
                    self.pos += 1;
                    Ok(Statement::Rollback)
                }
                other => Err(self.err(format!("unexpected keyword {other}"))),
            },
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_keyword("CREATE")?;
        let unique = self.eat_keyword("UNIQUE");
        if self.eat_keyword("INDEX") {
            let name = self.ident()?;
            self.expect_keyword("ON")?;
            let table = self.ident()?;
            self.expect_sym("(")?;
            let column = self.ident()?;
            self.expect_sym(")")?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            });
        }
        if unique {
            return Err(self.err("expected INDEX after CREATE UNIQUE"));
        }
        self.expect_keyword("TABLE")?;
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut schema = TableSchema::new(name);
        loop {
            if self.eat_keyword("PRIMARY") {
                // Table-level PRIMARY KEY (col).
                self.expect_keyword("KEY")?;
                self.expect_sym("(")?;
                let col = self.ident()?;
                self.expect_sym(")")?;
                let idx = schema.require_column(&col)?;
                schema.primary_key = Some(idx);
                schema.columns[idx].not_null = true;
                schema.columns[idx].unique = true;
            } else if self.eat_keyword("FOREIGN") {
                self.expect_keyword("KEY")?;
                self.expect_sym("(")?;
                let column = self.ident()?;
                self.expect_sym(")")?;
                self.expect_keyword("REFERENCES")?;
                let parent_table = self.ident()?;
                self.expect_sym("(")?;
                let parent_column = self.ident()?;
                self.expect_sym(")")?;
                let mut on_delete = ReferentialAction::Restrict;
                if self.eat_keyword("ON") {
                    self.expect_keyword("DELETE")?;
                    on_delete = self.referential_action()?;
                }
                schema.foreign_keys.push(ForeignKey {
                    column,
                    parent_table,
                    parent_column,
                    on_delete,
                });
            } else {
                let col = self.column_def(&mut schema)?;
                schema.columns.push(col);
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        schema.validate()?;
        Ok(Statement::CreateTable(schema))
    }

    fn referential_action(&mut self) -> Result<ReferentialAction> {
        if self.eat_keyword("CASCADE") {
            Ok(ReferentialAction::Cascade)
        } else if self.eat_keyword("RESTRICT") {
            Ok(ReferentialAction::Restrict)
        } else if self.eat_keyword("SET") {
            self.expect_keyword("NULL")?;
            Ok(ReferentialAction::SetNull)
        } else {
            Err(self.err("expected CASCADE, RESTRICT, or SET NULL"))
        }
    }

    fn column_def(&mut self, schema: &mut TableSchema) -> Result<ColumnDef> {
        let name = self.ident()?;
        let ty_name = match self.advance() {
            Some(TokenKind::Ident(s)) => s,
            other => return Err(self.err(format!("expected type name, found {other:?}"))),
        };
        // Swallow a length suffix like (255) or (10,2).
        let mut full_ty = ty_name.clone();
        if self.eat_sym("(") {
            full_ty.push('(');
            loop {
                match self.advance() {
                    Some(TokenKind::Int(_)) | Some(TokenKind::Sym(",")) => {}
                    Some(TokenKind::Sym(")")) => break,
                    other => return Err(self.err(format!("bad type suffix: {other:?}"))),
                }
            }
        }
        let ty = DataType::from_sql_name(&full_ty)
            .ok_or_else(|| self.err(format!("unknown type {ty_name}")))?;
        let mut col = ColumnDef::new(name, ty);
        let mut is_pk = false;
        loop {
            if self.eat_keyword("PRIMARY") {
                self.expect_keyword("KEY")?;
                is_pk = true;
                col.not_null = true;
                col.unique = true;
            } else if self.eat_keyword("NOT") {
                self.expect_keyword("NULL")?;
                col.not_null = true;
            } else if self.eat_keyword("NULL") {
                // Explicit nullable; no-op.
            } else if self.eat_keyword("UNIQUE") {
                col.unique = true;
            } else if self.eat_keyword("AUTO_INCREMENT") {
                col.auto_increment = true;
            } else if self.eat_keyword("DEFAULT") {
                col.default = Some(self.literal_value()?);
            } else if self.eat_keyword("PII") {
                col.pii = true;
            } else {
                break;
            }
        }
        if is_pk {
            schema.primary_key = Some(schema.columns.len());
        }
        Ok(col)
    }

    fn literal_value(&mut self) -> Result<Value> {
        let negative = self.eat_sym("-");
        let v = match self.advance() {
            Some(TokenKind::Int(i)) => Value::Int(i),
            Some(TokenKind::Float(x)) => Value::Float(x),
            Some(TokenKind::Str(s)) => Value::Text(s),
            Some(TokenKind::Blob(b)) => Value::Bytes(b),
            Some(TokenKind::Keyword(k)) if k == "NULL" => Value::Null,
            Some(TokenKind::Keyword(k)) if k == "TRUE" => Value::Bool(true),
            Some(TokenKind::Keyword(k)) if k == "FALSE" => Value::Bool(false),
            other => return Err(self.err(format!("expected literal, found {other:?}"))),
        };
        if negative {
            match v {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(x) => Ok(Value::Float(-x)),
                other => Err(self.err(format!("cannot negate literal {other}"))),
            }
        } else {
            Ok(v)
        }
    }

    fn alter_table(&mut self) -> Result<Statement> {
        self.expect_keyword("ALTER")?;
        self.expect_keyword("TABLE")?;
        let table = self.ident()?;
        let action = if self.eat_keyword("ADD") {
            self.eat_keyword("COLUMN");
            // Reuse column_def; table-level attributes (PRIMARY KEY) are
            // rejected afterwards by execution.
            let mut scratch = TableSchema::new(table.clone());
            let col = self.column_def(&mut scratch)?;
            if scratch.primary_key.is_some() {
                return Err(self.err("cannot ADD COLUMN ... PRIMARY KEY".to_string()));
            }
            AlterAction::AddColumn(col)
        } else if self.eat_keyword("DROP") {
            self.eat_keyword("COLUMN");
            AlterAction::DropColumn(self.ident()?)
        } else if self.eat_keyword("RENAME") {
            self.eat_keyword("COLUMN");
            let from = self.ident()?;
            self.expect_keyword("TO")?;
            let to = self.ident()?;
            AlterAction::RenameColumn { from, to }
        } else {
            return Err(self.err("expected ADD, DROP, or RENAME after ALTER TABLE".to_string()));
        };
        Ok(Statement::AlterTable { table, action })
    }

    fn drop_table(&mut self) -> Result<Statement> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("TABLE")?;
        let if_exists = if self.eat_keyword("IF") {
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat_sym("(") {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut projections = Vec::new();
        loop {
            projections.push(self.projection()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let from = self.ident()?;
        let from_alias = self.optional_alias()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_keyword("INNER") {
                self.expect_keyword("JOIN")?;
                JoinKind::Inner
            } else if self.eat_keyword("LEFT") {
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::Left
            } else if self.eat_keyword("JOIN") {
                JoinKind::Inner
            } else {
                break;
            };
            let table = self.ident()?;
            let alias = self.optional_alias()?;
            self.expect_keyword("ON")?;
            let on = self.expr()?;
            joins.push(Join {
                kind,
                table,
                alias,
                on,
            });
        }
        let where_ = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                Some(TokenKind::Int(i)) if i >= 0 => Some(i as usize),
                other => return Err(self.err(format!("expected LIMIT count, found {other:?}"))),
            }
        } else {
            None
        };
        let offset = if self.eat_keyword("OFFSET") {
            match self.advance() {
                Some(TokenKind::Int(i)) if i >= 0 => Some(i as usize),
                other => return Err(self.err(format!("expected OFFSET count, found {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            projections,
            distinct,
            from,
            from_alias,
            joins,
            where_,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_keyword("AS") {
            return Ok(Some(self.ident()?));
        }
        if let Some(TokenKind::Ident(_)) = self.peek() {
            // Bare alias, but avoid consuming the next clause's first token.
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    fn projection(&mut self) -> Result<Projection> {
        if self.eat_sym("*") {
            return Ok(Projection::Wildcard);
        }
        // Aggregate?
        if let Some(TokenKind::Keyword(k)) = self.peek() {
            let func = match k.as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                "AVG" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(func) = func {
                if self.peek2() == Some(&TokenKind::Sym("(")) {
                    self.pos += 2;
                    let distinct = self.eat_keyword("DISTINCT");
                    let arg = if self.eat_sym("*") {
                        if func != AggFunc::Count || distinct {
                            return Err(self.err("only COUNT accepts * (and not DISTINCT *)"));
                        }
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_sym(")")?;
                    let alias = if self.eat_keyword("AS") {
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    return Ok(Projection::Aggregate {
                        func,
                        arg,
                        distinct,
                        alias,
                    });
                }
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(Projection::Expr { expr, alias })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_keyword("UPDATE")?;
        let table = self.ident()?;
        self.expect_keyword("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym("=")?;
            let expr = self.expr()?;
            sets.push((col, expr));
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_ = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            where_,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let where_ = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, where_ })
    }

    // ---- expressions ------------------------------------------------------

    /// Entry point: lowest-precedence (OR).
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        // Postfix predicates: IS [NOT] NULL, [NOT] IN/BETWEEN/LIKE.
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect_sym("(")?;
            if matches!(self.peek(), Some(TokenKind::Keyword(k)) if k == "SELECT") {
                let select = self.select()?;
                self.expect_sym(")")?;
                return Ok(Expr::InSelect {
                    expr: Box::new(lhs),
                    select: Box::new(select),
                    negated,
                });
            }
            let mut list = Vec::new();
            if !self.eat_sym(")") {
                loop {
                    list.push(self.expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            }
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected IN, BETWEEN, or LIKE after NOT"));
        }
        let op = match self.peek() {
            Some(TokenKind::Sym("=")) => Some(BinOp::Eq),
            Some(TokenKind::Sym("!=")) => Some(BinOp::Ne),
            Some(TokenKind::Sym("<")) => Some(BinOp::Lt),
            Some(TokenKind::Sym("<=")) => Some(BinOp::Le),
            Some(TokenKind::Sym(">")) => Some(BinOp::Gt),
            Some(TokenKind::Sym(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Sym("+")) => BinOp::Add,
                Some(TokenKind::Sym("-")) => BinOp::Sub,
                Some(TokenKind::Sym("||")) => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Sym("*")) => BinOp::Mul,
                Some(TokenKind::Sym("/")) => BinOp::Div,
                Some(TokenKind::Sym("%")) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_sym("-") {
            let inner = self.unary()?;
            // Fold negated number literals so that display round-trips
            // (`-5` stays `Literal(-5)`, not `Neg(Literal(5))`).
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(x)) => Expr::Literal(Value::Float(-x)),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(TokenKind::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(TokenKind::Float(x)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(x)))
            }
            Some(TokenKind::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(TokenKind::Blob(b)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bytes(b)))
            }
            Some(TokenKind::Param(p)) => {
                self.pos += 1;
                Ok(Expr::Param(p))
            }
            Some(TokenKind::Keyword(k)) => match k.as_str() {
                "NULL" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Value::Null))
                }
                "TRUE" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Value::Bool(true)))
                }
                "FALSE" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Value::Bool(false)))
                }
                "CASE" => {
                    self.pos += 1;
                    let mut arms = Vec::new();
                    while self.eat_keyword("WHEN") {
                        let cond = self.expr()?;
                        self.expect_keyword("THEN")?;
                        let val = self.expr()?;
                        arms.push((cond, val));
                    }
                    let else_ = if self.eat_keyword("ELSE") {
                        Some(Box::new(self.expr()?))
                    } else {
                        None
                    };
                    self.expect_keyword("END")?;
                    if arms.is_empty() {
                        return Err(self.err("CASE requires at least one WHEN arm"));
                    }
                    Ok(Expr::Case { arms, else_ })
                }
                // Aggregate keywords used as scalar functions inside
                // expressions are not supported; report clearly.
                "COUNT" | "SUM" | "MIN" | "MAX" | "AVG" => Err(self.err(format!(
                    "aggregate {k} is only allowed in a SELECT projection"
                ))),
                other => Err(self.err(format!("unexpected keyword {other} in expression"))),
            },
            Some(TokenKind::Sym("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(TokenKind::Ident(name)) => {
                self.pos += 1;
                // Function call?
                if self.peek() == Some(&TokenKind::Sym("(")) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                        self.expect_sym(")")?;
                    }
                    return Ok(Expr::Func { name, args });
                }
                // Qualified column?
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_full() {
        let sql = "CREATE TABLE ContactInfo (
            contactId INT PRIMARY KEY AUTO_INCREMENT,
            name VARCHAR(255) NOT NULL,
            email TEXT UNIQUE,
            disabled BOOL NOT NULL DEFAULT FALSE,
            affiliation TEXT DEFAULT NULL,
            FOREIGN KEY (contactId) REFERENCES Other(id) ON DELETE CASCADE
        )";
        let stmt = parse_statement(sql).unwrap();
        let Statement::CreateTable(t) = stmt else {
            panic!("not a create")
        };
        assert_eq!(t.name, "ContactInfo");
        assert_eq!(t.primary_key, Some(0));
        assert!(t.columns[0].auto_increment);
        assert!(t.columns[1].not_null);
        assert!(t.columns[2].unique);
        assert_eq!(t.columns[3].default, Some(Value::Bool(false)));
        assert_eq!(t.foreign_keys[0].on_delete, ReferentialAction::Cascade);
    }

    #[test]
    fn table_level_primary_key() {
        let stmt = parse_statement("CREATE TABLE t (a INT, b TEXT, PRIMARY KEY (a))").unwrap();
        let Statement::CreateTable(t) = stmt else {
            panic!()
        };
        assert_eq!(t.primary_key, Some(0));
        assert!(t.columns[0].unique);
    }

    #[test]
    fn insert_multi_row() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        let Statement::Insert {
            table,
            columns,
            rows,
        } = stmt
        else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(columns, Some(vec!["a".to_string(), "b".to_string()]));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn select_with_everything() {
        let sql = "SELECT DISTINCT u.name AS n, COUNT(*) AS c FROM users u \
                   INNER JOIN posts p ON p.user_id = u.id \
                   LEFT JOIN votes v ON v.post_id = p.id \
                   WHERE u.active = TRUE AND p.score > 2 \
                   GROUP BY u.name ORDER BY c DESC, n LIMIT 10";
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(s.distinct);
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.joins[0].kind, JoinKind::Inner);
        assert_eq!(s.joins[1].kind, JoinKind::Left);
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn update_and_delete() {
        let Statement::Update {
            table,
            sets,
            where_,
        } = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE id = $UID").unwrap()
        else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(sets.len(), 2);
        assert!(where_.is_some());

        let Statement::Delete { table, where_ } = parse_statement("DELETE FROM t").unwrap() else {
            panic!()
        };
        assert_eq!(table, "t");
        assert!(where_.is_none());
    }

    #[test]
    fn transactions() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(
            parse_statement("BEGIN TRANSACTION").unwrap(),
            Statement::Begin
        );
        assert_eq!(parse_statement("COMMIT;").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_script("BEGIN; INSERT INTO t VALUES (1); COMMIT;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(parse_statement("SELEC * FROM t").is_err());
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("CREATE TABLE t (a NOTATYPE)").is_err());
        assert!(parse_statement("INSERT INTO t VALUES").is_err());
        assert!(parse_expr("a NOT 5").is_err());
        assert!(parse_expr("COUNT(x)").is_err());
    }

    #[test]
    fn drop_if_exists() {
        let Statement::DropTable { name, if_exists } =
            parse_statement("DROP TABLE IF EXISTS t").unwrap()
        else {
            panic!()
        };
        assert_eq!(name, "t");
        assert!(if_exists);
    }

    #[test]
    fn not_precedence() {
        // NOT binds tighter than AND: NOT a = 1 AND b = 2 is (NOT (a=1)) AND (b=2).
        let e = parse_expr("NOT a = 1 AND b = 2").unwrap();
        let Expr::Binary {
            op: BinOp::And,
            lhs,
            ..
        } = e
        else {
            panic!()
        };
        assert!(matches!(*lhs, Expr::Unary { op: UnOp::Not, .. }));
    }
}
