//! Query-plan introspection (`EXPLAIN`-style, without executing).
//!
//! [`Database::explain`] describes how the engine would execute a
//! statement: which access path serves the WHERE clause (index probe vs.
//! full scan), which join strategy each JOIN uses (hash equi-join vs.
//! nested loop), and how aggregation/ordering/limits apply. Useful when
//! writing disguise predicates: a disguise over an unindexed column turns
//! every per-row operation into a scan.

use crate::access::AccessPath;
use crate::database::Database;
use crate::error::Result;
use crate::exec::detect_equi_join;
use crate::expr::Expr;
use crate::parser::{parse_statement, Projection, SelectStmt, Statement};

impl Database {
    /// Describes the execution plan for `sql` without running it.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = parse_statement(sql)?;
        let mut out = String::new();
        match &stmt {
            Statement::Select(sel) => self.explain_select(sel, &mut out)?,
            Statement::Update { table, where_, .. } => {
                out.push_str("UPDATE\n");
                self.explain_access(table, where_.as_ref(), &mut out)?;
            }
            Statement::Delete { table, where_ } => {
                out.push_str("DELETE\n");
                self.explain_access(table, where_.as_ref(), &mut out)?;
            }
            Statement::Insert { table, rows, .. } => {
                out.push_str(&format!("INSERT into {table}: {} row(s)\n", rows.len()));
                let schema = self.schema(table)?;
                for fk in &schema.foreign_keys {
                    let parent = self.schema(&fk.parent_table)?;
                    let indexed = parent
                        .column_index(&fk.parent_column)
                        .map(|_| {
                            // Parent-key lookups probe an index when the
                            // parent column is PK/UNIQUE (implicit index).
                            parent
                                .primary_key_column()
                                .map(|c| c.name.eq_ignore_ascii_case(&fk.parent_column))
                                .unwrap_or(false)
                                || parent.columns.iter().any(|c| {
                                    c.unique && c.name.eq_ignore_ascii_case(&fk.parent_column)
                                })
                        })
                        .unwrap_or(false);
                    out.push_str(&format!(
                        "  fk check {table}.{} -> {}.{}: {}\n",
                        fk.column,
                        fk.parent_table,
                        fk.parent_column,
                        if indexed { "index probe" } else { "table scan" }
                    ));
                }
            }
            other => out.push_str(&format!("{other:?}\n")),
        }
        Ok(out)
    }

    fn explain_select(&self, sel: &SelectStmt, out: &mut String) -> Result<()> {
        out.push_str("SELECT\n");
        self.explain_access(&sel.from, sel.where_.as_ref(), out)?;
        // Joins: report strategy per join, tracking accumulated columns the
        // way execution does.
        let mut left_cols = qualified_columns(self, &sel.from, sel.from_alias.as_deref())?;
        for join in &sel.joins {
            let right_cols = qualified_columns(self, &join.table, join.alias.as_deref())?;
            let strategy = if detect_equi_join(&join.on, &left_cols, &right_cols).is_some() {
                "hash equi-join"
            } else {
                "nested-loop join"
            };
            out.push_str(&format!(
                "  {:?} join {}: {strategy} on {}\n",
                join.kind, join.table, join.on
            ));
            left_cols.extend(right_cols);
        }
        let has_aggregates = sel
            .projections
            .iter()
            .any(|p| matches!(p, Projection::Aggregate { .. }));
        if has_aggregates || !sel.group_by.is_empty() {
            out.push_str(&format!(
                "  aggregate: {} group key(s), {} projection(s)\n",
                sel.group_by.len(),
                sel.projections.len()
            ));
        }
        if sel.having.is_some() {
            out.push_str("  having: filter over projected rows\n");
        }
        if !sel.order_by.is_empty() {
            out.push_str(&format!("  sort: {} key(s)\n", sel.order_by.len()));
        }
        if sel.distinct {
            out.push_str("  distinct: dedupe projected rows\n");
        }
        match (sel.limit, sel.offset) {
            (Some(l), Some(o)) => out.push_str(&format!("  limit {l} offset {o}\n")),
            (Some(l), None) => out.push_str(&format!("  limit {l}\n")),
            (None, Some(o)) => out.push_str(&format!("  offset {o}\n")),
            (None, None) => {}
        }
        Ok(())
    }

    /// Describes the access path for one table + optional predicate, asking
    /// the same shared (cached) chooser the executor uses — `explain` and
    /// execution cannot disagree on probe vs. scan.
    fn explain_access(&self, table: &str, where_: Option<&Expr>, out: &mut String) -> Result<()> {
        let schema = self.schema(table)?;
        let rows = self.row_count(table)?;
        match where_ {
            None => {
                out.push_str(&format!("  {table}: full scan ({rows} rows)\n"));
            }
            Some(pred) => match self.access_path(table, Some(pred))? {
                AccessPath::IndexProbe { column, .. } => out.push_str(&format!(
                    "  {table}: index probe on {}.{column}, then filter: {pred}\n",
                    schema.name
                )),
                AccessPath::FullScan => out.push_str(&format!(
                    "  {table}: full scan ({rows} rows), filter: {pred}\n"
                )),
            },
        }
        Ok(())
    }
}

fn qualified_columns(db: &Database, table: &str, alias: Option<&str>) -> Result<Vec<String>> {
    let schema = db.schema(table)?;
    let prefix = alias.unwrap_or(&schema.name).to_string();
    Ok(schema
        .columns
        .iter()
        .map(|c| format!("{prefix}.{}", c.name))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, email TEXT);
             CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, FOREIGN KEY (user_id) REFERENCES users(id));
             CREATE INDEX posts_by_user ON posts (user_id);",
        )
        .unwrap();
        db.execute("INSERT INTO users (name) VALUES ('a'), ('b')")
            .unwrap();
        db
    }

    #[test]
    fn select_plans_name_access_paths() {
        let db = db();
        let plan = db.explain("SELECT * FROM users WHERE id = 3").unwrap();
        assert!(plan.contains("index probe on users.id"), "{plan}");
        let scan = db.explain("SELECT * FROM users WHERE name = 'a'").unwrap();
        assert!(scan.contains("full scan"), "{scan}");
    }

    #[test]
    fn param_equality_counts_as_probe() {
        let db = db();
        let plan = db
            .explain("SELECT * FROM posts WHERE user_id = $UID")
            .unwrap();
        assert!(plan.contains("index probe on posts.user_id"), "{plan}");
    }

    #[test]
    fn join_strategy_detection() {
        let db = db();
        let hash = db
            .explain("SELECT * FROM users u INNER JOIN posts p ON p.user_id = u.id")
            .unwrap();
        assert!(hash.contains("hash equi-join"), "{hash}");
        let nested = db
            .explain("SELECT * FROM users u INNER JOIN posts p ON p.user_id > u.id")
            .unwrap();
        assert!(nested.contains("nested-loop join"), "{nested}");
    }

    #[test]
    fn aggregate_sort_limit_annotations() {
        let db = db();
        let plan = db
            .explain(
                "SELECT user_id, COUNT(*) AS n FROM posts GROUP BY user_id \
                 HAVING n > 1 ORDER BY n DESC LIMIT 5 OFFSET 2",
            )
            .unwrap();
        assert!(plan.contains("aggregate: 1 group key(s)"), "{plan}");
        assert!(plan.contains("having"), "{plan}");
        assert!(plan.contains("sort: 1 key(s)"), "{plan}");
        assert!(plan.contains("limit 5 offset 2"), "{plan}");
    }

    #[test]
    fn dml_and_insert_plans() {
        let db = db();
        let del = db.explain("DELETE FROM posts WHERE id = 1").unwrap();
        assert!(del.starts_with("DELETE"), "{del}");
        assert!(del.contains("index probe"), "{del}");
        let ins = db
            .explain("INSERT INTO posts (user_id, body) VALUES (1, 'x')")
            .unwrap();
        assert!(
            ins.contains("fk check posts.user_id -> users.id: index probe"),
            "{ins}"
        );
    }
}
