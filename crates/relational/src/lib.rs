//! `edna-relational`: an in-process relational database engine.
//!
//! This crate is the storage substrate for the data-disguising tool (the
//! paper's prototype ran over MySQL; no server is available here, so the
//! engine reimplements the relevant subset — see `DESIGN.md` §5). It
//! provides:
//!
//! - a SQL subset: `CREATE TABLE`/`CREATE INDEX`, `INSERT`, `SELECT` with
//!   joins/aggregates/`ORDER BY`, `UPDATE`, `DELETE`, and transactions;
//! - arbitrary SQL `WHERE` predicates with `$param` binding — the disguise
//!   specification language embeds these directly (paper §5);
//! - enforced constraints: NOT NULL, UNIQUE, PRIMARY KEY, FOREIGN KEY with
//!   `RESTRICT`/`CASCADE`/`SET NULL`;
//! - per-statement/row statistics ([`StatsSnapshot`]) backing the paper's
//!   "queries grow linearly" measurement, and an optional synthetic
//!   [`LatencyModel`] approximating a networked DBMS.
//!
//! # Examples
//!
//! ```
//! use edna_relational::{Database, Value};
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)").unwrap();
//! db.execute("INSERT INTO users (name) VALUES ('bea')").unwrap();
//! let r = db.execute("SELECT name FROM users WHERE id = 1").unwrap();
//! assert_eq!(r.rows[0][0], Value::Text("bea".into()));
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod clock;
pub mod database;
pub mod error;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod storage;
pub mod txn;
pub mod value;
pub mod wal;

pub use access::AccessPath;
pub use database::{Database, FaultHook, SlowStatement};
pub use edna_obs::{MetricsRegistry, SpanRecord, Tracer};
pub use error::{Error, Result};
pub use exec::QueryResult;
pub use expr::{eval, eval_predicate, BinOp, EvalContext, Expr, UnOp};
pub use parser::{parse_expr, parse_script, parse_statement, Statement};
pub use schema::{ColumnDef, ForeignKey, ReferentialAction, TableSchema};
pub use stats::{LatencyModel, StatsSnapshot};
pub use storage::RowId;
pub use value::{DataType, Row, Value};
pub use wal::{
    OpenIntent, OpenPolicyRun, RecoveryReport, RedoOp, ReplayOutcome, Wal, WalCommitGate, WalCrash,
    WalCrashHook, WalFrameSink, WalRecord, WalScan,
};
