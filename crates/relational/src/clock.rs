//! Thread-scoped overrides of the logical clock.
//!
//! The engine's `NOW()` normally reads the global clock stored in the
//! engine state (`Inner.now`). A policy run, however, must evaluate its
//! `NOW()` predicates at the tick's own timestamp *without* mutating the
//! shared engine — under `edna serve`, foreground statements on other
//! worker threads would otherwise observe the daemon's clock mid-flight.
//!
//! [`scoped`] installs a thread-local override that wins over the global
//! clock for every statement executed on the installing thread while the
//! returned guard is alive. Other threads are unaffected. The override is
//! purely an evaluation-time concern: WAL redo frames carry physical row
//! images, so replay never re-evaluates `NOW()` and cannot observe (or
//! miss) an override; snapshots persist only the global clock.

use std::cell::Cell;
use std::marker::PhantomData;

thread_local! {
    static OVERRIDE: Cell<Option<i64>> = const { Cell::new(None) };
}

/// Installs a thread-local clock override; `NOW()` on this thread reads
/// `now` until the guard drops. Nests: an inner scope shadows an outer
/// one and dropping the inner guard restores the outer value.
pub fn scoped(now: i64) -> ClockGuard {
    let prev = OVERRIDE.with(|c| c.replace(Some(now)));
    ClockGuard {
        prev,
        _not_send: PhantomData,
    }
}

/// The active override on this thread, if any.
pub(crate) fn current() -> Option<i64> {
    OVERRIDE.with(|c| c.get())
}

/// RAII handle for a [`scoped`] clock override; restores the previous
/// override (or none) on drop.
pub struct ClockGuard {
    prev: Option<i64>,
    // The override lives in this thread's slot; moving the guard to
    // another thread would restore the wrong one, so the guard is !Send.
    _not_send: PhantomData<*const ()>,
}

impl Drop for ClockGuard {
    fn drop(&mut self) {
        OVERRIDE.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_is_scoped_and_nests() {
        assert_eq!(current(), None);
        {
            let _a = scoped(100);
            assert_eq!(current(), Some(100));
            {
                let _b = scoped(200);
                assert_eq!(current(), Some(200));
            }
            assert_eq!(current(), Some(100));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn override_is_per_thread() {
        let _g = scoped(500);
        std::thread::spawn(|| assert_eq!(current(), None))
            .join()
            .unwrap();
        assert_eq!(current(), Some(500));
    }
}
