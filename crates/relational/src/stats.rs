//! Execution statistics and latency injection.
//!
//! The paper's evaluation reports the *number of queries* a disguise
//! performs ("grows linearly with the number of objects") — these counters
//! make that measurable. The optional [`LatencyModel`] injects a fixed cost
//! per statement and per row, approximating a networked DBMS (the
//! prototype's MySQL backend) without one being available.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Cumulative counters for one [`crate::Database`].
#[derive(Debug, Default)]
pub struct Stats {
    /// Total statements executed (including those inside scripts).
    pub statements: AtomicU64,
    /// SELECT statements.
    pub selects: AtomicU64,
    /// INSERT statements.
    pub inserts: AtomicU64,
    /// UPDATE statements.
    pub updates: AtomicU64,
    /// DELETE statements.
    pub deletes: AtomicU64,
    /// Rows materialized by reads (scan or index probe results).
    pub rows_read: AtomicU64,
    /// Rows inserted, updated, or deleted.
    pub rows_written: AtomicU64,
    /// Predicate evaluations served by an index probe.
    pub index_probes: AtomicU64,
    /// Predicate evaluations served by a full table scan.
    pub table_scans: AtomicU64,
    /// SQL texts served from the statement cache (parse skipped).
    pub stmt_cache_hits: AtomicU64,
    /// SQL texts that had to be parsed (and were then cached).
    pub stmt_cache_misses: AtomicU64,
    /// Access-path decisions served from the plan cache.
    pub plan_cache_hits: AtomicU64,
}

impl Stats {
    /// Takes an immutable snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            statements: self.statements.load(Ordering::Relaxed),
            selects: self.selects.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            rows_written: self.rows_written.load(Ordering::Relaxed),
            index_probes: self.index_probes.load(Ordering::Relaxed),
            table_scans: self.table_scans.load(Ordering::Relaxed),
            stmt_cache_hits: self.stmt_cache_hits.load(Ordering::Relaxed),
            stmt_cache_misses: self.stmt_cache_misses.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.statements.store(0, Ordering::Relaxed);
        self.selects.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
        self.updates.store(0, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);
        self.rows_read.store(0, Ordering::Relaxed);
        self.rows_written.store(0, Ordering::Relaxed);
        self.index_probes.store(0, Ordering::Relaxed);
        self.table_scans.store(0, Ordering::Relaxed);
        self.stmt_cache_hits.store(0, Ordering::Relaxed);
        self.stmt_cache_misses.store(0, Ordering::Relaxed);
        self.plan_cache_hits.store(0, Ordering::Relaxed);
    }

    pub(crate) fn bump(&self, counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total statements executed.
    pub statements: u64,
    /// SELECT statements.
    pub selects: u64,
    /// INSERT statements.
    pub inserts: u64,
    /// UPDATE statements.
    pub updates: u64,
    /// DELETE statements.
    pub deletes: u64,
    /// Rows materialized by reads.
    pub rows_read: u64,
    /// Rows inserted, updated, or deleted.
    pub rows_written: u64,
    /// Index probe count.
    pub index_probes: u64,
    /// Full scan count.
    pub table_scans: u64,
    /// Statement-cache hits (SQL served without re-parsing).
    pub stmt_cache_hits: u64,
    /// Statement-cache misses (SQL parsed, then cached).
    pub stmt_cache_misses: u64,
    /// Plan-cache hits (access-path decision reused).
    pub plan_cache_hits: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            statements: self.statements.saturating_sub(earlier.statements),
            selects: self.selects.saturating_sub(earlier.selects),
            inserts: self.inserts.saturating_sub(earlier.inserts),
            updates: self.updates.saturating_sub(earlier.updates),
            deletes: self.deletes.saturating_sub(earlier.deletes),
            rows_read: self.rows_read.saturating_sub(earlier.rows_read),
            rows_written: self.rows_written.saturating_sub(earlier.rows_written),
            index_probes: self.index_probes.saturating_sub(earlier.index_probes),
            table_scans: self.table_scans.saturating_sub(earlier.table_scans),
            stmt_cache_hits: self.stmt_cache_hits.saturating_sub(earlier.stmt_cache_hits),
            stmt_cache_misses: self
                .stmt_cache_misses
                .saturating_sub(earlier.stmt_cache_misses),
            plan_cache_hits: self.plan_cache_hits.saturating_sub(earlier.plan_cache_hits),
        }
    }

    /// Total write-statement count (INSERT + UPDATE + DELETE).
    pub fn write_statements(&self) -> u64 {
        self.inserts + self.updates + self.deletes
    }
}

/// Synthetic per-operation latency, approximating a networked DBMS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyModel {
    /// Added once per statement (models a client-server round trip).
    pub per_statement: Duration,
    /// Added once per row written.
    pub per_row_written: Duration,
}

impl LatencyModel {
    /// No injected latency (the default).
    pub const NONE: LatencyModel = LatencyModel {
        per_statement: Duration::ZERO,
        per_row_written: Duration::ZERO,
    };

    /// A model loosely matching a local MySQL server (~100 µs round trip,
    /// ~20 µs per written row).
    pub fn local_mysql() -> LatencyModel {
        LatencyModel {
            per_statement: Duration::from_micros(100),
            per_row_written: Duration::from_micros(20),
        }
    }

    /// Whether any latency is configured.
    pub fn is_none(&self) -> bool {
        self.per_statement.is_zero() && self.per_row_written.is_zero()
    }

    /// Blocks for the cost of one statement writing `rows_written` rows.
    pub fn charge(&self, rows_written: u64) {
        if self.is_none() {
            return;
        }
        let total = self.per_statement + self.per_row_written * (rows_written as u32);
        if !total.is_zero() {
            busy_wait(total);
        }
    }
}

/// Blocks for `d`. Durations of 100 us and above use `thread::sleep`, so
/// concurrent callers genuinely overlap their simulated I/O (even on a
/// single core); shorter waits spin for accuracy.
fn busy_wait(d: Duration) {
    let start = std::time::Instant::now();
    if d >= Duration::from_micros(100) {
        std::thread::sleep(d);
        return;
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_since() {
        let s = Stats::default();
        s.bump(&s.statements, 5);
        s.bump(&s.rows_read, 100);
        let a = s.snapshot();
        s.bump(&s.statements, 2);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.statements, 2);
        assert_eq!(d.rows_read, 0);
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::default();
        s.bump(&s.inserts, 3);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn latency_charge_blocks_roughly() {
        let m = LatencyModel {
            per_statement: Duration::from_micros(200),
            per_row_written: Duration::ZERO,
        };
        let t0 = std::time::Instant::now();
        m.charge(0);
        assert!(t0.elapsed() >= Duration::from_micros(200));
        // NONE must not block measurably.
        let t1 = std::time::Instant::now();
        LatencyModel::NONE.charge(1000);
        assert!(t1.elapsed() < Duration::from_millis(5));
    }
}
