//! Execution statistics and latency injection.
//!
//! The paper's evaluation reports the *number of queries* a disguise
//! performs ("grows linearly with the number of objects") — these counters
//! make that measurable. The optional [`LatencyModel`] injects a fixed cost
//! per statement and per row, approximating a networked DBMS (the
//! prototype's MySQL backend) without one being available.
//!
//! Counters are handles into an `edna-obs` [`MetricsRegistry`], so the
//! same numbers are exportable in Prometheus text or JSON form via
//! [`Stats::registry`] alongside any histograms the engine registers
//! there. The bump path is unchanged: a single relaxed atomic add.

use std::sync::Arc;
use std::time::Duration;

use edna_obs::{Counter, MetricsRegistry};

/// Cumulative counters for one [`crate::Database`].
///
/// Fields are shared handles into [`Stats::registry`]; incrementing one is
/// a single relaxed atomic add.
#[derive(Debug)]
pub struct Stats {
    registry: Arc<MetricsRegistry>,
    /// Total statements executed (including those inside scripts).
    pub statements: Arc<Counter>,
    /// SELECT statements.
    pub selects: Arc<Counter>,
    /// INSERT statements.
    pub inserts: Arc<Counter>,
    /// UPDATE statements.
    pub updates: Arc<Counter>,
    /// DELETE statements.
    pub deletes: Arc<Counter>,
    /// Rows materialized by reads (scan or index probe results).
    pub rows_read: Arc<Counter>,
    /// Rows inserted, updated, or deleted.
    pub rows_written: Arc<Counter>,
    /// Predicate evaluations served by an index probe.
    pub index_probes: Arc<Counter>,
    /// Predicate evaluations served by a full table scan.
    pub table_scans: Arc<Counter>,
    /// SQL texts served from the statement cache (parse skipped).
    pub stmt_cache_hits: Arc<Counter>,
    /// SQL texts that had to be parsed (and were then cached).
    pub stmt_cache_misses: Arc<Counter>,
    /// Access-path decisions served from the plan cache.
    pub plan_cache_hits: Arc<Counter>,
}

impl Default for Stats {
    fn default() -> Stats {
        let registry = Arc::new(MetricsRegistry::new());
        let c = |name: &str, help: &str| registry.counter(name, help);
        Stats {
            registry: Arc::clone(&registry),
            statements: c("edna_statements_total", "SQL statements executed."),
            selects: c("edna_selects_total", "SELECT statements executed."),
            inserts: c("edna_inserts_total", "INSERT statements executed."),
            updates: c("edna_updates_total", "UPDATE statements executed."),
            deletes: c("edna_deletes_total", "DELETE statements executed."),
            rows_read: c("edna_rows_read_total", "Rows materialized by reads."),
            rows_written: c(
                "edna_rows_written_total",
                "Rows inserted, updated, or deleted.",
            ),
            index_probes: c(
                "edna_index_probes_total",
                "Predicate evaluations served by an index probe.",
            ),
            table_scans: c(
                "edna_table_scans_total",
                "Predicate evaluations served by a full table scan.",
            ),
            stmt_cache_hits: c(
                "edna_stmt_cache_hits_total",
                "SQL texts served from the statement cache.",
            ),
            stmt_cache_misses: c(
                "edna_stmt_cache_misses_total",
                "SQL texts parsed and then cached.",
            ),
            plan_cache_hits: c(
                "edna_plan_cache_hits_total",
                "Access-path decisions served from the plan cache.",
            ),
        }
    }
}

impl Stats {
    /// The metrics registry backing these counters. The engine registers
    /// additional metrics (latency histograms, slow-statement counts)
    /// here; render with `render_prometheus()` / `render_json()`.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// Takes an immutable snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            statements: self.statements.get(),
            selects: self.selects.get(),
            inserts: self.inserts.get(),
            updates: self.updates.get(),
            deletes: self.deletes.get(),
            rows_read: self.rows_read.get(),
            rows_written: self.rows_written.get(),
            index_probes: self.index_probes.get(),
            table_scans: self.table_scans.get(),
            stmt_cache_hits: self.stmt_cache_hits.get(),
            stmt_cache_misses: self.stmt_cache_misses.get(),
            plan_cache_hits: self.plan_cache_hits.get(),
        }
    }

    /// Resets every metric in the backing registry to zero (including
    /// engine-registered histograms).
    pub fn reset(&self) {
        self.registry.reset();
    }

    pub(crate) fn bump(&self, counter: &Counter, by: u64) {
        counter.add(by);
    }
}

/// A point-in-time copy of [`Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total statements executed.
    pub statements: u64,
    /// SELECT statements.
    pub selects: u64,
    /// INSERT statements.
    pub inserts: u64,
    /// UPDATE statements.
    pub updates: u64,
    /// DELETE statements.
    pub deletes: u64,
    /// Rows materialized by reads.
    pub rows_read: u64,
    /// Rows inserted, updated, or deleted.
    pub rows_written: u64,
    /// Index probe count.
    pub index_probes: u64,
    /// Full scan count.
    pub table_scans: u64,
    /// Statement-cache hits (SQL served without re-parsing).
    pub stmt_cache_hits: u64,
    /// Statement-cache misses (SQL parsed, then cached).
    pub stmt_cache_misses: u64,
    /// Plan-cache hits (access-path decision reused).
    pub plan_cache_hits: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            statements: self.statements.saturating_sub(earlier.statements),
            selects: self.selects.saturating_sub(earlier.selects),
            inserts: self.inserts.saturating_sub(earlier.inserts),
            updates: self.updates.saturating_sub(earlier.updates),
            deletes: self.deletes.saturating_sub(earlier.deletes),
            rows_read: self.rows_read.saturating_sub(earlier.rows_read),
            rows_written: self.rows_written.saturating_sub(earlier.rows_written),
            index_probes: self.index_probes.saturating_sub(earlier.index_probes),
            table_scans: self.table_scans.saturating_sub(earlier.table_scans),
            stmt_cache_hits: self.stmt_cache_hits.saturating_sub(earlier.stmt_cache_hits),
            stmt_cache_misses: self
                .stmt_cache_misses
                .saturating_sub(earlier.stmt_cache_misses),
            plan_cache_hits: self.plan_cache_hits.saturating_sub(earlier.plan_cache_hits),
        }
    }

    /// Total write-statement count (INSERT + UPDATE + DELETE).
    pub fn write_statements(&self) -> u64 {
        self.inserts + self.updates + self.deletes
    }
}

/// Synthetic per-operation latency, approximating a networked DBMS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyModel {
    /// Added once per statement (models a client-server round trip).
    pub per_statement: Duration,
    /// Added once per row written.
    pub per_row_written: Duration,
}

impl LatencyModel {
    /// No injected latency (the default).
    pub const NONE: LatencyModel = LatencyModel {
        per_statement: Duration::ZERO,
        per_row_written: Duration::ZERO,
    };

    /// A model loosely matching a local MySQL server (~100 µs round trip,
    /// ~20 µs per written row).
    pub fn local_mysql() -> LatencyModel {
        LatencyModel {
            per_statement: Duration::from_micros(100),
            per_row_written: Duration::from_micros(20),
        }
    }

    /// Whether any latency is configured.
    pub fn is_none(&self) -> bool {
        self.per_statement.is_zero() && self.per_row_written.is_zero()
    }

    /// Blocks for the cost of one statement writing `rows_written` rows.
    pub fn charge(&self, rows_written: u64) {
        if self.is_none() {
            return;
        }
        let total = self.per_statement + self.per_row_written * (rows_written as u32);
        if !total.is_zero() {
            busy_wait(total);
        }
    }
}

/// Blocks for `d`. Durations of 100 us and above use `thread::sleep`, so
/// concurrent callers genuinely overlap their simulated I/O (even on a
/// single core); shorter waits spin for accuracy.
fn busy_wait(d: Duration) {
    let start = std::time::Instant::now();
    if d >= Duration::from_micros(100) {
        std::thread::sleep(d);
        return;
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_since() {
        let s = Stats::default();
        s.bump(&s.statements, 5);
        s.bump(&s.rows_read, 100);
        let a = s.snapshot();
        s.bump(&s.statements, 2);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.statements, 2);
        assert_eq!(d.rows_read, 0);
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::default();
        s.bump(&s.inserts, 3);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn latency_charge_blocks_roughly() {
        let m = LatencyModel {
            per_statement: Duration::from_micros(200),
            per_row_written: Duration::ZERO,
        };
        let t0 = std::time::Instant::now();
        m.charge(0);
        assert!(t0.elapsed() >= Duration::from_micros(200));
        // NONE must not block measurably.
        let t1 = std::time::Instant::now();
        LatencyModel::NONE.charge(1000);
        assert!(t1.elapsed() < Duration::from_millis(5));
    }
}
