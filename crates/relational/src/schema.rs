//! Table schemas: columns, constraints, and foreign keys.

use std::fmt;

use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// What happens to child rows when a referenced parent row is deleted or its
/// key updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferentialAction {
    /// Reject the parent mutation if children exist (the default).
    Restrict,
    /// Delete (or update) the child rows along with the parent.
    Cascade,
    /// Set the child foreign-key column to NULL.
    SetNull,
}

impl fmt::Display for ReferentialAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReferentialAction::Restrict => "RESTRICT",
            ReferentialAction::Cascade => "CASCADE",
            ReferentialAction::SetNull => "SET NULL",
        })
    }
}

/// A foreign-key constraint from one column to a parent table's column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// The referencing column in this table.
    pub column: String,
    /// The referenced (parent) table.
    pub parent_table: String,
    /// The referenced column in the parent table.
    pub parent_column: String,
    /// Action on parent delete.
    pub on_delete: ReferentialAction,
}

/// One column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name (case-preserving, compared case-insensitively).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Whether NULL is rejected.
    pub not_null: bool,
    /// Whether values must be unique (also implied by primary key).
    pub unique: bool,
    /// Default value used when INSERT omits the column.
    pub default: Option<Value>,
    /// Whether this is an AUTO_INCREMENT integer column.
    pub auto_increment: bool,
    /// Whether the column holds personally identifiable information
    /// (declared with the `PII` column annotation). Consumed by the
    /// disguise analyzer's coverage lint; the engine itself attaches no
    /// semantics to it.
    pub pii: bool,
}

impl ColumnDef {
    /// Creates a plain nullable column of the given type.
    pub fn new(name: impl Into<String>, ty: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
            not_null: false,
            unique: false,
            default: None,
            auto_increment: false,
            pii: false,
        }
    }

    /// Builder: marks the column NOT NULL.
    pub fn not_null(mut self) -> ColumnDef {
        self.not_null = true;
        self
    }

    /// Builder: marks the column UNIQUE.
    pub fn unique(mut self) -> ColumnDef {
        self.unique = true;
        self
    }

    /// Builder: sets a DEFAULT value.
    pub fn default_value(mut self, v: impl Into<Value>) -> ColumnDef {
        self.default = Some(v.into());
        self
    }

    /// Builder: marks the column as personally identifiable information.
    pub fn pii(mut self) -> ColumnDef {
        self.pii = true;
        self
    }
}

/// The complete definition of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Index into `columns` of the primary key, if any.
    pub primary_key: Option<usize>,
    /// Foreign-key constraints.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Creates an empty schema with the given table name.
    pub fn new(name: impl Into<String>) -> TableSchema {
        TableSchema {
            name: name.into(),
            columns: Vec::new(),
            primary_key: None,
            foreign_keys: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Finds a column index by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Finds a column index, erroring with [`Error::NoSuchColumn`].
    pub fn require_column(&self, name: &str) -> Result<usize> {
        self.column_index(name).ok_or_else(|| Error::NoSuchColumn {
            table: self.name.clone(),
            column: name.to_string(),
        })
    }

    /// The primary-key column definition, if declared.
    pub fn primary_key_column(&self) -> Option<&ColumnDef> {
        self.primary_key.map(|i| &self.columns[i])
    }

    /// The foreign key declared on `column`, if any.
    pub fn foreign_key_on(&self, column: &str) -> Option<&ForeignKey> {
        self.foreign_keys
            .iter()
            .find(|fk| fk.column.eq_ignore_ascii_case(column))
    }

    /// Names of the columns annotated `PII`, in declaration order.
    pub fn pii_columns(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.pii)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Validates internal consistency: unique column names, PK/FK columns
    /// exist, auto-increment only on INT columns.
    pub fn validate(&self) -> Result<()> {
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i]
                .iter()
                .any(|p| p.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(Error::AlreadyExists(format!("{}.{}", self.name, c.name)));
            }
            if c.auto_increment && c.ty != DataType::Int {
                return Err(Error::Unsupported(format!(
                    "AUTO_INCREMENT on non-INT column {}.{}",
                    self.name, c.name
                )));
            }
        }
        if let Some(pk) = self.primary_key {
            if pk >= self.columns.len() {
                return Err(Error::NoSuchColumn {
                    table: self.name.clone(),
                    column: format!("<pk #{pk}>"),
                });
            }
        }
        for fk in &self.foreign_keys {
            self.require_column(&fk.column)?;
        }
        Ok(())
    }

    /// Renders this schema as a `CREATE TABLE` statement.
    pub fn to_create_sql(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (i, c) in self.columns.iter().enumerate() {
            let mut s = format!("{} {}", c.name, c.ty.sql_name());
            if self.primary_key == Some(i) {
                s.push_str(" PRIMARY KEY");
            }
            if c.auto_increment {
                s.push_str(" AUTO_INCREMENT");
            }
            if c.not_null && self.primary_key != Some(i) {
                s.push_str(" NOT NULL");
            }
            if c.unique && self.primary_key != Some(i) {
                s.push_str(" UNIQUE");
            }
            if let Some(d) = &c.default {
                s.push_str(&format!(" DEFAULT {}", d.to_sql_literal()));
            }
            if c.pii {
                s.push_str(" PII");
            }
            parts.push(s);
        }
        for fk in &self.foreign_keys {
            let mut s = format!(
                "FOREIGN KEY ({}) REFERENCES {}({})",
                fk.column, fk.parent_table, fk.parent_column
            );
            if fk.on_delete != ReferentialAction::Restrict {
                s.push_str(&format!(" ON DELETE {}", fk.on_delete));
            }
            parts.push(s);
        }
        format!("CREATE TABLE {} ({})", self.name, parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        let mut t = TableSchema::new("Review");
        t.columns
            .push(ColumnDef::new("reviewId", DataType::Int).not_null());
        t.columns
            .push(ColumnDef::new("contactId", DataType::Int).not_null());
        t.columns.push(ColumnDef::new("text", DataType::Text));
        t.primary_key = Some(0);
        t.foreign_keys.push(ForeignKey {
            column: "contactId".into(),
            parent_table: "ContactInfo".into(),
            parent_column: "contactId".into(),
            on_delete: ReferentialAction::Restrict,
        });
        t
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let t = sample();
        assert_eq!(t.column_index("CONTACTID"), Some(1));
        assert_eq!(t.column_index("missing"), None);
        assert!(t.require_column("missing").is_err());
    }

    #[test]
    fn validate_rejects_duplicate_columns() {
        let mut t = sample();
        t.columns.push(ColumnDef::new("TEXT", DataType::Text));
        assert!(matches!(t.validate(), Err(Error::AlreadyExists(_))));
    }

    #[test]
    fn validate_rejects_auto_increment_on_text() {
        let mut t = sample();
        let mut c = ColumnDef::new("x", DataType::Text);
        c.auto_increment = true;
        t.columns.push(c);
        assert!(t.validate().is_err());
    }

    #[test]
    fn create_sql_round_trips_structure() {
        let t = sample();
        let sql = t.to_create_sql();
        assert!(sql.contains("reviewId INT PRIMARY KEY"));
        assert!(sql.contains("FOREIGN KEY (contactId) REFERENCES ContactInfo(contactId)"));
    }

    #[test]
    fn pii_annotation_is_tracked_and_rendered() {
        let mut t = sample();
        t.columns
            .push(ColumnDef::new("email", DataType::Text).pii());
        assert_eq!(t.pii_columns(), vec!["email"]);
        assert!(t.to_create_sql().contains("email TEXT PII"));
    }
}
