//! Row storage and secondary indexes.
//!
//! A [`Table`] is a slot map of rows: deleting a row frees its slot for
//! reuse, and row ids ([`RowId`]) are slot indexes that stay stable for the
//! lifetime of the row. Indexes ([`Index`]) map a column value (under the
//! total order of [`Value::total_cmp`]) to the row ids holding it.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::schema::TableSchema;
use crate::value::{Row, Value};

/// Identifies a row slot within one table.
pub type RowId = usize;

/// A [`Value`] wrapper with a total order, usable as a BTreeMap key.
#[derive(Debug, Clone, PartialEq)]
#[repr(transparent)]
pub struct IndexKey(pub Value);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A single-column secondary index.
#[derive(Debug, Clone)]
pub struct Index {
    /// Index name (unique within the database).
    pub name: String,
    /// Indexed column position in the table schema.
    pub column: usize,
    /// Whether the index enforces uniqueness (NULLs exempt, as in SQL).
    pub unique: bool,
    /// Key → row ids holding that key.
    pub map: BTreeMap<IndexKey, Vec<RowId>>,
}

impl Index {
    /// Creates an empty index.
    pub fn new(name: impl Into<String>, column: usize, unique: bool) -> Index {
        Index {
            name: name.into(),
            column,
            unique,
            map: BTreeMap::new(),
        }
    }

    /// Row ids whose indexed column equals `key`.
    pub fn lookup(&self, key: &Value) -> &[RowId] {
        self.map
            .get(&IndexKey(key.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn insert(&mut self, key: Value, row_id: RowId) {
        self.map.entry(IndexKey(key)).or_default().push(row_id);
    }

    fn remove(&mut self, key: &Value, row_id: RowId) {
        let k = IndexKey(key.clone());
        if let Some(ids) = self.map.get_mut(&k) {
            ids.retain(|&id| id != row_id);
            if ids.is_empty() {
                self.map.remove(&k);
            }
        }
    }
}

/// One table: schema, row slots, and indexes.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    /// Row slots; `None` marks a free slot.
    rows: Vec<Option<Row>>,
    /// Free slot list for reuse.
    free: Vec<RowId>,
    /// Next AUTO_INCREMENT value.
    pub next_auto: i64,
    /// Secondary indexes (including the implicit PK/UNIQUE indexes).
    pub indexes: Vec<Index>,
    /// Number of live rows.
    live: usize,
}

impl Table {
    /// Creates an empty table, building implicit indexes for the primary key
    /// and every UNIQUE column.
    pub fn new(schema: TableSchema) -> Table {
        let mut indexes = Vec::new();
        for (i, col) in schema.columns.iter().enumerate() {
            if col.unique || schema.primary_key == Some(i) {
                indexes.push(Index::new(
                    format!("_auto_{}_{}", schema.name, col.name),
                    i,
                    true,
                ));
            }
        }
        Table {
            schema,
            rows: Vec::new(),
            free: Vec::new(),
            next_auto: 1,
            indexes,
            live: 0,
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slot count, live and free. Slot ids below this bound may be
    /// referenced by snapshots or WAL records.
    pub fn slot_count(&self) -> usize {
        self.rows.len()
    }

    /// Extends the slot array with free slots up to `total` (no-op if the
    /// table already has that many). Used when rebuilding from a snapshot
    /// so the freed tail keeps its ids instead of being compacted away.
    pub fn reserve_slots(&mut self, total: usize) {
        while self.rows.len() < total {
            self.free.push(self.rows.len());
            self.rows.push(None);
        }
    }

    /// Returns the row stored at `id`, if live.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.rows.get(id).and_then(|r| r.as_ref())
    }

    /// Iterates `(RowId, &Row)` over live rows in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (i, row)))
    }

    /// All live row ids, in slot order.
    pub fn row_ids(&self) -> Vec<RowId> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| i))
            .collect()
    }

    /// The index over `column`, if one exists.
    pub fn index_on(&self, column: usize) -> Option<&Index> {
        self.indexes.iter().find(|ix| ix.column == column)
    }

    /// Checks unique constraints for a candidate row (optionally ignoring
    /// one row id, for updates of the same row).
    pub fn check_unique(&self, row: &Row, ignore: Option<RowId>) -> Result<()> {
        for ix in &self.indexes {
            if !ix.unique {
                continue;
            }
            let v = &row[ix.column];
            if v.is_null() {
                continue;
            }
            let hits = ix.lookup(v);
            if hits.iter().any(|&id| Some(id) != ignore) {
                return Err(Error::UniqueViolation {
                    table: self.schema.name.clone(),
                    column: self.schema.columns[ix.column].name.clone(),
                    value: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Inserts a fully materialized row (constraints already checked),
    /// returning its new row id. Updates all indexes.
    pub fn insert_unchecked(&mut self, row: Row) -> RowId {
        let id = match self.free.pop() {
            Some(slot) => {
                self.rows[slot] = Some(row);
                slot
            }
            None => {
                self.rows.push(Some(row));
                self.rows.len() - 1
            }
        };
        self.live += 1;
        let row_ref = self.rows[id].as_ref().expect("just inserted");
        let keys: Vec<(usize, Value)> = self
            .indexes
            .iter()
            .map(|ix| (ix.column, row_ref[ix.column].clone()))
            .collect();
        for (i, (_, key)) in keys.into_iter().enumerate() {
            self.indexes[i].insert(key, id);
        }
        id
    }

    /// Re-inserts a row at a specific slot (used by transaction undo),
    /// panicking in debug builds if the slot is occupied.
    pub fn restore_at(&mut self, id: RowId, row: Row) {
        while self.rows.len() <= id {
            self.free.push(self.rows.len());
            self.rows.push(None);
        }
        debug_assert!(self.rows[id].is_none(), "restore into occupied slot");
        self.free.retain(|&f| f != id);
        for ix in &mut self.indexes {
            ix.insert(row[ix.column].clone(), id);
        }
        self.rows[id] = Some(row);
        self.live += 1;
    }

    /// Removes the row at `id`, returning it. Updates all indexes.
    pub fn remove(&mut self, id: RowId) -> Option<Row> {
        let row = self.rows.get_mut(id)?.take()?;
        for ix in &mut self.indexes {
            ix.remove(&row[ix.column], id);
        }
        self.free.push(id);
        self.live -= 1;
        Some(row)
    }

    /// Replaces the row at `id` with `new_row` (constraints already
    /// checked), returning the old row. Updates indexes for changed keys.
    pub fn replace(&mut self, id: RowId, new_row: Row) -> Option<Row> {
        let slot = self.rows.get_mut(id)?;
        let old = slot.take()?;
        for ix in &mut self.indexes {
            if old[ix.column] != new_row[ix.column] {
                ix.remove(&old[ix.column], id);
                ix.insert(new_row[ix.column].clone(), id);
            }
        }
        self.rows[id] = Some(new_row);
        Some(old)
    }

    /// Appends `fill` to every live row after a new column was pushed onto
    /// the schema (the caller has already extended `schema.columns`).
    pub fn fill_new_column(&mut self, fill: Value) {
        let arity = self.schema.arity();
        for slot in self.rows.iter_mut().flatten() {
            debug_assert_eq!(slot.len() + 1, arity, "schema/row arity drift");
            slot.push(fill.clone());
        }
    }

    /// Removes column `pos` from the schema, every row, and all indexes
    /// (indexes over later columns are re-pointed; indexes over `pos`
    /// itself are dropped). The caller has validated that `pos` is not the
    /// primary key and carries no foreign keys.
    pub fn drop_column(&mut self, pos: usize) {
        self.schema.columns.remove(pos);
        if let Some(pk) = self.schema.primary_key {
            debug_assert_ne!(pk, pos, "caller must protect the primary key");
            if pk > pos {
                self.schema.primary_key = Some(pk - 1);
            }
        }
        for slot in self.rows.iter_mut().flatten() {
            slot.remove(pos);
        }
        self.indexes.retain(|ix| ix.column != pos);
        for ix in &mut self.indexes {
            if ix.column > pos {
                ix.column -= 1;
            }
        }
    }

    /// Adds a new secondary index over `column`, populating it from live
    /// rows; errors if `unique` is requested but existing data collides.
    pub fn add_index(&mut self, name: String, column: usize, unique: bool) -> Result<()> {
        let mut ix = Index::new(name, column, unique);
        for (id, row) in self.iter() {
            let v = &row[column];
            if unique && !v.is_null() && !ix.lookup(v).is_empty() {
                return Err(Error::UniqueViolation {
                    table: self.schema.name.clone(),
                    column: self.schema.columns[column].name.clone(),
                    value: v.to_string(),
                });
            }
            ix.insert(v.clone(), id);
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Drops the named index; errors if it does not exist or is implicit.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let pos = self
            .indexes
            .iter()
            .position(|ix| ix.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| Error::NoSuchIndex(name.to_string()))?;
        self.indexes.remove(pos);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn table() -> Table {
        let mut s = TableSchema::new("t");
        s.columns
            .push(ColumnDef::new("id", DataType::Int).not_null().unique());
        s.columns.push(ColumnDef::new("name", DataType::Text));
        s.primary_key = Some(0);
        Table::new(s)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t = table();
        let a = t.insert_unchecked(vec![Value::Int(1), Value::Text("a".into())]);
        let b = t.insert_unchecked(vec![Value::Int(2), Value::Text("b".into())]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.index_on(0).unwrap().lookup(&Value::Int(2)), &[b]);
        let gone = t.remove(a).unwrap();
        assert_eq!(gone[1], Value::Text("a".into()));
        assert_eq!(t.len(), 1);
        assert!(t.index_on(0).unwrap().lookup(&Value::Int(1)).is_empty());
    }

    #[test]
    fn slot_reuse_and_restore() {
        let mut t = table();
        let a = t.insert_unchecked(vec![Value::Int(1), Value::Null]);
        t.remove(a);
        t.restore_at(a, vec![Value::Int(1), Value::Null]);
        assert_eq!(t.get(a).unwrap()[0], Value::Int(1));
        // A fresh insert must not collide with the restored slot.
        let b = t.insert_unchecked(vec![Value::Int(2), Value::Null]);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unique_check() {
        let mut t = table();
        let a = t.insert_unchecked(vec![Value::Int(1), Value::Null]);
        assert!(t
            .check_unique(&vec![Value::Int(1), Value::Null], None)
            .is_err());
        assert!(t
            .check_unique(&vec![Value::Int(1), Value::Null], Some(a))
            .is_ok());
        // NULL never collides.
        assert!(t
            .check_unique(&vec![Value::Null, Value::Null], None)
            .is_ok());
    }

    #[test]
    fn replace_maintains_indexes() {
        let mut t = table();
        let a = t.insert_unchecked(vec![Value::Int(1), Value::Null]);
        t.replace(a, vec![Value::Int(5), Value::Null]);
        assert!(t.index_on(0).unwrap().lookup(&Value::Int(1)).is_empty());
        assert_eq!(t.index_on(0).unwrap().lookup(&Value::Int(5)), &[a]);
    }

    #[test]
    fn add_index_rejects_duplicates_for_unique() {
        let mut t = table();
        t.insert_unchecked(vec![Value::Int(1), Value::Text("x".into())]);
        t.insert_unchecked(vec![Value::Int(2), Value::Text("x".into())]);
        assert!(t.add_index("by_name_u".into(), 1, true).is_err());
        assert!(t.add_index("by_name".into(), 1, false).is_ok());
        assert_eq!(
            t.index_on(1)
                .unwrap()
                .lookup(&Value::Text("x".into()))
                .len(),
            2
        );
    }
}
