//! SQL expression AST and evaluation.
//!
//! Expressions implement SQL three-valued logic: comparisons involving NULL
//! yield NULL, `AND`/`OR` use Kleene logic, and a WHERE clause accepts a row
//! only when the predicate evaluates to *true* (not NULL).

use std::collections::HashMap;
use std::fmt;

use crate::error::{Error, Result};
use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||` string concatenation
    Concat,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Concat => "||",
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `NOT`
    Not,
    /// Unary `-`
    Neg,
}

/// A SQL scalar expression.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // Field names are self-describing.
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference, optionally qualified (`table.column`).
    Column { table: Option<String>, name: String },
    /// A named `$param` placeholder bound at evaluation time.
    Param(String),
    /// Unary operation.
    Unary { op: UnOp, expr: Box<Expr> },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)` — an uncorrelated subquery, resolved
    /// to an [`Expr::InList`] by the executor before row evaluation
    /// (evaluating it directly is an error).
    InSelect {
        expr: Box<Expr>,
        select: Box<crate::parser::SelectStmt>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (SQL `%`/`_` wildcards).
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// Scalar function call (`LOWER`, `COALESCE`, ...).
    Func { name: String, args: Vec<Expr> },
    /// `CASE WHEN c THEN v [WHEN...] [ELSE e] END`.
    Case {
        arms: Vec<(Expr, Expr)>,
        else_: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Shorthand for a column reference without table qualifier.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand for `lhs = rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Eq,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Shorthand for `lhs AND rhs`.
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Collects the names of all columns this expression references.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column { name, .. } = e {
                if !out.iter().any(|o: &String| o.eq_ignore_ascii_case(name)) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Collects the names of all `$param` placeholders.
    pub fn referenced_params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Param(p) = e {
                if !out.contains(p) {
                    out.push(p.clone());
                }
            }
        });
        out
    }

    /// Depth-first traversal applying `f` to every node.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) => {}
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSelect { expr, .. } => expr.walk(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Case { arms, else_ } => {
                for (c, v) in arms {
                    c.walk(f);
                    v.walk(f);
                }
                if let Some(e) = else_ {
                    e.walk(f);
                }
            }
        }
    }

    /// Returns a copy of this expression with every `$param` replaced by the
    /// bound literal from `params`.
    pub fn bind_params(&self, params: &HashMap<String, Value>) -> Result<Expr> {
        Ok(match self {
            Expr::Param(p) => {
                let v = params
                    .get(p)
                    .ok_or_else(|| Error::UnboundParam(p.clone()))?;
                Expr::Literal(v.clone())
            }
            Expr::Literal(_) | Expr::Column { .. } => self.clone(),
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.bind_params(params)?),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.bind_params(params)?),
                rhs: Box::new(rhs.bind_params(params)?),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.bind_params(params)?),
                list: list
                    .iter()
                    .map(|e| e.bind_params(params))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::InSelect {
                expr,
                select,
                negated,
            } => Expr::InSelect {
                expr: Box::new(expr.bind_params(params)?),
                select: select.clone(),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.bind_params(params)?),
                low: Box::new(low.bind_params(params)?),
                high: Box::new(high.bind_params(params)?),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.bind_params(params)?),
                pattern: Box::new(pattern.bind_params(params)?),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.bind_params(params)?),
                negated: *negated,
            },
            Expr::Func { name, args } => Expr::Func {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|e| e.bind_params(params))
                    .collect::<Result<_>>()?,
            },
            Expr::Case { arms, else_ } => Expr::Case {
                arms: arms
                    .iter()
                    .map(|(c, v)| Ok((c.bind_params(params)?, v.bind_params(params)?)))
                    .collect::<Result<_>>()?,
                else_: match else_ {
                    Some(e) => Some(Box::new(e.bind_params(params)?)),
                    None => None,
                },
            },
        })
    }

    /// If this expression is a conjunction containing `column = <literal>`,
    /// returns that literal. Used for index selection.
    pub fn equality_constant(&self, column: &str) -> Option<Value> {
        match self {
            Expr::Binary {
                op: BinOp::Eq,
                lhs,
                rhs,
            } => {
                let (col, lit) = match (lhs.as_ref(), rhs.as_ref()) {
                    (Expr::Column { name, .. }, Expr::Literal(v)) => (name, v),
                    (Expr::Literal(v), Expr::Column { name, .. }) => (name, v),
                    _ => return None,
                };
                if col.eq_ignore_ascii_case(column) {
                    Some(lit.clone())
                } else {
                    None
                }
            }
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => lhs
                .equality_constant(column)
                .or_else(|| rhs.equality_constant(column)),
            _ => None,
        }
    }
}

/// The context an expression is evaluated against: column-name → value plus
/// bound parameters.
pub struct EvalContext<'a> {
    /// Column names, aligned with `row`. Names may be qualified lookups.
    pub columns: &'a [String],
    /// Current row values.
    pub row: &'a [Value],
    /// Bound `$param` values.
    pub params: &'a HashMap<String, Value>,
    /// Value returned by `NOW()`: the engine's logical clock.
    pub now: i64,
}

impl<'a> EvalContext<'a> {
    fn lookup(&self, table: Option<&str>, name: &str) -> Result<Value> {
        // Qualified lookups match "table.column" entries; unqualified match
        // either the bare name or any qualified suffix.
        for (i, c) in self.columns.iter().enumerate() {
            let matched = match table {
                Some(t) => {
                    let want = format!("{t}.{name}");
                    c.eq_ignore_ascii_case(&want)
                }
                None => {
                    c.eq_ignore_ascii_case(name)
                        || c.rsplit('.')
                            .next()
                            .is_some_and(|s| s.eq_ignore_ascii_case(name))
                }
            };
            if matched {
                return Ok(self.row[i].clone());
            }
        }
        Err(Error::NoSuchColumn {
            table: table.unwrap_or("<row>").to_string(),
            column: name.to_string(),
        })
    }
}

/// Evaluates `expr` against `ctx`, producing a [`Value`] (possibly NULL).
pub fn eval(expr: &Expr, ctx: &EvalContext<'_>) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, name } => ctx.lookup(table.as_deref(), name),
        Expr::Param(p) => ctx
            .params
            .get(p)
            .cloned()
            .ok_or_else(|| Error::UnboundParam(p.clone())),
        Expr::Unary { op, expr } => {
            let v = eval(expr, ctx)?;
            match op {
                UnOp::Not => match truth(&v) {
                    None => Ok(Value::Null),
                    Some(b) => Ok(Value::Bool(!b)),
                },
                UnOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(x) => Ok(Value::Float(-x)),
                    other => Err(Error::Eval(format!("cannot negate {other}"))),
                },
            }
        }
        Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, ctx),
        Expr::InSelect { .. } => Err(Error::Eval(
            "unresolved IN (SELECT ...) subquery; it must run through the engine".to_string(),
        )),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, ctx)?;
                match v.sql_eq(&iv) {
                    Some(true) => return Ok(Value::Bool(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            let lo = eval(low, ctx)?;
            let hi = eval(high, ctx)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let within = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                    Ok(Value::Bool(within != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            let p = eval(pattern, ctx)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let matched = like_match(v.as_text()?, p.as_text()?);
            Ok(Value::Bool(matched != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Func { name, args } => eval_func(name, args, ctx),
        Expr::Case { arms, else_ } => {
            for (cond, val) in arms {
                if truth(&eval(cond, ctx)?) == Some(true) {
                    return eval(val, ctx);
                }
            }
            match else_ {
                Some(e) => eval(e, ctx),
                None => Ok(Value::Null),
            }
        }
    }
}

/// Evaluates `expr` as a WHERE predicate: true only if the result is
/// SQL-true (NULL counts as false).
pub fn eval_predicate(expr: &Expr, ctx: &EvalContext<'_>) -> Result<bool> {
    Ok(truth(&eval(expr, ctx)?) == Some(true))
}

/// SQL truthiness: NULL → None, 0/FALSE → false, otherwise true.
fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        Value::Int(i) => Some(*i != 0),
        Value::Float(x) => Some(*x != 0.0),
        _ => Some(true),
    }
}

fn eval_binary(op: BinOp, lhs: &Expr, rhs: &Expr, ctx: &EvalContext<'_>) -> Result<Value> {
    // Kleene AND/OR short-circuit around NULL.
    if op == BinOp::And {
        let l = truth(&eval(lhs, ctx)?);
        if l == Some(false) {
            return Ok(Value::Bool(false));
        }
        let r = truth(&eval(rhs, ctx)?);
        return Ok(match (l, r) {
            (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        });
    }
    if op == BinOp::Or {
        let l = truth(&eval(lhs, ctx)?);
        if l == Some(true) {
            return Ok(Value::Bool(true));
        }
        let r = truth(&eval(rhs, ctx)?);
        return Ok(match (l, r) {
            (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        });
    }
    let a = eval(lhs, ctx)?;
    let b = eval(rhs, ctx)?;
    match op {
        BinOp::Eq => Ok(a.sql_eq(&b).map(Value::Bool).unwrap_or(Value::Null)),
        BinOp::Ne => Ok(a.sql_eq(&b).map(|e| Value::Bool(!e)).unwrap_or(Value::Null)),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            use std::cmp::Ordering::*;
            Ok(match a.sql_cmp(&b) {
                None => Value::Null,
                Some(ord) => Value::Bool(match op {
                    BinOp::Lt => ord == Less,
                    BinOp::Le => ord != Greater,
                    BinOp::Gt => ord == Greater,
                    BinOp::Ge => ord != Less,
                    _ => unreachable!(),
                }),
            })
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, &a, &b),
        BinOp::Concat => {
            if a.is_null() || b.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Text(format!("{a}{b}")))
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn arith(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            BinOp::Add => Ok(Value::Int(x.wrapping_add(*y))),
            BinOp::Sub => Ok(Value::Int(x.wrapping_sub(*y))),
            BinOp::Mul => Ok(Value::Int(x.wrapping_mul(*y))),
            BinOp::Div => {
                if *y == 0 {
                    Err(Error::Eval("division by zero".to_string()))
                } else {
                    Ok(Value::Int(x / y))
                }
            }
            BinOp::Mod => {
                if *y == 0 {
                    Err(Error::Eval("modulo by zero".to_string()))
                } else {
                    Ok(Value::Int(x % y))
                }
            }
            _ => unreachable!(),
        },
        _ => {
            let x = match a {
                Value::Int(i) => *i as f64,
                Value::Float(f) => *f,
                other => return Err(Error::Eval(format!("non-numeric operand {other}"))),
            };
            let y = match b {
                Value::Int(i) => *i as f64,
                Value::Float(f) => *f,
                other => return Err(Error::Eval(format!("non-numeric operand {other}"))),
            };
            match op {
                BinOp::Add => Ok(Value::Float(x + y)),
                BinOp::Sub => Ok(Value::Float(x - y)),
                BinOp::Mul => Ok(Value::Float(x * y)),
                BinOp::Div => Ok(Value::Float(x / y)),
                BinOp::Mod => Ok(Value::Float(x % y)),
                _ => unreachable!(),
            }
        }
    }
}

fn eval_func(name: &str, args: &[Expr], ctx: &EvalContext<'_>) -> Result<Value> {
    let upper = name.to_ascii_uppercase();
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(Error::Eval(format!(
                "{upper} expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match upper.as_str() {
        "NOW" | "UNIX_TIMESTAMP" => {
            arity(0)?;
            Ok(Value::Int(ctx.now))
        }
        "COALESCE" => {
            for a in args {
                let v = eval(a, ctx)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        "LOWER" => {
            arity(1)?;
            match eval(&args[0], ctx)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Text(v.as_text()?.to_lowercase())),
            }
        }
        "UPPER" => {
            arity(1)?;
            match eval(&args[0], ctx)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Text(v.as_text()?.to_uppercase())),
            }
        }
        "LENGTH" => {
            arity(1)?;
            match eval(&args[0], ctx)? {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                Value::Bytes(b) => Ok(Value::Int(b.len() as i64)),
                other => Err(Error::Eval(format!("LENGTH of {other}"))),
            }
        }
        "ABS" => {
            arity(1)?;
            match eval(&args[0], ctx)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(x) => Ok(Value::Float(x.abs())),
                other => Err(Error::Eval(format!("ABS of {other}"))),
            }
        }
        "SUBSTR" | "SUBSTRING" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(Error::Eval("SUBSTR expects 2 or 3 arguments".to_string()));
            }
            let s = match eval(&args[0], ctx)? {
                Value::Null => return Ok(Value::Null),
                v => v.as_text()?.to_string(),
            };
            // SQL SUBSTR is 1-based.
            let start = (eval(&args[1], ctx)?.as_int()?.max(1) - 1) as usize;
            let chars: Vec<char> = s.chars().collect();
            let end = if args.len() == 3 {
                (start + eval(&args[2], ctx)?.as_int()?.max(0) as usize).min(chars.len())
            } else {
                chars.len()
            };
            if start >= chars.len() {
                return Ok(Value::Text(String::new()));
            }
            Ok(Value::Text(chars[start..end].iter().collect()))
        }
        "CONCAT" => {
            let mut out = String::new();
            for a in args {
                let v = eval(a, ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                out.push_str(&v.to_string());
            }
            Ok(Value::Text(out))
        }
        "IFNULL" => {
            arity(2)?;
            let v = eval(&args[0], ctx)?;
            if v.is_null() {
                eval(&args[1], ctx)
            } else {
                Ok(v)
            }
        }
        _ => Err(Error::Eval(format!("unknown function {upper}"))),
    }
}

/// SQL LIKE matching: `%` matches any run, `_` matches exactly one
/// character; both are case-insensitive (MySQL's default collation).
///
/// Iterative two-pointer algorithm, O(|text| · |pattern|) worst case: on a
/// mismatch after a `%`, backtrack to the most recent `%` and retry it one
/// text character later. Only the *latest* `%` ever needs retrying, which
/// is what keeps patterns like `%a%a%a%a%b` linear-ish instead of the
/// exponential blowup of naive recursive backtracking (a DoS vector, since
/// patterns arrive in user-supplied predicates).
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let mut ti = 0; // next text char
    let mut pi = 0; // next pattern char
                    // After seeing `%` at p[star_pi - 1]: the retry point (pattern index
                    // just past the `%`, text index the `%` currently absorbs up to).
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || (p[pi] != '%' && like_chars_eq(t[ti], p[pi]))) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((star_pi, star_ti)) = star {
            // Mismatch past a `%`: let the `%` absorb one more character.
            pi = star_pi;
            ti = star_ti + 1;
            star = Some((star_pi, star_ti + 1));
        } else {
            return false;
        }
    }
    // Text exhausted: only trailing `%`s may remain.
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// Case-insensitive single-character comparison (full Unicode lowercase
/// expansion, matching the previous recursive implementation).
fn like_chars_eq(a: char, b: char) -> bool {
    a == b || a.to_lowercase().eq(b.to_lowercase())
}

impl fmt::Display for Expr {
    /// Renders re-parsable SQL.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => f.write_str(&v.to_sql_literal()),
            Expr::Column { table, name } => match table {
                Some(t) => write!(f, "{t}.{name}"),
                None => f.write_str(name),
            },
            Expr::Param(p) => write!(f, "${p}"),
            Expr::Unary { op, expr } => match op {
                UnOp::Not => write!(f, "(NOT {expr})"),
                UnOp::Neg => write!(f, "(-{expr})"),
            },
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "({expr} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::InSelect { expr, negated, .. } => {
                write!(
                    f,
                    "({expr} {}IN (SELECT ...))",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "({expr} {}LIKE {pattern})",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Func { name, args } => {
                let items: Vec<String> = args.iter().map(|e| e.to_string()).collect();
                write!(f, "{name}({})", items.join(", "))
            }
            Expr::Case { arms, else_ } => {
                f.write_str("CASE")?;
                for (c, v) in arms {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = else_ {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        columns: &'a [String],
        row: &'a [Value],
        params: &'a HashMap<String, Value>,
    ) -> EvalContext<'a> {
        EvalContext {
            columns,
            row,
            params,
            now: 1_000_000,
        }
    }

    fn eval_str(src: &str) -> Result<Value> {
        let expr = crate::parser::parse_expr(src).unwrap();
        let cols: Vec<String> = vec![];
        let row: Vec<Value> = vec![];
        let params = HashMap::new();
        eval(&expr, &ctx(&cols, &row, &params))
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_str("1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(eval_str("(1 + 2) * 3").unwrap(), Value::Int(9));
        assert_eq!(eval_str("7 % 4").unwrap(), Value::Int(3));
        assert_eq!(eval_str("1.0 / 2").unwrap(), Value::Float(0.5));
        assert!(eval_str("1 / 0").is_err());
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval_str("NULL = 1").unwrap(), Value::Null);
        assert_eq!(eval_str("NULL AND FALSE").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("NULL OR TRUE").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("NULL AND TRUE").unwrap(), Value::Null);
        assert_eq!(eval_str("NOT NULL").unwrap(), Value::Null);
        assert_eq!(eval_str("NULL IS NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("1 IS NOT NULL").unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list_with_null_semantics() {
        assert_eq!(eval_str("2 IN (1, 2, 3)").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("4 IN (1, 2, 3)").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("4 IN (1, NULL)").unwrap(), Value::Null);
        assert_eq!(eval_str("4 NOT IN (4, NULL)").unwrap(), Value::Bool(false));
    }

    #[test]
    fn between_and_like() {
        assert_eq!(eval_str("5 BETWEEN 1 AND 10").unwrap(), Value::Bool(true));
        assert_eq!(
            eval_str("5 NOT BETWEEN 6 AND 10").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_str("'hello' LIKE 'he%'").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'hello' LIKE 'h_llo'").unwrap(), Value::Bool(true));
        assert_eq!(
            eval_str("'hello' NOT LIKE '%z%'").unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn like_adversarial_pattern_is_fast() {
        // The old recursive matcher was exponential in the number of `%`
        // wildcards; this pattern against a non-matching 200-char string
        // took effectively forever. The iterative matcher must finish
        // (well) under a second.
        let text = "a".repeat(200);
        let start = std::time::Instant::now();
        assert!(!like_match(&text, "%a%a%a%a%a%a%a%b"));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "adversarial LIKE took {:?}",
            start.elapsed()
        );
        // And the same pattern still matches when it should.
        let mut matching = "a".repeat(100);
        matching.push('b');
        assert!(like_match(&matching, "%a%a%a%a%a%a%a%b"));
    }

    #[test]
    fn like_semantics_matrix() {
        // MySQL LIKE is case-insensitive (default collation); `=` on text
        // in this engine is case-sensitive.
        assert_eq!(eval_str("'HELLO' LIKE 'hello'").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'HELLO' = 'hello'").unwrap(), Value::Bool(false));

        // `_` matches exactly one character, including multi-byte ones.
        assert_eq!(eval_str("'café' LIKE 'caf_'").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'café' LIKE 'ca_'").unwrap(), Value::Bool(false));
        assert!(like_match("é", "_"));
        assert!(!like_match("é", "__"));

        // Empty pattern matches only the empty string.
        assert_eq!(eval_str("'' LIKE ''").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'a' LIKE ''").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("'' LIKE '%'").unwrap(), Value::Bool(true));

        // Trailing/leading `%` runs collapse.
        assert!(like_match("abc", "%%%abc%%%"));
        assert!(like_match("abc", "a%%c"));

        // NULL on either side of (NOT) LIKE yields NULL, not FALSE.
        assert_eq!(eval_str("NULL LIKE '%'").unwrap(), Value::Null);
        assert_eq!(eval_str("'a' LIKE NULL").unwrap(), Value::Null);
        assert_eq!(eval_str("NULL NOT LIKE '%z%'").unwrap(), Value::Null);
        // ... so NOT LIKE over NULL does not satisfy a WHERE predicate.
        assert_eq!(
            eval_str("COALESCE(NULL NOT LIKE '%z%', FALSE)").unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn functions() {
        assert_eq!(eval_str("LOWER('ABC')").unwrap(), Value::Text("abc".into()));
        assert_eq!(eval_str("LENGTH('abcd')").unwrap(), Value::Int(4));
        assert_eq!(eval_str("COALESCE(NULL, NULL, 3)").unwrap(), Value::Int(3));
        assert_eq!(
            eval_str("SUBSTR('abcdef', 2, 3)").unwrap(),
            Value::Text("bcd".into())
        );
        assert_eq!(
            eval_str("CONCAT('a', 1, 'b')").unwrap(),
            Value::Text("a1b".into())
        );
        assert_eq!(eval_str("IFNULL(NULL, 9)").unwrap(), Value::Int(9));
        assert!(eval_str("NO_SUCH_FN(1)").is_err());
    }

    #[test]
    fn case_expression() {
        assert_eq!(
            eval_str("CASE WHEN 1 = 2 THEN 'a' WHEN 2 = 2 THEN 'b' ELSE 'c' END").unwrap(),
            Value::Text("b".into())
        );
        assert_eq!(eval_str("CASE WHEN FALSE THEN 1 END").unwrap(), Value::Null);
    }

    #[test]
    fn column_lookup_and_params() {
        let cols = vec!["t.a".to_string(), "b".to_string()];
        let row = vec![Value::Int(10), Value::Int(20)];
        let mut params = HashMap::new();
        params.insert("UID".to_string(), Value::Int(10));
        let c = ctx(&cols, &row, &params);
        let e = crate::parser::parse_expr("a = $UID AND b = 20").unwrap();
        assert_eq!(eval(&e, &c).unwrap(), Value::Bool(true));
        let missing = crate::parser::parse_expr("$NOPE").unwrap();
        assert!(matches!(eval(&missing, &c), Err(Error::UnboundParam(_))));
    }

    #[test]
    fn equality_constant_extraction() {
        let e = crate::parser::parse_expr("x = 5 AND y > 2").unwrap();
        assert_eq!(e.equality_constant("x"), Some(Value::Int(5)));
        assert_eq!(e.equality_constant("y"), None);
        let flipped = crate::parser::parse_expr("5 = x").unwrap();
        assert_eq!(flipped.equality_constant("X"), Some(Value::Int(5)));
    }

    #[test]
    fn display_round_trip() {
        for src in [
            "a = 1 AND b != 'x'",
            "c IN (1, 2, 3)",
            "d BETWEEN 1 AND 9",
            "name LIKE '%bea%'",
            "e IS NOT NULL",
            "LOWER(name) = 'bea'",
        ] {
            let e1 = crate::parser::parse_expr(src).unwrap();
            let e2 = crate::parser::parse_expr(&e1.to_string()).unwrap();
            assert_eq!(e1, e2, "round trip failed for {src}");
        }
    }
}
