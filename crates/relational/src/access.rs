//! The shared access-path chooser.
//!
//! Exactly one piece of code decides whether a predicate over a table is
//! served by an index probe or a full scan: [`choose_access_path`]. The
//! executor ([`crate::exec`]) consults it (through the plan cache) before
//! touching rows, and `EXPLAIN` ([`crate::plan`]) consults it to describe
//! what execution *would* do — so the two cannot drift.

use crate::expr::{BinOp, Expr};
use crate::storage::Table;

/// How the engine reaches the rows of one table for a predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Every live row is visited, then filtered.
    FullScan,
    /// One index is probed with the predicate's pinned constant, then the
    /// full predicate filters the probe results.
    IndexProbe {
        /// Name of the chosen index.
        index: String,
        /// Name of the indexed column the predicate pins.
        column: String,
    },
}

impl AccessPath {
    /// Whether this path probes an index.
    pub fn is_probe(&self) -> bool {
        matches!(self, AccessPath::IndexProbe { .. })
    }
}

/// Whether `pred` conjoins `column = <constant>`, where a constant is a
/// literal or a `$param` (parameters become literals once bound, so the
/// decision is identical before and after binding).
pub(crate) fn pins_column(pred: &Expr, column: &str) -> bool {
    match pred {
        Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } => {
            let is_col = |e: &Expr| matches!(e, Expr::Column { name, .. } if name.eq_ignore_ascii_case(column));
            let is_const = |e: &Expr| matches!(e, Expr::Literal(_) | Expr::Param(_));
            (is_col(lhs) && is_const(rhs)) || (is_const(lhs) && is_col(rhs))
        }
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => pins_column(lhs, column) || pins_column(rhs, column),
        _ => false,
    }
}

/// The access path execution will use for `table` under `pred`: the first
/// index (in index-creation order) whose column the predicate pins to a
/// constant, else a full scan.
pub(crate) fn choose_access_path(table: &Table, pred: Option<&Expr>) -> AccessPath {
    let Some(pred) = pred else {
        return AccessPath::FullScan;
    };
    for ix in &table.indexes {
        let col_name = &table.schema.columns[ix.column].name;
        if pins_column(pred, col_name) {
            return AccessPath::IndexProbe {
                index: ix.name.clone(),
                column: col_name.clone(),
            };
        }
    }
    AccessPath::FullScan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::DataType;

    fn table() -> Table {
        let mut s = TableSchema::new("t");
        s.columns
            .push(ColumnDef::new("id", DataType::Int).not_null().unique());
        s.columns.push(ColumnDef::new("name", DataType::Text));
        s.primary_key = Some(0);
        Table::new(s)
    }

    #[test]
    fn literal_and_param_equality_both_pin() {
        let t = table();
        let lit = parse_expr("id = 5").unwrap();
        let param = parse_expr("id = $UID").unwrap();
        let conj = parse_expr("name = 'x' AND id = $UID").unwrap();
        assert!(choose_access_path(&t, Some(&lit)).is_probe());
        assert!(choose_access_path(&t, Some(&param)).is_probe());
        assert!(choose_access_path(&t, Some(&conj)).is_probe());
    }

    #[test]
    fn unindexed_or_non_equality_scans() {
        let t = table();
        let unindexed = parse_expr("name = 'x'").unwrap();
        let range = parse_expr("id > 5").unwrap();
        assert_eq!(
            choose_access_path(&t, Some(&unindexed)),
            AccessPath::FullScan
        );
        assert_eq!(choose_access_path(&t, Some(&range)), AccessPath::FullScan);
        assert_eq!(choose_access_path(&t, None), AccessPath::FullScan);
    }
}
