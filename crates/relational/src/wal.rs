//! Write-ahead log: redo records for committed transactions.
//!
//! The engine is snapshot-durable on its own — state survives only as far
//! as the last [`crate::snapshot::save`]. The WAL closes that gap: every
//! committed transaction appends one fsynced *redo frame* before the
//! commit returns, so `Workspace`-level recovery can replay the tail of
//! the log over the last snapshot and recover every committed write.
//!
//! # Records
//!
//! Frames use the shared [`edna_util::frame`] codec
//! (`[len][body][sha256]`, torn tail truncated on open). Each body is
//! `[u64 LSN][u8 kind][payload]`:
//!
//! - **Txn** — the redo image of one committed transaction (implicit
//!   single-statement transactions included), as a list of [`RedoOp`]s.
//!   Redo ops are *physical-logical*: they address rows by slot id
//!   ([`RowId`]) and carry full row images, so replay needs no SQL,
//!   re-checks no constraints, and is idempotent (each op sets state
//!   rather than transforming it). Row ids are stable across snapshots as
//!   of format v3.
//! - **DisguiseIntent / DisguiseCommit** — markers bracketing a disguise
//!   application's vault-side writes (see `edna-core`); an intent without
//!   a matching commit or committed history row tells recovery to undo
//!   the vault half of a half-applied disguise.
//!
//! LSNs increase monotonically and never reset, surviving checkpoints: a
//! snapshot records the last LSN it contains (its *watermark*), a
//! checkpoint truncates the log, and replay skips any frame at or below
//! the watermark of the snapshot it starts from.
//!
//! # Crash points
//!
//! The [`WalCrashHook`] is the WAL-side half of the fault-injection
//! harness (`Database::set_fault_hook` is the statement-side half): it is
//! consulted once per append with the frame's 0-based index and may kill
//! the append before the write, mid-write (torn frame, no fsync), or
//! after the write+fsync — the three states a real crash can leave. An
//! injected crash also poisons the log (the process is presumed dead), so
//! later appends fail rather than writing after a gap. A *real* append
//! failure (ENOSPC, EIO, failed fsync) is handled differently: the file
//! is truncated back to the last good frame boundary so the log stays
//! valid for further appends, and the log is poisoned only if that
//! restore itself fails.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use edna_obs::{Counter, MetricsRegistry};
use edna_util::frame;
use edna_util::sync::{lock_unpoisoned, read_unpoisoned, write_unpoisoned};

use crate::error::{Error, Result};
use crate::exec::Inner;
use crate::snapshot::{self, Reader, TableSnapshot, Writer};
use crate::storage::RowId;
use crate::txn::{Txn, UndoOp};
use crate::value::{Row, Value};

/// One redo operation inside a committed transaction's frame.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // Field names are self-describing.
pub enum RedoOp {
    /// Set slot `row_id` of `table` to `row` (insert, or overwrite on
    /// replay over state that already contains it).
    Insert {
        table: String,
        row_id: RowId,
        row: Row,
    },
    /// Replace slot `row_id` of `table` with `row`.
    Update {
        table: String,
        row_id: RowId,
        row: Row,
    },
    /// Clear slot `row_id` of `table`.
    Delete { table: String, row_id: RowId },
    /// (Re)create a table from its full image.
    CreateTable { image: TableSnapshot },
    /// Drop a table.
    DropTable { name: String },
    /// Replace a table wholesale with its post-alter image.
    AlterTable { name: String, image: TableSnapshot },
    /// Create a secondary index.
    CreateIndex {
        table: String,
        name: String,
        column: String,
        unique: bool,
    },
    /// Set a table's AUTO_INCREMENT counter.
    SetNextAuto { table: String, value: i64 },
    /// Set the logical clock.
    SetNow { now: i64 },
}

/// One WAL record (the body of one frame, minus its LSN).
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// The redo image of one committed transaction.
    Txn {
        /// Redo operations in application order.
        ops: Vec<RedoOp>,
    },
    /// A disguise application is about to write vault-side state.
    DisguiseIntent {
        /// The history row id the disguise was recorded under.
        disguise_id: u64,
        /// The disguise's subject user id (`Value::Null` for global
        /// disguises), as passed to the vault layer.
        user: Value,
    },
    /// The disguise application committed; its stores agree.
    DisguiseCommit {
        /// The matching intent's history row id.
        disguise_id: u64,
    },
}

/// A disguise intent recovered from the log with no matching commit
/// marker: the application may have died between its vault writes and its
/// database commit. `edna-core` resolves it against the history table.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenIntent {
    /// LSN of the intent frame.
    pub lsn: u64,
    /// The history row id the disguise would have been recorded under.
    pub disguise_id: u64,
    /// The disguise's subject user id.
    pub user: Value,
}

/// How a [`WalCrashHook`] kills an append — the three states a real crash
/// can leave a log in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalCrash {
    /// Die before anything reaches the file: the frame is wholly absent.
    BeforeWrite,
    /// Die mid-write: a torn frame prefix reaches the file, unsynced.
    TornWrite,
    /// Die after write + fsync: the frame is durable, the caller's
    /// post-append work is lost.
    AfterWrite,
}

/// A WAL-level crash hook: called with the 0-based index of each frame
/// appended since the hook was installed; returning `Some(style)` kills
/// that append with [`Error::FaultInjected`] and poisons the log.
pub type WalCrashHook = Arc<dyn Fn(u64) -> Option<WalCrash> + Send + Sync>;

/// What [`Wal::open`] found in the file.
#[derive(Debug)]
pub struct WalScan {
    /// Every complete frame, as `(lsn, record)`, in log order.
    pub records: Vec<(u64, WalRecord)>,
    /// Torn-tail bytes truncated away.
    pub torn_bytes: usize,
}

/// Counters bound into a database's metrics registry on attach.
struct WalMetrics {
    frames: Arc<Counter>,
    fsyncs: Arc<Counter>,
    bytes: Arc<Counter>,
}

struct WalFile {
    file: Option<std::fs::File>,
    next_lsn: u64,
    /// File length as of the last successful append (or truncation) — the
    /// restore point when a real append fails partway through.
    good_len: u64,
}

/// An append-only, fsync-per-frame redo log.
///
/// Obtained from [`Wal::open`] and attached to a database with
/// `Database::attach_wal`; thereafter every committed transaction appends
/// a frame before its commit returns.
pub struct Wal {
    path: PathBuf,
    state: Mutex<WalFile>,
    crash_hook: RwLock<Option<WalCrashHook>>,
    frame_seq: AtomicU64,
    poisoned: AtomicBool,
    metrics: RwLock<Option<WalMetrics>>,
    /// Intent markers appended (or found on open) with no matching commit
    /// marker yet, as `(disguise_id, user)`. A checkpoint truncation
    /// re-appends these to the fresh log: the vault-side state they guard
    /// lives outside the snapshot, so recovery must still see them.
    open_intents: Mutex<Vec<(u64, Value)>>,
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Wal(format!("{what}: {e}"))
}

impl Wal {
    /// Opens (or creates) the log at `path`, truncating any torn tail and
    /// decoding every complete frame. The returned [`WalScan`] is the
    /// replay input; the `Wal` continues appending after the valid tail.
    pub fn open(path: impl AsRef<Path>) -> Result<(Wal, WalScan)> {
        let path = path.as_ref().to_path_buf();
        let data = match std::fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("read WAL", e)),
        };
        let scan = frame::scan_records(&data);
        if scan.valid_len < data.len() {
            // Torn tail: truncate back to the last complete frame.
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err("open WAL for truncation", e))?;
            f.set_len(scan.valid_len as u64)
                .map_err(|e| io_err("truncate WAL", e))?;
            f.sync_all().map_err(|e| io_err("fsync WAL", e))?;
        }
        let torn_bytes = scan.torn_bytes(data.len());
        let mut records = Vec::with_capacity(scan.records.len());
        let mut next_lsn = 1;
        let mut open_intents: Vec<(u64, Value)> = Vec::new();
        for body in &scan.records {
            let (lsn, record) = decode_body(body)?;
            next_lsn = next_lsn.max(lsn + 1);
            match &record {
                WalRecord::DisguiseIntent { disguise_id, user } => {
                    open_intents.push((*disguise_id, user.clone()));
                }
                WalRecord::DisguiseCommit { disguise_id } => {
                    open_intents.retain(|(id, _)| id != disguise_id);
                }
                WalRecord::Txn { .. } => {}
            }
            records.push((lsn, record));
        }
        let wal = Wal {
            path,
            state: Mutex::new(WalFile {
                file: None,
                next_lsn,
                good_len: scan.valid_len as u64,
            }),
            crash_hook: RwLock::new(None),
            frame_seq: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            metrics: RwLock::new(None),
            open_intents: Mutex::new(open_intents),
        };
        Ok((
            wal,
            WalScan {
                records,
                torn_bytes,
            },
        ))
    }

    /// Binds append counters into `registry` (idempotent; get-or-create).
    pub(crate) fn bind_metrics(&self, registry: &MetricsRegistry) {
        *write_unpoisoned(&self.metrics) = Some(WalMetrics {
            frames: registry.counter("edna_wal_frames_total", "WAL frames appended."),
            fsyncs: registry.counter("edna_wal_fsyncs_total", "WAL fsync calls."),
            bytes: registry.counter("edna_wal_bytes_total", "WAL bytes written."),
        });
    }

    /// Installs (or with `None` removes) a crash hook, resetting the frame
    /// index to 0 and clearing crash poisoning. The hook is consulted once
    /// per append, *before* the write reaches the file.
    pub fn set_crash_hook(&self, hook: Option<WalCrashHook>) {
        *write_unpoisoned(&self.crash_hook) = hook;
        self.frame_seq.store(0, Ordering::SeqCst);
        self.poisoned.store(false, Ordering::SeqCst);
    }

    /// Frames the installed hook has seen. With a never-firing hook this
    /// counts a workload's appends, giving the sweep bound for exhaustive
    /// crash injection.
    pub fn crash_frame_count(&self) -> u64 {
        self.frame_seq.load(Ordering::SeqCst)
    }

    /// The last LSN assigned to an appended frame (0 if none ever was).
    /// Monotonic across checkpoints: truncation keeps the counter.
    pub fn last_lsn(&self) -> u64 {
        lock_unpoisoned(&self.state).next_lsn - 1
    }

    /// Raises the LSN counter so the next append gets at least
    /// `min_next`. A checkpoint truncates the log file but the snapshot
    /// watermark keeps the old count, so a *reopened* log (which derives
    /// its counter from the — now empty — file) must be bumped past the
    /// watermark or its fresh frames would be skipped as already
    /// checkpointed on the next replay.
    pub fn ensure_next_lsn(&self, min_next: u64) {
        let mut state = lock_unpoisoned(&self.state);
        state.next_lsn = state.next_lsn.max(min_next);
    }

    /// Appends one record as an fsynced frame, returning its LSN.
    ///
    /// On a *real* append failure (partial write, failed fsync) the file
    /// is truncated back to the last known-good frame boundary before the
    /// error is returned, so the next append continues a clean log rather
    /// than writing after torn frame bytes — which would wedge the next
    /// recovery scan at the tear and silently drop every later committed
    /// frame. Only if that restore itself fails is the log poisoned.
    pub fn append(&self, record: &WalRecord) -> Result<u64> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(Error::Wal(
                "log poisoned by a crash or unrestorable append failure; reopen to recover"
                    .to_string(),
            ));
        }
        let mut state = lock_unpoisoned(&self.state);
        let lsn = state.next_lsn;
        let body = encode_body(lsn, record);
        let framed = frame::encode_record(&body);
        let crash = {
            let hook = read_unpoisoned(&self.crash_hook);
            hook.as_ref().and_then(|h| {
                let index = self.frame_seq.fetch_add(1, Ordering::SeqCst);
                h(index).map(|style| (index, style))
            })
        };
        if let Some((index, style)) = crash {
            self.poisoned.store(true, Ordering::SeqCst);
            match style {
                WalCrash::BeforeWrite => {}
                WalCrash::TornWrite => {
                    // Half a frame reaches the file, never synced. A real
                    // crash may persist any prefix; half exercises both a
                    // torn length header and a torn body across the sweep.
                    let _ = self.write_bytes(&mut state, &framed[..framed.len() / 2], false);
                }
                WalCrash::AfterWrite => {
                    self.write_bytes(&mut state, &framed, true)?;
                    state.good_len += framed.len() as u64;
                    state.next_lsn = lsn + 1;
                }
            }
            return Err(Error::FaultInjected(index));
        }
        if let Err(e) = self.write_bytes(&mut state, &framed, true) {
            // The write or fsync failed (ENOSPC, EIO, …): any prefix of
            // the frame — including unsynced post-fsync-failure bytes
            // that may yet persist — could be sitting mid-file. Restore
            // the known-good state before another append lands after it.
            self.restore_good_len(&mut state);
            return Err(e);
        }
        state.good_len += framed.len() as u64;
        state.next_lsn = lsn + 1;
        self.note_appended(record);
        Ok(lsn)
    }

    /// Tracks intent/commit markers on successful appends so a checkpoint
    /// can carry still-open intents into the fresh log.
    fn note_appended(&self, record: &WalRecord) {
        match record {
            WalRecord::DisguiseIntent { disguise_id, user } => {
                lock_unpoisoned(&self.open_intents).push((*disguise_id, user.clone()));
            }
            WalRecord::DisguiseCommit { disguise_id } => {
                lock_unpoisoned(&self.open_intents).retain(|(id, _)| id != disguise_id);
            }
            WalRecord::Txn { .. } => {}
        }
    }

    /// Truncates the file back to the last known-good frame boundary
    /// after a failed append, fsyncing the truncation. If the restore
    /// itself cannot be made durable the log is poisoned instead: callers
    /// must reopen (which re-runs torn-tail truncation) before writing
    /// again.
    fn restore_good_len(&self, state: &mut WalFile) {
        // Drop the append handle; its offset may sit past the tear.
        state.file = None;
        let restore = || -> std::io::Result<()> {
            let f = std::fs::OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(false)
                .open(&self.path)?;
            f.set_len(state.good_len)?;
            f.sync_all()?;
            Ok(())
        };
        if restore().is_err() {
            self.poisoned.store(true, Ordering::SeqCst);
        }
    }

    /// Appends + fsyncs `bytes`, opening the file lazily.
    fn write_bytes(&self, state: &mut WalFile, bytes: &[u8], sync: bool) -> Result<()> {
        if state.file.is_none() {
            let f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
                .map_err(|e| io_err("open WAL for append", e))?;
            state.file = Some(f);
        }
        let f = state.file.as_mut().expect("just opened");
        f.write_all(bytes).map_err(|e| io_err("append WAL", e))?;
        if sync {
            f.sync_all().map_err(|e| io_err("fsync WAL", e))?;
        }
        if let Some(m) = read_unpoisoned(&self.metrics).as_ref() {
            m.frames.inc();
            m.bytes.add(bytes.len() as u64);
            if sync {
                m.fsyncs.inc();
            }
        }
        Ok(())
    }

    /// Truncates the log to empty (checkpoint: the snapshot now contains
    /// every Txn frame). LSNs keep counting from where they were.
    ///
    /// Disguise intent markers still unmatched by a commit marker are
    /// re-appended to the fresh log (with new LSNs): they guard vault-side
    /// state that lives *outside* the snapshot, so erasing them would hide
    /// a half-applied disguise's orphaned vault entry from the next
    /// recovery.
    pub fn truncate(&self) -> Result<()> {
        let mut state = lock_unpoisoned(&self.state);
        // Reopen from scratch so the append offset resets with the file.
        state.file = None;
        let f = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)
            .map_err(|e| io_err("open WAL for truncation", e))?;
        f.sync_all().map_err(|e| io_err("fsync WAL", e))?;
        drop(f);
        state.good_len = 0;
        let open = lock_unpoisoned(&self.open_intents).clone();
        for (disguise_id, user) in open {
            let lsn = state.next_lsn;
            let body = encode_body(lsn, &WalRecord::DisguiseIntent { disguise_id, user });
            let framed = frame::encode_record(&body);
            self.write_bytes(&mut state, &framed, true)?;
            state.good_len += framed.len() as u64;
            state.next_lsn = lsn + 1;
        }
        Ok(())
    }

    /// The log file's current size in bytes.
    pub fn size_bytes(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }
}

// ---- record encoding --------------------------------------------------------

const KIND_TXN: u8 = 0;
const KIND_INTENT: u8 = 1;
const KIND_COMMIT: u8 = 2;

fn encode_body(lsn: u64, record: &WalRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(lsn);
    match record {
        WalRecord::Txn { ops } => {
            w.u8(KIND_TXN);
            w.u32(ops.len() as u32);
            for op in ops {
                encode_op(&mut w, op);
            }
        }
        WalRecord::DisguiseIntent { disguise_id, user } => {
            w.u8(KIND_INTENT);
            w.u64(*disguise_id);
            w.value(user);
        }
        WalRecord::DisguiseCommit { disguise_id } => {
            w.u8(KIND_COMMIT);
            w.u64(*disguise_id);
        }
    }
    w.buf
}

fn encode_op(w: &mut Writer, op: &RedoOp) {
    match op {
        RedoOp::Insert { table, row_id, row } => {
            w.u8(0);
            w.string(table);
            w.u64(*row_id as u64);
            w.u32(row.len() as u32);
            for v in row {
                w.value(v);
            }
        }
        RedoOp::Update { table, row_id, row } => {
            w.u8(1);
            w.string(table);
            w.u64(*row_id as u64);
            w.u32(row.len() as u32);
            for v in row {
                w.value(v);
            }
        }
        RedoOp::Delete { table, row_id } => {
            w.u8(2);
            w.string(table);
            w.u64(*row_id as u64);
        }
        RedoOp::CreateTable { image } => {
            w.u8(3);
            snapshot::encode_table(w, image);
        }
        RedoOp::DropTable { name } => {
            w.u8(4);
            w.string(name);
        }
        RedoOp::AlterTable { name, image } => {
            w.u8(5);
            w.string(name);
            snapshot::encode_table(w, image);
        }
        RedoOp::CreateIndex {
            table,
            name,
            column,
            unique,
        } => {
            w.u8(6);
            w.string(table);
            w.string(name);
            w.string(column);
            w.u8(u8::from(*unique));
        }
        RedoOp::SetNextAuto { table, value } => {
            w.u8(7);
            w.string(table);
            w.i64(*value);
        }
        RedoOp::SetNow { now } => {
            w.u8(8);
            w.i64(*now);
        }
    }
}

fn decode_body(body: &[u8]) -> Result<(u64, WalRecord)> {
    let mut r = Reader::new(body);
    let bad = |m: &str| Error::Wal(format!("corrupt WAL record: {m}"));
    let lsn = r.u64().map_err(|e| bad(&e.to_string()))?;
    let kind = r.u8().map_err(|e| bad(&e.to_string()))?;
    let record = match kind {
        KIND_TXN => {
            let n = r.u32().map_err(|e| bad(&e.to_string()))? as usize;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(decode_op(&mut r).map_err(|e| bad(&e.to_string()))?);
            }
            WalRecord::Txn { ops }
        }
        KIND_INTENT => WalRecord::DisguiseIntent {
            disguise_id: r.u64().map_err(|e| bad(&e.to_string()))?,
            user: r.value().map_err(|e| bad(&e.to_string()))?,
        },
        KIND_COMMIT => WalRecord::DisguiseCommit {
            disguise_id: r.u64().map_err(|e| bad(&e.to_string()))?,
        },
        k => return Err(bad(&format!("unknown record kind {k}"))),
    };
    if r.remaining() != 0 {
        return Err(bad("trailing bytes"));
    }
    Ok((lsn, record))
}

fn decode_op(r: &mut Reader<'_>) -> Result<RedoOp> {
    Ok(match r.u8()? {
        0 => {
            let table = r.string()?;
            let row_id = r.u64()? as RowId;
            let n = r.u32()? as usize;
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(r.value()?);
            }
            RedoOp::Insert { table, row_id, row }
        }
        1 => {
            let table = r.string()?;
            let row_id = r.u64()? as RowId;
            let n = r.u32()? as usize;
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(r.value()?);
            }
            RedoOp::Update { table, row_id, row }
        }
        2 => RedoOp::Delete {
            table: r.string()?,
            row_id: r.u64()? as RowId,
        },
        3 => RedoOp::CreateTable {
            image: snapshot::decode_table(r, 3)?,
        },
        4 => RedoOp::DropTable { name: r.string()? },
        5 => RedoOp::AlterTable {
            name: r.string()?,
            image: snapshot::decode_table(r, 3)?,
        },
        6 => RedoOp::CreateIndex {
            table: r.string()?,
            name: r.string()?,
            column: r.string()?,
            unique: r.u8()? != 0,
        },
        7 => RedoOp::SetNextAuto {
            table: r.string()?,
            value: r.i64()?,
        },
        8 => RedoOp::SetNow { now: r.i64()? },
        t => return Err(Error::Wal(format!("unknown redo op tag {t}"))),
    })
}

// ---- undo → redo conversion -------------------------------------------------

/// Converts a committing transaction's undo log into redo operations.
///
/// The undo log records, per operation, how to restore the *previous*
/// state; redo needs the *resulting* state. Walking the log in reverse
/// recovers each operation's after-image: the state just after op `i` is
/// whatever the nearest later op recorded as its before-image — or the
/// live (committed) state if no later op touched that row/table. The
/// emitted list is then reversed back into application order.
///
/// Redo ops are replayed physically, so interleavings that reuse a
/// row slot or table name within one transaction (insert-then-delete,
/// drop-then-recreate) are safe: each op *sets* state, and replay
/// tolerates overwriting an occupied slot.
pub(crate) fn redo_from_txn(inner: &Inner, txn: &Txn) -> Result<Vec<RedoOp>> {
    // After-images discovered so far while walking backwards. Keys are
    // lowercase table names; a `None` image means "absent at that point".
    let mut row_after: HashMap<(String, RowId), Option<Row>> = HashMap::new();
    let mut table_after: HashMap<String, Option<TableSnapshot>> = HashMap::new();
    let mut auto_after: HashMap<String, i64> = HashMap::new();
    let mut rev = Vec::with_capacity(txn.undo.len());

    // The image of `table`.`id` just after the op being visited.
    let row_at = |row_after: &HashMap<(String, RowId), Option<Row>>,
                  table_after: &HashMap<String, Option<TableSnapshot>>,
                  key: &str,
                  id: RowId|
     -> Option<Row> {
        if let Some(img) = row_after.get(&(key.to_string(), id)) {
            return img.clone();
        }
        if let Some(timg) = table_after.get(key) {
            return timg.as_ref().and_then(|t| {
                t.rows
                    .iter()
                    .find(|(rid, _)| *rid == id)
                    .map(|(_, r)| r.clone())
            });
        }
        inner.tables.get(key).and_then(|t| t.get(id)).cloned()
    };
    // The image of `table` just after the op being visited.
    let table_at = |table_after: &HashMap<String, Option<TableSnapshot>>,
                    key: &str|
     -> Option<TableSnapshot> {
        if let Some(img) = table_after.get(key) {
            return img.clone();
        }
        inner.tables.get(key).map(TableSnapshot::of)
    };

    for op in txn.undo.iter().rev() {
        match op {
            UndoOp::Inserted { table, row_id } => {
                let key = table.to_lowercase();
                let row = row_at(&row_after, &table_after, &key, *row_id)
                    .ok_or_else(|| Error::Wal(format!("no after-image for insert into {table}")))?;
                rev.push(RedoOp::Insert {
                    table: key.clone(),
                    row_id: *row_id,
                    row,
                });
                row_after.insert((key, *row_id), None);
            }
            UndoOp::Updated {
                table,
                row_id,
                old_row,
            } => {
                let key = table.to_lowercase();
                let row = row_at(&row_after, &table_after, &key, *row_id)
                    .ok_or_else(|| Error::Wal(format!("no after-image for update of {table}")))?;
                rev.push(RedoOp::Update {
                    table: key.clone(),
                    row_id: *row_id,
                    row,
                });
                row_after.insert((key, *row_id), Some(old_row.clone()));
            }
            UndoOp::Deleted { table, row_id, row } => {
                let key = table.to_lowercase();
                rev.push(RedoOp::Delete {
                    table: key.clone(),
                    row_id: *row_id,
                });
                row_after.insert((key, *row_id), Some(row.clone()));
            }
            UndoOp::CreatedTable { name } => {
                let key = name.to_lowercase();
                let image = table_at(&table_after, &key).ok_or_else(|| {
                    Error::Wal(format!("no after-image for created table {name}"))
                })?;
                rev.push(RedoOp::CreateTable { image });
                table_after.insert(key, None);
            }
            UndoOp::DroppedTable { name, table } => {
                let key = name.to_lowercase();
                rev.push(RedoOp::DropTable { name: key.clone() });
                table_after.insert(key, Some(TableSnapshot::of(table)));
            }
            UndoOp::AlteredTable { name, table } => {
                let key = name.to_lowercase();
                let image = table_at(&table_after, &key).ok_or_else(|| {
                    Error::Wal(format!("no after-image for altered table {name}"))
                })?;
                rev.push(RedoOp::AlterTable {
                    name: key.clone(),
                    image,
                });
                table_after.insert(key, Some(TableSnapshot::of(table)));
            }
            UndoOp::CreatedIndex { table, index } => {
                let key = table.to_lowercase();
                let timg = table_at(&table_after, &key).ok_or_else(|| {
                    Error::Wal(format!("no table image for index {index} on {table}"))
                })?;
                // The index definition as it existed just after creation.
                let full = inner.tables.get(&key);
                let (column, unique) = timg
                    .indexes
                    .iter()
                    .find(|(n, _, _)| n.eq_ignore_ascii_case(index))
                    .map(|(_, c, u)| (c.clone(), *u))
                    .or_else(|| {
                        full.and_then(|t| {
                            t.indexes
                                .iter()
                                .find(|ix| ix.name.eq_ignore_ascii_case(index))
                                .map(|ix| (t.schema.columns[ix.column].name.clone(), ix.unique))
                        })
                    })
                    .ok_or_else(|| {
                        Error::Wal(format!("created index {index} not found on {table}"))
                    })?;
                rev.push(RedoOp::CreateIndex {
                    table: key,
                    name: index.clone(),
                    column,
                    unique,
                });
            }
            UndoOp::AutoIncrement { table, old_value } => {
                let key = table.to_lowercase();
                let value = auto_after
                    .get(&key)
                    .copied()
                    .or_else(|| {
                        table_after
                            .get(&key)
                            .and_then(|t| t.as_ref().map(|t| t.next_auto))
                    })
                    .or_else(|| inner.tables.get(&key).map(|t| t.next_auto))
                    .ok_or_else(|| {
                        Error::Wal(format!("no after-image for auto-increment of {table}"))
                    })?;
                rev.push(RedoOp::SetNextAuto {
                    table: key.clone(),
                    value,
                });
                auto_after.insert(key, *old_value);
            }
        }
    }
    rev.reverse();
    Ok(rev)
}

// ---- replay -----------------------------------------------------------------

/// Applies one redo op to engine state, physically and idempotently: ops
/// *set* state, so replaying a frame whose effects are already present
/// (snapshot taken mid-append, double recovery) converges to the same
/// result. No constraints are re-checked — the ops describe a state that
/// passed them when it committed.
pub(crate) fn apply_op(inner: &mut Inner, op: &RedoOp) -> Result<()> {
    match op {
        RedoOp::Insert { table, row_id, row } | RedoOp::Update { table, row_id, row } => {
            let t = inner
                .tables
                .get_mut(table)
                .ok_or_else(|| Error::Wal(format!("replay into missing table {table}")))?;
            if t.get(*row_id).is_some() {
                t.replace(*row_id, row.clone());
            } else {
                t.restore_at(*row_id, row.clone());
            }
        }
        RedoOp::Delete { table, row_id } => {
            if let Some(t) = inner.tables.get_mut(table) {
                t.remove(*row_id);
            }
        }
        RedoOp::CreateTable { image } => {
            let key = image.schema.name.to_lowercase();
            let table = image.clone().into_table()?;
            if inner.tables.insert(key.clone(), table).is_none() {
                inner.table_order.push(key);
            }
        }
        RedoOp::DropTable { name } => {
            let key = name.to_lowercase();
            inner.tables.remove(&key);
            inner.table_order.retain(|k| k != &key);
        }
        RedoOp::AlterTable { name, image } => {
            let old_key = name.to_lowercase();
            let new_key = image.schema.name.to_lowercase();
            let table = image.clone().into_table()?;
            inner.tables.remove(&old_key);
            if inner.tables.insert(new_key.clone(), table).is_none() {
                match inner.table_order.iter().position(|k| k == &old_key) {
                    Some(pos) => inner.table_order[pos] = new_key,
                    None => inner.table_order.push(new_key),
                }
            }
        }
        RedoOp::CreateIndex {
            table,
            name,
            column,
            unique,
        } => {
            let t = inner
                .tables
                .get_mut(table)
                .ok_or_else(|| Error::Wal(format!("replay index onto missing table {table}")))?;
            let already = t
                .indexes
                .iter()
                .any(|ix| ix.name.eq_ignore_ascii_case(name));
            if !already {
                let pos = t.schema.require_column(column)?;
                t.add_index(name.clone(), pos, *unique)?;
            }
        }
        RedoOp::SetNextAuto { table, value } => {
            if let Some(t) = inner.tables.get_mut(table) {
                t.next_auto = *value;
            }
        }
        RedoOp::SetNow { now } => {
            inner.now = *now;
        }
    }
    Ok(())
}

/// The outcome of replaying a scanned log over a snapshot.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Txn frames whose LSN exceeded the snapshot watermark and were
    /// applied.
    pub frames_replayed: usize,
    /// Intent markers with no matching commit marker, in log order.
    pub open_intents: Vec<OpenIntent>,
}

/// A report of one recovery pass (what `Workspace::open` and the
/// `edna recover` subcommand surface).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Complete frames found in the log.
    pub frames_scanned: usize,
    /// Txn frames replayed over the snapshot.
    pub frames_replayed: usize,
    /// Torn-tail bytes truncated off the log.
    pub torn_bytes: usize,
    /// The snapshot's checkpoint watermark (frames at or below it were
    /// skipped).
    pub snapshot_watermark: u64,
    /// The highest LSN in the log (equals the watermark when no replay
    /// was needed; 0 for an empty log).
    pub last_lsn: u64,
    /// Disguise intents with no matching commit marker; `edna-core`
    /// resolves each to "completed" or "undone".
    pub open_intents: Vec<OpenIntent>,
    /// Whether a complete snapshot temp file was promoted to
    /// authoritative (crash between temp fsync and rename). Set by the
    /// caller that owns snapshot file management, not by `open_durable`.
    pub snapshot_promoted: bool,
    /// Wall-clock time recovery took.
    pub duration: Duration,
}

impl RecoveryReport {
    /// Whether recovery changed (or found suspect) anything at all.
    pub fn acted(&self) -> bool {
        self.frames_replayed > 0
            || self.torn_bytes > 0
            || !self.open_intents.is_empty()
            || self.snapshot_promoted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("edna_wal_{}_{name}", std::process::id()))
    }

    #[test]
    fn record_round_trip() {
        let ops = vec![
            RedoOp::Insert {
                table: "t".into(),
                row_id: 3,
                row: vec![Value::Int(1), Value::Text("x".into())],
            },
            RedoOp::Delete {
                table: "t".into(),
                row_id: 0,
            },
            RedoOp::SetNextAuto {
                table: "t".into(),
                value: 9,
            },
            RedoOp::SetNow { now: -5 },
        ];
        let body = encode_body(7, &WalRecord::Txn { ops });
        let (lsn, rec) = decode_body(&body).unwrap();
        assert_eq!(lsn, 7);
        let WalRecord::Txn { ops } = rec else {
            panic!("wrong kind")
        };
        assert_eq!(ops.len(), 4);
        assert!(matches!(&ops[0], RedoOp::Insert { table, row_id: 3, row }
            if table == "t" && row.len() == 2));

        let body = encode_body(
            8,
            &WalRecord::DisguiseIntent {
                disguise_id: 12,
                user: Value::Int(42),
            },
        );
        let (lsn, rec) = decode_body(&body).unwrap();
        assert_eq!(lsn, 8);
        assert!(
            matches!(rec, WalRecord::DisguiseIntent { disguise_id: 12, user }
            if user == Value::Int(42))
        );
    }

    #[test]
    fn append_scan_and_torn_tail_truncation() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, scan) = Wal::open(&path).unwrap();
            assert!(scan.records.is_empty());
            wal.append(&WalRecord::DisguiseCommit { disguise_id: 1 })
                .unwrap();
            wal.append(&WalRecord::DisguiseCommit { disguise_id: 2 })
                .unwrap();
            assert_eq!(wal.last_lsn(), 2);
        }
        // Tear the tail by appending garbage.
        let mut data = std::fs::read(&path).unwrap();
        let full = data.len();
        data.extend_from_slice(&[0xAB; 9]);
        std::fs::write(&path, &data).unwrap();
        let (wal, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 9);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full as u64);
        // LSNs continue past the recovered tail.
        let lsn = wal
            .append(&WalRecord::DisguiseCommit { disguise_id: 3 })
            .unwrap();
        assert_eq!(lsn, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_hook_styles_and_poisoning() {
        let path = tmp("crash");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 1 })
            .unwrap();
        let base = std::fs::metadata(&path).unwrap().len();

        // BeforeWrite: nothing reaches the file; the log is poisoned.
        wal.set_crash_hook(Some(Arc::new(|i| {
            (i == 0).then_some(WalCrash::BeforeWrite)
        })));
        let err = wal
            .append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap_err();
        assert_eq!(err, Error::FaultInjected(0));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), base);
        assert!(matches!(
            wal.append(&WalRecord::DisguiseCommit { disguise_id: 2 }),
            Err(Error::Wal(_))
        ));

        // TornWrite: a partial frame lands; reopen truncates it away.
        wal.set_crash_hook(Some(Arc::new(|i| (i == 0).then_some(WalCrash::TornWrite))));
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap_err();
        assert!(std::fs::metadata(&path).unwrap().len() > base);
        let (wal, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_bytes > 0);

        // AfterWrite: the frame is durable; only the caller's follow-up dies.
        wal.set_crash_hook(Some(Arc::new(|i| (i == 0).then_some(WalCrash::AfterWrite))));
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap_err();
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_append_restores_known_good_state() {
        let path = tmp("real_fail");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 1 })
            .unwrap();
        let good = std::fs::metadata(&path).unwrap().len();

        // Simulate partially-persisted frame bytes from a failed append
        // (e.g. an fsync that failed after its writes reached the file):
        // garbage past the good boundary, then a write error on the next
        // append, injected by swapping in a read-only handle.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0xEE; 7]).unwrap();
        }
        lock_unpoisoned(&wal.state).file = Some(std::fs::File::open(&path).unwrap());
        let err = wal
            .append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap_err();
        assert!(matches!(err, Error::Wal(_)), "got: {err:?}");

        // The restore truncated back to the last good frame: no torn
        // bytes remain, the log is NOT poisoned, and the next append
        // succeeds with the same LSN the failed one would have used.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
        let lsn = wal
            .append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap();
        assert_eq!(lsn, 2);
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 2, "both frames intact after reopen");
        assert_eq!(scan.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_carries_open_intents() {
        let path = tmp("carry_intents");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::DisguiseIntent {
            disguise_id: 7,
            user: Value::Int(1),
        })
        .unwrap();
        wal.append(&WalRecord::DisguiseIntent {
            disguise_id: 8,
            user: Value::Int(2),
        })
        .unwrap();
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 8 })
            .unwrap();
        wal.append(&WalRecord::Txn { ops: Vec::new() }).unwrap();
        wal.truncate().unwrap();
        // The still-open intent (7) survives the checkpoint, re-appended
        // with a fresh LSN; the matched pair (8) and the Txn frame do not.
        let (wal2, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        let (lsn, rec) = &scan.records[0];
        assert!(*lsn > 4, "re-appended intent keeps counting LSNs");
        assert!(
            matches!(rec, WalRecord::DisguiseIntent { disguise_id: 7, user }
            if *user == Value::Int(1))
        );
        // Committing it (e.g. recovery resolving the intent) then
        // checkpointing empties the log for good.
        wal2.append(&WalRecord::DisguiseCommit { disguise_id: 7 })
            .unwrap();
        wal2.truncate().unwrap();
        assert_eq!(wal2.size_bytes(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_keeps_lsn_counter() {
        let path = tmp("truncate");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 1 })
            .unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.size_bytes(), 0);
        let lsn = wal
            .append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap();
        assert_eq!(lsn, 2, "LSNs must not reset at checkpoint");
        std::fs::remove_file(&path).unwrap();
    }
}
