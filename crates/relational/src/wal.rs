//! Write-ahead log: redo records for committed transactions, flushed
//! through a group-commit pipeline.
//!
//! The engine is snapshot-durable on its own — state survives only as far
//! as the last [`crate::snapshot::save`]. The WAL closes that gap: every
//! committed transaction gets an fsynced *redo frame* before the commit
//! returns, so `Workspace`-level recovery can replay the tail of the log
//! over the last snapshot and recover every committed write.
//!
//! # Group commit
//!
//! Committers do not write the file themselves. [`Wal::stage`] assigns an
//! LSN and queues the encoded frame; [`Wal::wait_durable`] blocks until
//! that LSN is on disk. The first waiter to find the pipeline free
//! becomes the batch *leader*: it drains the queue (up to
//! [`WalGroupConfig::max_frames`]), writes every frame with one
//! `write`+`fsync` pair, and wakes the followers. While a flush is in
//! flight new committers keep staging, so batches form naturally under
//! load — N concurrent committers cost ~1 fsync per batch instead of N —
//! while a solo committer flushes immediately and sees exactly one fsync
//! with no added latency. [`WalGroupConfig::max_delay`] optionally trades
//! latency for bigger batches.
//!
//! A *failed* batch flush fails every waiter in the batch (and any frames
//! staged behind it): the file is truncated back to the last known-good
//! frame boundary, the LSN counter rewinds to just past the durable tail,
//! and the abort handler installed by `Database::attach_wal` rolls the
//! victims' already-visible effects back before any waiter is released.
//!
//! # Records
//!
//! Frames use the shared [`edna_util::frame`] codec
//! (`[len][body][sha256]`, torn tail truncated on open). Each body is
//! `[u64 LSN][u8 kind][payload]`:
//!
//! - **Txn** — the redo image of one committed transaction (implicit
//!   single-statement transactions included), as a list of [`RedoOp`]s.
//!   Redo ops are *physical-logical*: they address rows by slot id
//!   ([`RowId`]) and carry full row images, so replay needs no SQL,
//!   re-checks no constraints, and is idempotent (each op sets state
//!   rather than transforming it). Row ids are stable across snapshots as
//!   of format v3.
//! - **DisguiseIntent / DisguiseCommit** — markers bracketing a disguise
//!   application's vault-side writes (see `edna-core`); an intent without
//!   a matching commit or committed history row tells recovery to undo
//!   the vault half of a half-applied disguise.
//!
//! LSNs increase monotonically and never reset, surviving checkpoints: a
//! snapshot records the last LSN it contains (its *watermark*), a
//! checkpoint truncates the log, and replay skips any frame at or below
//! the watermark of the snapshot it starts from.
//!
//! # Crash points
//!
//! The [`WalCrashHook`] is the WAL-side half of the fault-injection
//! harness (`Database::set_fault_hook` is the statement-side half): it is
//! consulted once per frame, at flush time, with the frame's 0-based
//! index, and may kill the flush before the frame's write, mid-write
//! (torn frame, no fsync), or after a write+fsync — the three states a
//! real crash can leave. An injected crash also poisons the log (the
//! process is presumed dead), so later appends fail rather than writing
//! after a gap. A *real* flush failure (ENOSPC, EIO, failed fsync) is
//! handled differently: the file is truncated back to the last good
//! frame boundary so the log stays valid for further appends, and the
//! log is poisoned only if that restore itself fails.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

use edna_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use edna_util::frame;
use edna_util::sync::{lock_unpoisoned, read_unpoisoned, write_unpoisoned};

use crate::error::{Error, Result};
use crate::exec::Inner;
use crate::snapshot::{self, Reader, TableSnapshot, Writer};
use crate::storage::RowId;
use crate::txn::{Txn, UndoOp};
use crate::value::{Row, Value};

/// One redo operation inside a committed transaction's frame.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // Field names are self-describing.
pub enum RedoOp {
    /// Set slot `row_id` of `table` to `row` (insert, or overwrite on
    /// replay over state that already contains it).
    Insert {
        table: String,
        row_id: RowId,
        row: Row,
    },
    /// Replace slot `row_id` of `table` with `row`.
    Update {
        table: String,
        row_id: RowId,
        row: Row,
    },
    /// Clear slot `row_id` of `table`.
    Delete { table: String, row_id: RowId },
    /// (Re)create a table from its full image.
    CreateTable { image: TableSnapshot },
    /// Drop a table.
    DropTable { name: String },
    /// Replace a table wholesale with its post-alter image.
    AlterTable { name: String, image: TableSnapshot },
    /// Create a secondary index.
    CreateIndex {
        table: String,
        name: String,
        column: String,
        unique: bool,
    },
    /// Set a table's AUTO_INCREMENT counter.
    SetNextAuto { table: String, value: i64 },
    /// Set the logical clock.
    SetNow { now: i64 },
}

/// One WAL record (the body of one frame, minus its LSN).
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// The redo image of one committed transaction.
    Txn {
        /// Redo operations in application order.
        ops: Vec<RedoOp>,
    },
    /// A disguise application is about to write vault-side state.
    DisguiseIntent {
        /// The history row id the disguise was recorded under.
        disguise_id: u64,
        /// The disguise's subject user id (`Value::Null` for global
        /// disguises), as passed to the vault layer.
        user: Value,
    },
    /// The disguise application committed; its stores agree.
    DisguiseCommit {
        /// The matching intent's history row id.
        disguise_id: u64,
    },
    /// A scheduled policy run is starting (the decay daemon's bracket).
    PolicyRunStart {
        /// The policy's registered name.
        policy: String,
        /// The logical tick timestamp the run evaluates at.
        now: i64,
    },
    /// The matching policy run finished (complete or budget-paused); its
    /// disguise applications are individually intent/commit-bracketed, so
    /// an unmatched start marker is benign — the run resumes next tick.
    PolicyRunEnd {
        /// The matching start marker's policy name.
        policy: String,
    },
    /// The replication epoch changed (`edna promote`). Persisted in the
    /// log so a restarted node remembers which generation of primaries it
    /// belongs to; replication streams carry the sender's epoch on every
    /// frame and a receiver rejects anything older than its own — the
    /// fencing that keeps a deposed primary from feeding a promoted node.
    Epoch {
        /// The new epoch (monotonically increasing, starts at 0).
        epoch: u64,
    },
}

/// A disguise intent recovered from the log with no matching commit
/// marker: the application may have died between its vault writes and its
/// database commit. `edna-core` resolves it against the history table.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenIntent {
    /// LSN of the intent frame.
    pub lsn: u64,
    /// The history row id the disguise would have been recorded under.
    pub disguise_id: u64,
    /// The disguise's subject user id.
    pub user: Value,
}

/// A policy-run start marker recovered from the log with no matching end
/// marker: the process died mid-tick. Unlike an open disguise intent this
/// needs no repair — each disguise the run applied has its own
/// intent/commit bracket, and the scheduler's persisted last-run stamp is
/// only advanced when a run completes, so the policy simply re-fires (and
/// resumes) on the next tick.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenPolicyRun {
    /// LSN of the start frame.
    pub lsn: u64,
    /// The policy's registered name.
    pub policy: String,
    /// The logical tick timestamp the interrupted run evaluated at.
    pub now: i64,
}

/// How a [`WalCrashHook`] kills an append — the three states a real crash
/// can leave a log in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalCrash {
    /// Die before anything reaches the file: the frame is wholly absent.
    BeforeWrite,
    /// Die mid-write: a torn frame prefix reaches the file, unsynced.
    TornWrite,
    /// Die after write + fsync: the frame is durable, the caller's
    /// post-append work is lost.
    AfterWrite,
}

/// A WAL-level crash hook: called with the 0-based index of each frame
/// appended since the hook was installed; returning `Some(style)` kills
/// that append with [`Error::FaultInjected`] and poisons the log.
pub type WalCrashHook = Arc<dyn Fn(u64) -> Option<WalCrash> + Send + Sync>;

/// What [`Wal::open`] found in the file.
#[derive(Debug)]
pub struct WalScan {
    /// Every complete frame, as `(lsn, record)`, in log order.
    pub records: Vec<(u64, WalRecord)>,
    /// Torn-tail bytes truncated away.
    pub torn_bytes: usize,
}

/// Counters bound into a database's metrics registry on attach.
struct WalMetrics {
    frames: Arc<Counter>,
    fsyncs: Arc<Counter>,
    bytes: Arc<Counter>,
    group_commits: Arc<Counter>,
    group_size: Arc<Histogram>,
    fsyncs_saved: Arc<Counter>,
    frames_per_fsync: Arc<Gauge>,
}

struct WalFile {
    file: Option<std::fs::File>,
    /// File length as of the last successful flush (or truncation) — the
    /// restore point when a real flush fails partway through.
    good_len: u64,
}

/// Tuning knobs for the group-commit pipeline.
#[derive(Debug, Clone, Copy)]
pub struct WalGroupConfig {
    /// Most frames one leader flushes in a single write+fsync.
    pub max_frames: usize,
    /// How long a leader waits for co-committers to stage before
    /// flushing. The wait is *adaptive*: it is honored only when the
    /// queue (or the previous batch) shows more than one committer, so
    /// a strictly solo committer always sees one immediate fsync with
    /// no added latency — and under contention the pipeline escapes the
    /// steady state where each flush wakes only the previous batch's
    /// committers and batches never grow. Zero disables accumulation
    /// (batching still emerges while a flush is in flight).
    pub max_delay: Duration,
    /// Lower bound on the wall-clock cost of one batch flush (padded
    /// with a sleep when the real fsync beats it). Pins the relative
    /// price of durability on hosts whose fsync is too fast for
    /// group-commit effects to be measurable; zero disables.
    pub fsync_floor: Duration,
}

impl Default for WalGroupConfig {
    fn default() -> WalGroupConfig {
        WalGroupConfig {
            max_frames: 64,
            max_delay: Duration::from_micros(500),
            fsync_floor: Duration::ZERO,
        }
    }
}

/// A staged frame's claim check: pass to [`Wal::wait_durable`] to block
/// until the frame is on disk. The internal stage sequence number — not
/// the LSN — identifies the frame: a failed batch rewinds the LSN
/// counter, so LSNs can be reassigned, while stage seqs never are.
#[derive(Debug, Clone, Copy)]
pub struct WalTicket {
    seq: u64,
    /// The LSN assigned to the staged frame.
    pub lsn: u64,
}

/// Marker bookkeeping a staged frame carries so `open_intents` can be
/// updated when (and only when) the frame actually reaches disk.
enum MarkerNote {
    Intent(u64, Value),
    Commit(u64),
    PolicyStart(String, i64),
    PolicyEnd(String),
}

/// One frame queued for the next batch flush.
struct StagedFrame {
    seq: u64,
    lsn: u64,
    bytes: Vec<u8>,
    note: Option<MarkerNote>,
}

/// Why a staged frame's waiter is being failed.
enum AbortCause {
    /// The crash hook killed the flush at this frame (hook index).
    Injected(u64),
    /// The batch failed for a real (or neighboring) reason.
    Failed(String),
}

impl AbortCause {
    fn into_error(self) -> Error {
        match self {
            AbortCause::Injected(index) => Error::FaultInjected(index),
            AbortCause::Failed(msg) => Error::Wal(msg),
        }
    }
}

/// How one batch flush failed (internal to the leader protocol).
enum BatchFailure {
    /// The crash hook fired at the frame staged under `seq`.
    /// `persisted_lsn` is `Some` when the crash style left frames durable
    /// through that LSN ([`WalCrash::AfterWrite`]).
    Injected {
        seq: u64,
        index: u64,
        persisted_lsn: Option<u64>,
    },
    /// A real I/O failure; the file was restored to the good boundary.
    Real(Error),
}

/// Commit-pipeline state shared by stagers, waiters, and the leader.
struct GroupState {
    /// Frames staged and not yet flushed, in LSN order.
    pending: VecDeque<StagedFrame>,
    /// Next LSN to assign.
    next_lsn: u64,
    /// Next stage sequence number to assign (starts at 1).
    next_seq: u64,
    /// Highest stage seq whose frame is durable *and acknowledged* — the
    /// waiters' release cursor.
    durable_seq: u64,
    /// Highest LSN durable on disk — the floor a failed batch rewinds
    /// `next_lsn` to (+1). Can run ahead of `durable_seq`'s frame when an
    /// injected `AfterWrite` crash makes frames durable but unacked.
    durable_lsn: u64,
    /// A leader is writing a batch (pipeline busy; new frames queue up).
    flushing: bool,
    /// A failed batch is being rolled back: staging is refused and abort
    /// verdicts are withheld until the rollback completes.
    aborting: bool,
    /// Abort verdicts by stage seq, awaiting pickup by their waiters.
    aborted: HashMap<u64, AbortCause>,
    /// How many frames the previous batch carried — the concurrency
    /// signal the adaptive accumulation delay keys off.
    last_batch_frames: usize,
}

/// Callback invoked with the *LSNs* of every frame killed by a failed
/// batch, before any of their waiters are released. `Database` uses it to
/// roll back the victims' still-visible transaction effects.
pub type WalAbortHandler = Arc<dyn Fn(&[u64]) + Send + Sync>;

/// Replication tap: called once per frame — `(lsn, epoch, framed bytes)` —
/// immediately after the batch flush that made the frame durable (frames
/// arrive in LSN order). Must not block: it runs on the group-commit
/// leader thread; a replication hub enqueues into bounded per-follower
/// buffers and drops stalled followers rather than stalling here.
pub type WalFrameSink = Arc<dyn Fn(u64, u64, &[u8]) + Send + Sync>;

/// Durability-quorum gate: called with the highest LSN of a freshly
/// durable batch *before* any of the batch's waiters are released. A
/// synchronous-replication hub blocks here until enough followers have
/// acked the LSN (with a bounded timeout + degradation path — it must
/// never wedge the commit pipeline indefinitely).
pub type WalCommitGate = Arc<dyn Fn(u64) + Send + Sync>;

/// An append-only redo log with group commit.
///
/// Obtained from [`Wal::open`] and attached to a database with
/// `Database::attach_wal`; thereafter every committed transaction's frame
/// is durable (via a shared batch fsync) before its commit returns.
pub struct Wal {
    path: PathBuf,
    state: Mutex<WalFile>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    config: RwLock<WalGroupConfig>,
    abort_handler: RwLock<Option<WalAbortHandler>>,
    crash_hook: RwLock<Option<WalCrashHook>>,
    frame_sink: RwLock<Option<WalFrameSink>>,
    commit_gate: RwLock<Option<WalCommitGate>>,
    /// Replication epoch (highest `Epoch` record seen or appended).
    epoch: AtomicU64,
    frame_seq: AtomicU64,
    poisoned: AtomicBool,
    metrics: RwLock<Option<WalMetrics>>,
    /// Intent markers appended (or found on open) with no matching commit
    /// marker yet, as `(disguise_id, user)`. A checkpoint truncation
    /// re-appends these to the fresh log: the vault-side state they guard
    /// lives outside the snapshot, so recovery must still see them.
    open_intents: Mutex<Vec<(u64, Value)>>,
    /// Policy-run start markers with no matching end marker yet, as
    /// `(policy, now)`. Carried across checkpoint truncation like
    /// `open_intents` so an interrupted tick stays visible to recovery.
    open_policy_runs: Mutex<Vec<(String, i64)>>,
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Wal(format!("{what}: {e}"))
}

impl Wal {
    /// Opens (or creates) the log at `path`, truncating any torn tail and
    /// decoding every complete frame. The returned [`WalScan`] is the
    /// replay input; the `Wal` continues appending after the valid tail.
    pub fn open(path: impl AsRef<Path>) -> Result<(Wal, WalScan)> {
        let path = path.as_ref().to_path_buf();
        let data = match std::fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("read WAL", e)),
        };
        let scan = frame::scan_records(&data);
        if scan.valid_len < data.len() {
            // Torn tail: truncate back to the last complete frame.
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err("open WAL for truncation", e))?;
            f.set_len(scan.valid_len as u64)
                .map_err(|e| io_err("truncate WAL", e))?;
            f.sync_all().map_err(|e| io_err("fsync WAL", e))?;
        }
        let torn_bytes = scan.torn_bytes(data.len());
        let mut records = Vec::with_capacity(scan.records.len());
        let mut next_lsn = 1;
        let mut epoch = 0u64;
        let mut open_intents: Vec<(u64, Value)> = Vec::new();
        let mut open_policy_runs: Vec<(String, i64)> = Vec::new();
        for body in &scan.records {
            let (lsn, record) = decode_body(body)?;
            next_lsn = next_lsn.max(lsn + 1);
            match &record {
                WalRecord::DisguiseIntent { disguise_id, user } => {
                    open_intents.push((*disguise_id, user.clone()));
                }
                WalRecord::DisguiseCommit { disguise_id } => {
                    open_intents.retain(|(id, _)| id != disguise_id);
                }
                WalRecord::PolicyRunStart { policy, now } => {
                    open_policy_runs.push((policy.clone(), *now));
                }
                WalRecord::PolicyRunEnd { policy } => {
                    open_policy_runs.retain(|(name, _)| name != policy);
                }
                WalRecord::Epoch { epoch: e } => epoch = epoch.max(*e),
                WalRecord::Txn { .. } => {}
            }
            records.push((lsn, record));
        }
        let wal = Wal {
            path,
            state: Mutex::new(WalFile {
                file: None,
                good_len: scan.valid_len as u64,
            }),
            group: Mutex::new(GroupState {
                pending: VecDeque::new(),
                next_lsn,
                next_seq: 1,
                durable_seq: 0,
                durable_lsn: next_lsn - 1,
                flushing: false,
                aborting: false,
                aborted: HashMap::new(),
                last_batch_frames: 0,
            }),
            group_cv: Condvar::new(),
            config: RwLock::new(WalGroupConfig::default()),
            abort_handler: RwLock::new(None),
            crash_hook: RwLock::new(None),
            frame_sink: RwLock::new(None),
            commit_gate: RwLock::new(None),
            epoch: AtomicU64::new(epoch),
            frame_seq: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            metrics: RwLock::new(None),
            open_intents: Mutex::new(open_intents),
            open_policy_runs: Mutex::new(open_policy_runs),
        };
        Ok((
            wal,
            WalScan {
                records,
                torn_bytes,
            },
        ))
    }

    /// Binds append counters into `registry` (idempotent; get-or-create).
    pub(crate) fn bind_metrics(&self, registry: &MetricsRegistry) {
        *write_unpoisoned(&self.metrics) = Some(WalMetrics {
            frames: registry.counter("edna_wal_frames_total", "WAL frames appended."),
            fsyncs: registry.counter("edna_wal_fsyncs_total", "WAL fsync calls."),
            bytes: registry.counter("edna_wal_bytes_total", "WAL bytes written."),
            group_commits: registry.counter(
                "edna_wal_group_commits_total",
                "Group-commit batch flushes (one fsync each).",
            ),
            group_size: registry.histogram(
                "edna_wal_group_size",
                "Frames per group-commit batch (unit: frames, not µs).",
                &[1, 2, 4, 8, 16, 32, 64, 128],
            ),
            fsyncs_saved: registry.counter(
                "edna_wal_group_fsyncs_saved_total",
                "Fsyncs avoided by batching (batch size - 1, summed).",
            ),
            frames_per_fsync: registry.gauge(
                "edna_wal_frames_per_fsync",
                "Cumulative mean frames per fsync, scaled by 1000.",
            ),
        });
    }

    /// Replaces the group-commit tuning knobs (defaults: flush
    /// immediately, at most 64 frames per batch, no fsync floor).
    pub fn set_group_commit(&self, cfg: WalGroupConfig) {
        *write_unpoisoned(&self.config) = cfg;
    }

    /// Installs (or with `None` removes) the failed-batch abort handler.
    /// It runs on the leader thread of a failed flush, after the file is
    /// restored and before any waiter is released, with the LSNs of every
    /// killed frame.
    pub fn set_abort_handler(&self, handler: Option<WalAbortHandler>) {
        *write_unpoisoned(&self.abort_handler) = handler;
    }

    /// Installs (or with `None` removes) a crash hook, resetting the frame
    /// index to 0 and clearing crash poisoning. The hook is consulted once
    /// per frame at flush time, *before* that frame's write reaches the
    /// file (frames flush in LSN order, so indices follow append order).
    pub fn set_crash_hook(&self, hook: Option<WalCrashHook>) {
        *write_unpoisoned(&self.crash_hook) = hook;
        self.frame_seq.store(0, Ordering::SeqCst);
        self.poisoned.store(false, Ordering::SeqCst);
    }

    /// Frames the installed hook has seen. With a never-firing hook this
    /// counts a workload's appends, giving the sweep bound for exhaustive
    /// crash injection.
    pub fn crash_frame_count(&self) -> u64 {
        self.frame_seq.load(Ordering::SeqCst)
    }

    /// Installs (or with `None` removes) the replication frame sink,
    /// called with `(lsn, epoch, framed bytes)` for every frame as it
    /// becomes durable — including the markers a checkpoint truncation
    /// carries into the fresh log, so a follower's LSN sequence never has
    /// holes. See [`WalFrameSink`] for the non-blocking contract.
    pub fn set_frame_sink(&self, sink: Option<WalFrameSink>) {
        *write_unpoisoned(&self.frame_sink) = sink;
    }

    /// Installs (or with `None` removes) the synchronous-replication
    /// commit gate, called with the highest LSN of each durable batch
    /// before that batch's waiters are released. See [`WalCommitGate`].
    pub fn set_commit_gate(&self, gate: Option<WalCommitGate>) {
        *write_unpoisoned(&self.commit_gate) = gate;
    }

    /// The current replication epoch (0 until a promotion ever happened).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Bumps the replication epoch and durably appends the `Epoch` record
    /// (`edna promote`). Returns the new epoch. The atomic is raised
    /// before the append so the record itself — and everything after it —
    /// ships to followers stamped with the new epoch.
    pub fn bump_epoch(&self) -> Result<u64> {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.append(&WalRecord::Epoch { epoch })?;
        Ok(epoch)
    }

    /// Follower-side append: writes an already-framed record shipped from
    /// the primary, preserving its original LSN, and fsyncs it before
    /// returning (the follower acks only durable frames). Bypasses the
    /// group-commit pipeline — a replica has exactly one applier thread —
    /// and refuses out-of-sequence LSNs, local staged frames, or an
    /// in-flight flush (a replica must not mix local commits with
    /// shipped ones).
    pub fn append_shipped(&self, lsn: u64, framed: &[u8], record: &WalRecord) -> Result<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(Error::Wal(
                "log poisoned by a crash or unrestorable append failure; reopen to recover"
                    .to_string(),
            ));
        }
        let mut group = lock_unpoisoned(&self.group);
        if !group.pending.is_empty() || group.flushing || group.aborting {
            return Err(Error::Wal(
                "cannot apply shipped frame: local commit pipeline is active".to_string(),
            ));
        }
        if lsn != group.next_lsn {
            return Err(Error::Wal(format!(
                "shipped frame out of sequence: lsn {lsn}, expected {}",
                group.next_lsn
            )));
        }
        {
            let mut state = lock_unpoisoned(&self.state);
            self.write_raw(&mut state, framed)?;
            self.sync_file(&mut state)?;
            state.good_len += framed.len() as u64;
        }
        group.next_lsn = lsn + 1;
        group.durable_lsn = lsn;
        drop(group);
        match record {
            WalRecord::DisguiseIntent { disguise_id, user } => {
                self.note_marker(&MarkerNote::Intent(*disguise_id, user.clone()));
            }
            WalRecord::DisguiseCommit { disguise_id } => {
                self.note_marker(&MarkerNote::Commit(*disguise_id));
            }
            WalRecord::PolicyRunStart { policy, now } => {
                self.note_marker(&MarkerNote::PolicyStart(policy.clone(), *now));
            }
            WalRecord::PolicyRunEnd { policy } => {
                self.note_marker(&MarkerNote::PolicyEnd(policy.clone()));
            }
            WalRecord::Epoch { epoch } => {
                self.epoch.fetch_max(*epoch, Ordering::SeqCst);
            }
            WalRecord::Txn { .. } => {}
        }
        if let Some(m) = read_unpoisoned(&self.metrics).as_ref() {
            m.frames.inc();
            m.bytes.add(framed.len() as u64);
            m.fsyncs.inc();
        }
        Ok(())
    }

    /// The last LSN assigned to a staged frame (0 if none ever was).
    /// Monotonic across checkpoints: truncation keeps the counter.
    pub fn last_lsn(&self) -> u64 {
        lock_unpoisoned(&self.group).next_lsn - 1
    }

    /// Raises the LSN counter so the next append gets at least
    /// `min_next`. A checkpoint truncates the log file but the snapshot
    /// watermark keeps the old count, so a *reopened* log (which derives
    /// its counter from the — now empty — file) must be bumped past the
    /// watermark or its fresh frames would be skipped as already
    /// checkpointed on the next replay.
    pub fn ensure_next_lsn(&self, min_next: u64) {
        let mut group = lock_unpoisoned(&self.group);
        group.next_lsn = group.next_lsn.max(min_next);
        if group.pending.is_empty() && !group.flushing {
            // Keep the rewind floor in step: a failed batch resets
            // `next_lsn` to `durable_lsn + 1`, which must never fall back
            // below the watermark the caller just raised us past — a
            // reassigned lower LSN would be skipped as already
            // checkpointed on the next replay.
            group.durable_lsn = group.durable_lsn.max(group.next_lsn - 1);
        }
    }

    /// Appends one record as a durably-flushed frame, returning its LSN:
    /// [`Wal::stage`] followed by [`Wal::wait_durable`].
    pub fn append(&self, record: &WalRecord) -> Result<u64> {
        let ticket = self.stage(record)?;
        self.wait_durable(ticket)
    }

    /// Assigns the record an LSN and queues its encoded frame for the
    /// next batch flush. Cheap (no I/O): callers may stage while holding
    /// the engine lock, release it, then [`Wal::wait_durable`] so
    /// concurrent committers share one fsync.
    pub fn stage(&self, record: &WalRecord) -> Result<WalTicket> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(Error::Wal(
                "log poisoned by a crash or unrestorable append failure; reopen to recover"
                    .to_string(),
            ));
        }
        let mut group = lock_unpoisoned(&self.group);
        if group.aborting {
            // Refusing (rather than waiting) keeps stagers that hold the
            // engine lock from deadlocking against the abort handler,
            // which needs that lock to roll the failed batch back.
            return Err(Error::Wal(
                "commit pipeline is rolling back a failed batch; retry".to_string(),
            ));
        }
        let seq = group.next_seq;
        group.next_seq += 1;
        let lsn = group.next_lsn;
        group.next_lsn = lsn + 1;
        let bytes = frame::encode_record(&encode_body(lsn, record));
        let note = match record {
            WalRecord::DisguiseIntent { disguise_id, user } => {
                Some(MarkerNote::Intent(*disguise_id, user.clone()))
            }
            WalRecord::DisguiseCommit { disguise_id } => Some(MarkerNote::Commit(*disguise_id)),
            WalRecord::PolicyRunStart { policy, now } => {
                Some(MarkerNote::PolicyStart(policy.clone(), *now))
            }
            WalRecord::PolicyRunEnd { policy } => Some(MarkerNote::PolicyEnd(policy.clone())),
            WalRecord::Txn { .. } | WalRecord::Epoch { .. } => None,
        };
        group.pending.push_back(StagedFrame {
            seq,
            lsn,
            bytes,
            note,
        });
        if group.pending.len() >= read_unpoisoned(&self.config).max_frames {
            // A dawdling leader stops accumulating the moment the batch
            // is full.
            self.group_cv.notify_all();
        }
        Ok(WalTicket { seq, lsn })
    }

    /// Blocks until the staged frame is durable (returning its LSN) or
    /// its batch failed (returning the failure). The first waiter to find
    /// the pipeline free leads the flush for everyone queued behind it.
    ///
    /// On a *real* flush failure (partial write, failed fsync) the file
    /// is truncated back to the last known-good frame boundary before any
    /// waiter is failed, so the next append continues a clean log rather
    /// than writing after torn frame bytes — which would wedge the next
    /// recovery scan at the tear and silently drop every later committed
    /// frame. Only if that restore itself fails is the log poisoned.
    pub fn wait_durable(&self, ticket: WalTicket) -> Result<u64> {
        let mut group = lock_unpoisoned(&self.group);
        loop {
            if !group.aborting {
                // Verdicts are withheld while `aborting`: the abort
                // handler must finish rolling back the victims'
                // still-visible effects before a waiter can observe the
                // failure.
                if let Some(cause) = group.aborted.remove(&ticket.seq) {
                    return Err(cause.into_error());
                }
                if group.durable_seq >= ticket.seq {
                    return Ok(ticket.lsn);
                }
                if !group.flushing {
                    // Our frame is still pending and nobody is flushing:
                    // become the leader.
                    group = self.lead(group, true);
                    continue;
                }
            }
            group = self
                .group_cv
                .wait(group)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Flushes every currently-staged frame, leading batches as needed,
    /// and returns once the pipeline is empty and quiescent. Used by
    /// checkpoints to drain in-flight commits before snapshotting.
    pub fn flush_pending(&self) -> Result<()> {
        let mut group = lock_unpoisoned(&self.group);
        loop {
            if group.flushing || group.aborting {
                group = self
                    .group_cv
                    .wait(group)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            if group.pending.is_empty() {
                return Ok(());
            }
            group = self.lead(group, false);
        }
    }

    /// Whether the commit pipeline is empty and quiescent (nothing
    /// staged, no flush in flight, no abort in progress). Only meaningful
    /// while the caller excludes new commits (e.g. holding the engine
    /// lock commits stage under).
    pub fn pipeline_idle(&self) -> bool {
        let group = lock_unpoisoned(&self.group);
        group.pending.is_empty() && !group.flushing && !group.aborting
    }

    /// Becomes the batch leader: optionally waits out the accumulation
    /// window, drains up to `max_frames` staged frames, and flushes them
    /// with one write+fsync. Called with the group lock held; returns
    /// with it reacquired. On failure the whole batch (and everything
    /// staged behind it) is aborted before waiters are woken.
    fn lead<'a>(
        &'a self,
        mut group: MutexGuard<'a, GroupState>,
        honor_delay: bool,
    ) -> MutexGuard<'a, GroupState> {
        let cfg = *read_unpoisoned(&self.config);
        // Adaptive accumulation: only dawdle when there is evidence of
        // concurrency — co-committers already queued, or the previous
        // batch carried more than one frame. A strictly solo committer
        // never waits, so single-threaded latency stays one immediate
        // fsync per commit.
        if honor_delay
            && cfg.max_delay > Duration::ZERO
            && (group.pending.len() > 1 || group.last_batch_frames > 1)
        {
            let deadline = Instant::now() + cfg.max_delay;
            while group.pending.len() < cfg.max_frames {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, _timeout) = self
                    .group_cv
                    .wait_timeout(group, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                group = g;
                if group.flushing || group.aborting || group.pending.is_empty() {
                    // The pipeline moved on while we dozed; re-evaluate.
                    return group;
                }
            }
        }
        let n = group.pending.len().min(cfg.max_frames.max(1));
        let batch: Vec<StagedFrame> = group.pending.drain(..n).collect();
        group.flushing = true;
        drop(group);

        let started = Instant::now();
        let result = self.flush_batch(&batch);
        if result.is_ok() && cfg.fsync_floor > Duration::ZERO {
            let elapsed = started.elapsed();
            if elapsed < cfg.fsync_floor {
                std::thread::sleep(cfg.fsync_floor - elapsed);
            }
        }
        if result.is_ok() {
            // Replication: ship the freshly durable frames, then hold the
            // batch at the quorum gate. Both run here — off the group
            // lock, before any waiter can observe `durable_seq` — so in
            // sync mode no commit is acknowledged before enough followers
            // acked it. The gate is bounded (it degrades to async rather
            // than wedging the pipeline).
            let epoch = self.epoch.load(Ordering::SeqCst);
            if let Some(sink) = read_unpoisoned(&self.frame_sink).clone() {
                for f in &batch {
                    sink(f.lsn, epoch, &f.bytes);
                }
            }
            if let Some(gate) = read_unpoisoned(&self.commit_gate).clone() {
                gate(batch.last().expect("batch is non-empty").lsn);
            }
        }

        let mut group = lock_unpoisoned(&self.group);
        group.flushing = false;
        group.last_batch_frames = batch.len();
        match result {
            Ok(bytes) => {
                let last = batch.last().expect("batch is non-empty");
                group.durable_seq = last.seq;
                group.durable_lsn = last.lsn;
                for f in &batch {
                    if let Some(note) = &f.note {
                        self.note_marker(note);
                    }
                }
                self.note_group_flush(batch.len(), bytes);
            }
            Err(failure) => {
                group = self.abort_batch(group, batch, failure);
            }
        }
        self.group_cv.notify_all();
        group
    }

    /// Writes one batch to the file: the crash hook is consulted per
    /// frame (before its write), frames are written in LSN order without
    /// syncing, and one fsync at the end makes the whole batch durable.
    /// Returns the bytes written on success.
    fn flush_batch(&self, batch: &[StagedFrame]) -> std::result::Result<u64, BatchFailure> {
        let mut state = lock_unpoisoned(&self.state);
        let mut written = 0u64;
        for f in batch {
            let crash = {
                let hook = read_unpoisoned(&self.crash_hook);
                hook.as_ref().and_then(|h| {
                    let index = self.frame_seq.fetch_add(1, Ordering::SeqCst);
                    h(index).map(|style| (index, style))
                })
            };
            if let Some((index, style)) = crash {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(match style {
                    WalCrash::BeforeWrite => {
                        // Nothing of this frame reaches the file, and the
                        // batch's earlier frames were never synced — the
                        // modeled crash loses them; restore the durable
                        // boundary.
                        self.restore_good_len(&mut state);
                        BatchFailure::Injected {
                            seq: f.seq,
                            index,
                            persisted_lsn: None,
                        }
                    }
                    WalCrash::TornWrite => {
                        // Half a frame reaches the file, never synced. A
                        // real crash may persist any prefix; half
                        // exercises both a torn length header and a torn
                        // body across the sweep.
                        let _ = self.write_raw(&mut state, &f.bytes[..f.bytes.len() / 2]);
                        BatchFailure::Injected {
                            seq: f.seq,
                            index,
                            persisted_lsn: None,
                        }
                    }
                    WalCrash::AfterWrite => {
                        // This frame and the batch's earlier frames all
                        // reach disk (one sync); the callers' post-append
                        // work is what dies.
                        match self
                            .write_raw(&mut state, &f.bytes)
                            .and_then(|()| self.sync_file(&mut state))
                        {
                            Ok(()) => {
                                state.good_len += written + f.bytes.len() as u64;
                                BatchFailure::Injected {
                                    seq: f.seq,
                                    index,
                                    persisted_lsn: Some(f.lsn),
                                }
                            }
                            Err(e) => {
                                self.restore_good_len(&mut state);
                                BatchFailure::Real(e)
                            }
                        }
                    }
                });
            }
            if let Err(e) = self.write_raw(&mut state, &f.bytes) {
                // The write failed (ENOSPC, EIO, …): any prefix of the
                // batch could be sitting mid-file. Restore the known-good
                // state before another flush lands after it.
                self.restore_good_len(&mut state);
                return Err(BatchFailure::Real(e));
            }
            written += f.bytes.len() as u64;
        }
        if let Err(e) = self.sync_file(&mut state) {
            // A failed fsync may still have persisted any of the writes;
            // same restore discipline.
            self.restore_good_len(&mut state);
            return Err(BatchFailure::Real(e));
        }
        state.good_len += written;
        Ok(written)
    }

    /// Fails every waiter of a dead batch (and everything staged behind
    /// it), rewinds the LSN counter to just past the durable tail, and
    /// runs the abort handler so the victims' still-visible effects are
    /// rolled back *before* any waiter observes the failure. Called with
    /// the group lock held; returns with it reacquired.
    fn abort_batch<'a>(
        &'a self,
        mut group: MutexGuard<'a, GroupState>,
        batch: Vec<StagedFrame>,
        failure: BatchFailure,
    ) -> MutexGuard<'a, GroupState> {
        group.aborting = true;
        let (crashed, msg) = match &failure {
            BatchFailure::Injected {
                seq,
                index,
                persisted_lsn,
            } => {
                if let Some(lsn) = persisted_lsn {
                    // AfterWrite left frames durable (but unacked): the
                    // rewind floor must not hand their LSNs out again.
                    group.durable_lsn = group.durable_lsn.max(*lsn);
                }
                (
                    Some(*seq),
                    format!("group commit batch killed by injected crash (frame {index})"),
                )
            }
            BatchFailure::Real(e) => (None, e.to_string()),
        };
        let mut victim_lsns = Vec::with_capacity(batch.len() + group.pending.len());
        for f in batch {
            let cause = match &failure {
                BatchFailure::Injected { index, .. } if crashed == Some(f.seq) => {
                    AbortCause::Injected(*index)
                }
                _ => AbortCause::Failed(msg.clone()),
            };
            group.aborted.insert(f.seq, cause);
            victim_lsns.push(f.lsn);
        }
        // Frames staged behind the failed batch would otherwise become
        // durable above a hole in the LSN sequence; cascade the abort.
        let trailing: Vec<StagedFrame> = group.pending.drain(..).collect();
        for f in trailing {
            group.aborted.insert(f.seq, AbortCause::Failed(msg.clone()));
            victim_lsns.push(f.lsn);
        }
        group.next_lsn = group.durable_lsn + 1;
        // No wakeup yet: waiters refuse verdicts until `aborting` clears,
        // which happens only after the handler has rolled the victims'
        // still-visible effects back.
        drop(group);
        let handler = read_unpoisoned(&self.abort_handler).clone();
        if let Some(h) = handler {
            h(&victim_lsns);
        }
        let mut group = lock_unpoisoned(&self.group);
        group.aborting = false;
        group
    }

    /// Tracks intent/commit markers when their frames reach disk so a
    /// checkpoint can carry still-open intents into the fresh log.
    fn note_marker(&self, note: &MarkerNote) {
        match note {
            MarkerNote::Intent(disguise_id, user) => {
                lock_unpoisoned(&self.open_intents).push((*disguise_id, user.clone()));
            }
            MarkerNote::Commit(disguise_id) => {
                lock_unpoisoned(&self.open_intents).retain(|(id, _)| id != disguise_id);
            }
            MarkerNote::PolicyStart(policy, now) => {
                lock_unpoisoned(&self.open_policy_runs).push((policy.clone(), *now));
            }
            MarkerNote::PolicyEnd(policy) => {
                lock_unpoisoned(&self.open_policy_runs).retain(|(name, _)| name != policy);
            }
        }
    }

    /// Feeds the metrics for one successful batch flush.
    fn note_group_flush(&self, frames: usize, bytes: u64) {
        if let Some(m) = read_unpoisoned(&self.metrics).as_ref() {
            m.frames.add(frames as u64);
            m.bytes.add(bytes);
            m.fsyncs.inc();
            m.group_commits.inc();
            m.group_size.observe_micros(frames as u64);
            m.fsyncs_saved.add(frames.saturating_sub(1) as u64);
            let fsyncs = m.fsyncs.get().max(1);
            m.frames_per_fsync
                .set(((m.frames.get().saturating_mul(1000)) / fsyncs) as i64);
        }
    }

    /// Truncates the file back to the last known-good frame boundary
    /// after a failed flush, fsyncing the truncation. If the restore
    /// itself cannot be made durable the log is poisoned instead: callers
    /// must reopen (which re-runs torn-tail truncation) before writing
    /// again.
    fn restore_good_len(&self, state: &mut WalFile) {
        // Drop the append handle; its offset may sit past the tear.
        state.file = None;
        let restore = || -> std::io::Result<()> {
            let f = std::fs::OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(false)
                .open(&self.path)?;
            f.set_len(state.good_len)?;
            f.sync_all()?;
            Ok(())
        };
        if restore().is_err() {
            self.poisoned.store(true, Ordering::SeqCst);
        }
    }

    /// Appends `bytes` to the file (no sync), opening it lazily.
    fn write_raw(&self, state: &mut WalFile, bytes: &[u8]) -> Result<()> {
        if state.file.is_none() {
            let f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
                .map_err(|e| io_err("open WAL for append", e))?;
            state.file = Some(f);
        }
        let f = state.file.as_mut().expect("just opened");
        f.write_all(bytes).map_err(|e| io_err("append WAL", e))
    }

    /// Fsyncs the append handle (no-op metrics; callers account flushes).
    fn sync_file(&self, state: &mut WalFile) -> Result<()> {
        if let Some(f) = state.file.as_mut() {
            f.sync_all().map_err(|e| io_err("fsync WAL", e))?;
        }
        Ok(())
    }

    /// Truncates the log to empty (checkpoint: the snapshot now contains
    /// every Txn frame). LSNs keep counting from where they were. Any
    /// staged-but-unflushed frames are flushed (and their waiters acked)
    /// first, and the group lock is held across the file reset so no new
    /// frame can land mid-truncation.
    ///
    /// Disguise intent markers still unmatched by a commit marker are
    /// re-appended to the fresh log (with new LSNs): they guard vault-side
    /// state that lives *outside* the snapshot, so erasing them would hide
    /// a half-applied disguise's orphaned vault entry from the next
    /// recovery.
    pub fn truncate(&self) -> Result<()> {
        let mut group = lock_unpoisoned(&self.group);
        loop {
            if group.flushing || group.aborting {
                group = self
                    .group_cv
                    .wait(group)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            if group.pending.is_empty() {
                break;
            }
            group = self.lead(group, false);
        }
        let mut state = lock_unpoisoned(&self.state);
        // Reopen from scratch so the append offset resets with the file.
        state.file = None;
        let f = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)
            .map_err(|e| io_err("open WAL for truncation", e))?;
        f.sync_all().map_err(|e| io_err("fsync WAL", e))?;
        drop(f);
        state.good_len = 0;
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut carry: Vec<WalRecord> = Vec::new();
        // A non-zero epoch must survive the truncation: the snapshot does
        // not record it, so the fresh log re-asserts it first.
        if epoch > 0 {
            carry.push(WalRecord::Epoch { epoch });
        }
        carry.extend(
            lock_unpoisoned(&self.open_intents)
                .clone()
                .into_iter()
                .map(|(disguise_id, user)| WalRecord::DisguiseIntent { disguise_id, user }),
        );
        carry.extend(
            lock_unpoisoned(&self.open_policy_runs)
                .iter()
                .map(|(policy, now)| WalRecord::PolicyRunStart {
                    policy: policy.clone(),
                    now: *now,
                }),
        );
        let sink = read_unpoisoned(&self.frame_sink).clone();
        for record in carry {
            let lsn = group.next_lsn;
            let body = encode_body(lsn, &record);
            let framed = frame::encode_record(&body);
            self.write_raw(&mut state, &framed)?;
            self.sync_file(&mut state)?;
            state.good_len += framed.len() as u64;
            group.next_lsn = lsn + 1;
            // Ship carried markers too: a follower replays them as no-ops
            // but must see every LSN, or its sequence check would reject
            // the first post-checkpoint frame.
            if let Some(sink) = &sink {
                sink(lsn, epoch, &framed);
            }
            if let Some(m) = read_unpoisoned(&self.metrics).as_ref() {
                m.frames.inc();
                m.bytes.add(framed.len() as u64);
                m.fsyncs.inc();
            }
        }
        group.durable_lsn = group.next_lsn - 1;
        Ok(())
    }

    /// The log file's current size in bytes.
    pub fn size_bytes(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }
}

// ---- record encoding --------------------------------------------------------

const KIND_TXN: u8 = 0;
const KIND_INTENT: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_POLICY_START: u8 = 3;
const KIND_POLICY_END: u8 = 4;
const KIND_EPOCH: u8 = 5;

fn encode_body(lsn: u64, record: &WalRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(lsn);
    match record {
        WalRecord::Txn { ops } => {
            w.u8(KIND_TXN);
            w.u32(ops.len() as u32);
            for op in ops {
                encode_op(&mut w, op);
            }
        }
        WalRecord::DisguiseIntent { disguise_id, user } => {
            w.u8(KIND_INTENT);
            w.u64(*disguise_id);
            w.value(user);
        }
        WalRecord::DisguiseCommit { disguise_id } => {
            w.u8(KIND_COMMIT);
            w.u64(*disguise_id);
        }
        WalRecord::PolicyRunStart { policy, now } => {
            w.u8(KIND_POLICY_START);
            w.string(policy);
            w.i64(*now);
        }
        WalRecord::PolicyRunEnd { policy } => {
            w.u8(KIND_POLICY_END);
            w.string(policy);
        }
        WalRecord::Epoch { epoch } => {
            w.u8(KIND_EPOCH);
            w.u64(*epoch);
        }
    }
    w.buf
}

fn encode_op(w: &mut Writer, op: &RedoOp) {
    match op {
        RedoOp::Insert { table, row_id, row } => {
            w.u8(0);
            w.string(table);
            w.u64(*row_id as u64);
            w.u32(row.len() as u32);
            for v in row {
                w.value(v);
            }
        }
        RedoOp::Update { table, row_id, row } => {
            w.u8(1);
            w.string(table);
            w.u64(*row_id as u64);
            w.u32(row.len() as u32);
            for v in row {
                w.value(v);
            }
        }
        RedoOp::Delete { table, row_id } => {
            w.u8(2);
            w.string(table);
            w.u64(*row_id as u64);
        }
        RedoOp::CreateTable { image } => {
            w.u8(3);
            snapshot::encode_table(w, image);
        }
        RedoOp::DropTable { name } => {
            w.u8(4);
            w.string(name);
        }
        RedoOp::AlterTable { name, image } => {
            w.u8(5);
            w.string(name);
            snapshot::encode_table(w, image);
        }
        RedoOp::CreateIndex {
            table,
            name,
            column,
            unique,
        } => {
            w.u8(6);
            w.string(table);
            w.string(name);
            w.string(column);
            w.u8(u8::from(*unique));
        }
        RedoOp::SetNextAuto { table, value } => {
            w.u8(7);
            w.string(table);
            w.i64(*value);
        }
        RedoOp::SetNow { now } => {
            w.u8(8);
            w.i64(*now);
        }
    }
}

/// Decodes one frame *body* (the checksummed frame's payload: LSN +
/// record) as shipped over a replication stream. The inverse of what
/// [`Wal::stage`] frames.
pub fn decode_frame_body(body: &[u8]) -> Result<(u64, WalRecord)> {
    decode_body(body)
}

fn decode_body(body: &[u8]) -> Result<(u64, WalRecord)> {
    let mut r = Reader::new(body);
    let bad = |m: &str| Error::Wal(format!("corrupt WAL record: {m}"));
    let lsn = r.u64().map_err(|e| bad(&e.to_string()))?;
    let kind = r.u8().map_err(|e| bad(&e.to_string()))?;
    let record = match kind {
        KIND_TXN => {
            let n = r.u32().map_err(|e| bad(&e.to_string()))? as usize;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(decode_op(&mut r).map_err(|e| bad(&e.to_string()))?);
            }
            WalRecord::Txn { ops }
        }
        KIND_INTENT => WalRecord::DisguiseIntent {
            disguise_id: r.u64().map_err(|e| bad(&e.to_string()))?,
            user: r.value().map_err(|e| bad(&e.to_string()))?,
        },
        KIND_COMMIT => WalRecord::DisguiseCommit {
            disguise_id: r.u64().map_err(|e| bad(&e.to_string()))?,
        },
        KIND_POLICY_START => WalRecord::PolicyRunStart {
            policy: r.string().map_err(|e| bad(&e.to_string()))?,
            now: r.i64().map_err(|e| bad(&e.to_string()))?,
        },
        KIND_POLICY_END => WalRecord::PolicyRunEnd {
            policy: r.string().map_err(|e| bad(&e.to_string()))?,
        },
        KIND_EPOCH => WalRecord::Epoch {
            epoch: r.u64().map_err(|e| bad(&e.to_string()))?,
        },
        k => return Err(bad(&format!("unknown record kind {k}"))),
    };
    if r.remaining() != 0 {
        return Err(bad("trailing bytes"));
    }
    Ok((lsn, record))
}

fn decode_op(r: &mut Reader<'_>) -> Result<RedoOp> {
    Ok(match r.u8()? {
        0 => {
            let table = r.string()?;
            let row_id = r.u64()? as RowId;
            let n = r.u32()? as usize;
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(r.value()?);
            }
            RedoOp::Insert { table, row_id, row }
        }
        1 => {
            let table = r.string()?;
            let row_id = r.u64()? as RowId;
            let n = r.u32()? as usize;
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(r.value()?);
            }
            RedoOp::Update { table, row_id, row }
        }
        2 => RedoOp::Delete {
            table: r.string()?,
            row_id: r.u64()? as RowId,
        },
        3 => RedoOp::CreateTable {
            image: snapshot::decode_table(r, 3)?,
        },
        4 => RedoOp::DropTable { name: r.string()? },
        5 => RedoOp::AlterTable {
            name: r.string()?,
            image: snapshot::decode_table(r, 3)?,
        },
        6 => RedoOp::CreateIndex {
            table: r.string()?,
            name: r.string()?,
            column: r.string()?,
            unique: r.u8()? != 0,
        },
        7 => RedoOp::SetNextAuto {
            table: r.string()?,
            value: r.i64()?,
        },
        8 => RedoOp::SetNow { now: r.i64()? },
        t => return Err(Error::Wal(format!("unknown redo op tag {t}"))),
    })
}

// ---- undo → redo conversion -------------------------------------------------

/// Converts a committing transaction's undo log into redo operations.
///
/// The undo log records, per operation, how to restore the *previous*
/// state; redo needs the *resulting* state. Walking the log in reverse
/// recovers each operation's after-image: the state just after op `i` is
/// whatever the nearest later op recorded as its before-image — or the
/// live (committed) state if no later op touched that row/table. The
/// emitted list is then reversed back into application order.
///
/// Redo ops are replayed physically, so interleavings that reuse a
/// row slot or table name within one transaction (insert-then-delete,
/// drop-then-recreate) are safe: each op *sets* state, and replay
/// tolerates overwriting an occupied slot.
pub(crate) fn redo_from_txn(inner: &Inner, txn: &Txn) -> Result<Vec<RedoOp>> {
    // After-images discovered so far while walking backwards. Keys are
    // lowercase table names; a `None` image means "absent at that point".
    let mut row_after: HashMap<(String, RowId), Option<Row>> = HashMap::new();
    let mut table_after: HashMap<String, Option<TableSnapshot>> = HashMap::new();
    let mut auto_after: HashMap<String, i64> = HashMap::new();
    let mut rev = Vec::with_capacity(txn.undo.len());

    // The image of `table`.`id` just after the op being visited.
    let row_at = |row_after: &HashMap<(String, RowId), Option<Row>>,
                  table_after: &HashMap<String, Option<TableSnapshot>>,
                  key: &str,
                  id: RowId|
     -> Option<Row> {
        if let Some(img) = row_after.get(&(key.to_string(), id)) {
            return img.clone();
        }
        if let Some(timg) = table_after.get(key) {
            return timg.as_ref().and_then(|t| {
                t.rows
                    .iter()
                    .find(|(rid, _)| *rid == id)
                    .map(|(_, r)| r.clone())
            });
        }
        inner.tables.get(key).and_then(|t| t.get(id)).cloned()
    };
    // The image of `table` just after the op being visited.
    let table_at = |table_after: &HashMap<String, Option<TableSnapshot>>,
                    key: &str|
     -> Option<TableSnapshot> {
        if let Some(img) = table_after.get(key) {
            return img.clone();
        }
        inner.tables.get(key).map(TableSnapshot::of)
    };

    for op in txn.undo.iter().rev() {
        match op {
            UndoOp::Inserted { table, row_id } => {
                let key = table.to_lowercase();
                let row = row_at(&row_after, &table_after, &key, *row_id)
                    .ok_or_else(|| Error::Wal(format!("no after-image for insert into {table}")))?;
                rev.push(RedoOp::Insert {
                    table: key.clone(),
                    row_id: *row_id,
                    row,
                });
                row_after.insert((key, *row_id), None);
            }
            UndoOp::Updated {
                table,
                row_id,
                old_row,
            } => {
                let key = table.to_lowercase();
                let row = row_at(&row_after, &table_after, &key, *row_id)
                    .ok_or_else(|| Error::Wal(format!("no after-image for update of {table}")))?;
                rev.push(RedoOp::Update {
                    table: key.clone(),
                    row_id: *row_id,
                    row,
                });
                row_after.insert((key, *row_id), Some(old_row.clone()));
            }
            UndoOp::Deleted { table, row_id, row } => {
                let key = table.to_lowercase();
                rev.push(RedoOp::Delete {
                    table: key.clone(),
                    row_id: *row_id,
                });
                row_after.insert((key, *row_id), Some(row.clone()));
            }
            UndoOp::CreatedTable { name } => {
                let key = name.to_lowercase();
                let image = table_at(&table_after, &key).ok_or_else(|| {
                    Error::Wal(format!("no after-image for created table {name}"))
                })?;
                rev.push(RedoOp::CreateTable { image });
                table_after.insert(key, None);
            }
            UndoOp::DroppedTable { name, table } => {
                let key = name.to_lowercase();
                rev.push(RedoOp::DropTable { name: key.clone() });
                table_after.insert(key, Some(TableSnapshot::of(table)));
            }
            UndoOp::AlteredTable { name, table } => {
                let key = name.to_lowercase();
                let image = table_at(&table_after, &key).ok_or_else(|| {
                    Error::Wal(format!("no after-image for altered table {name}"))
                })?;
                rev.push(RedoOp::AlterTable {
                    name: key.clone(),
                    image,
                });
                table_after.insert(key, Some(TableSnapshot::of(table)));
            }
            UndoOp::CreatedIndex { table, index } => {
                let key = table.to_lowercase();
                let timg = table_at(&table_after, &key).ok_or_else(|| {
                    Error::Wal(format!("no table image for index {index} on {table}"))
                })?;
                // The index definition as it existed just after creation.
                let full = inner.tables.get(&key);
                let (column, unique) = timg
                    .indexes
                    .iter()
                    .find(|(n, _, _)| n.eq_ignore_ascii_case(index))
                    .map(|(_, c, u)| (c.clone(), *u))
                    .or_else(|| {
                        full.and_then(|t| {
                            t.indexes
                                .iter()
                                .find(|ix| ix.name.eq_ignore_ascii_case(index))
                                .map(|ix| (t.schema.columns[ix.column].name.clone(), ix.unique))
                        })
                    })
                    .ok_or_else(|| {
                        Error::Wal(format!("created index {index} not found on {table}"))
                    })?;
                rev.push(RedoOp::CreateIndex {
                    table: key,
                    name: index.clone(),
                    column,
                    unique,
                });
            }
            UndoOp::AutoIncrement { table, old_value } => {
                let key = table.to_lowercase();
                let value = auto_after
                    .get(&key)
                    .copied()
                    .or_else(|| {
                        table_after
                            .get(&key)
                            .and_then(|t| t.as_ref().map(|t| t.next_auto))
                    })
                    .or_else(|| inner.tables.get(&key).map(|t| t.next_auto))
                    .ok_or_else(|| {
                        Error::Wal(format!("no after-image for auto-increment of {table}"))
                    })?;
                rev.push(RedoOp::SetNextAuto {
                    table: key.clone(),
                    value,
                });
                auto_after.insert(key, *old_value);
            }
        }
    }
    rev.reverse();
    Ok(rev)
}

// ---- replay -----------------------------------------------------------------

/// Applies one redo op to engine state, physically and idempotently: ops
/// *set* state, so replaying a frame whose effects are already present
/// (snapshot taken mid-append, double recovery) converges to the same
/// result. No constraints are re-checked — the ops describe a state that
/// passed them when it committed.
pub(crate) fn apply_op(inner: &mut Inner, op: &RedoOp) -> Result<()> {
    match op {
        RedoOp::Insert { table, row_id, row } | RedoOp::Update { table, row_id, row } => {
            let t = inner
                .tables
                .get_mut(table)
                .ok_or_else(|| Error::Wal(format!("replay into missing table {table}")))?;
            if t.get(*row_id).is_some() {
                t.replace(*row_id, row.clone());
            } else {
                t.restore_at(*row_id, row.clone());
            }
        }
        RedoOp::Delete { table, row_id } => {
            if let Some(t) = inner.tables.get_mut(table) {
                t.remove(*row_id);
            }
        }
        RedoOp::CreateTable { image } => {
            let key = image.schema.name.to_lowercase();
            let table = image.clone().into_table()?;
            if inner.tables.insert(key.clone(), table).is_none() {
                inner.table_order.push(key);
            }
        }
        RedoOp::DropTable { name } => {
            let key = name.to_lowercase();
            inner.tables.remove(&key);
            inner.table_order.retain(|k| k != &key);
        }
        RedoOp::AlterTable { name, image } => {
            let old_key = name.to_lowercase();
            let new_key = image.schema.name.to_lowercase();
            let table = image.clone().into_table()?;
            inner.tables.remove(&old_key);
            if inner.tables.insert(new_key.clone(), table).is_none() {
                match inner.table_order.iter().position(|k| k == &old_key) {
                    Some(pos) => inner.table_order[pos] = new_key,
                    None => inner.table_order.push(new_key),
                }
            }
        }
        RedoOp::CreateIndex {
            table,
            name,
            column,
            unique,
        } => {
            let t = inner
                .tables
                .get_mut(table)
                .ok_or_else(|| Error::Wal(format!("replay index onto missing table {table}")))?;
            let already = t
                .indexes
                .iter()
                .any(|ix| ix.name.eq_ignore_ascii_case(name));
            if !already {
                let pos = t.schema.require_column(column)?;
                t.add_index(name.clone(), pos, *unique)?;
            }
        }
        RedoOp::SetNextAuto { table, value } => {
            if let Some(t) = inner.tables.get_mut(table) {
                t.next_auto = *value;
            }
        }
        RedoOp::SetNow { now } => {
            inner.now = *now;
        }
    }
    Ok(())
}

/// The outcome of replaying a scanned log over a snapshot.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Txn frames whose LSN exceeded the snapshot watermark and were
    /// applied.
    pub frames_replayed: usize,
    /// Intent markers with no matching commit marker, in log order.
    pub open_intents: Vec<OpenIntent>,
    /// Policy-run start markers with no matching end marker, in log
    /// order.
    pub open_policy_runs: Vec<OpenPolicyRun>,
}

/// A report of one recovery pass (what `Workspace::open` and the
/// `edna recover` subcommand surface).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Complete frames found in the log.
    pub frames_scanned: usize,
    /// Txn frames replayed over the snapshot.
    pub frames_replayed: usize,
    /// Torn-tail bytes truncated off the log.
    pub torn_bytes: usize,
    /// The snapshot's checkpoint watermark (frames at or below it were
    /// skipped).
    pub snapshot_watermark: u64,
    /// The highest LSN in the log (equals the watermark when no replay
    /// was needed; 0 for an empty log).
    pub last_lsn: u64,
    /// Disguise intents with no matching commit marker; `edna-core`
    /// resolves each to "completed" or "undone".
    pub open_intents: Vec<OpenIntent>,
    /// Policy runs interrupted mid-tick. Benign by construction (the
    /// scheduler re-fires and resumes them), surfaced so operators can
    /// see what the crash cut short.
    pub open_policy_runs: Vec<OpenPolicyRun>,
    /// Whether a complete snapshot temp file was promoted to
    /// authoritative (crash between temp fsync and rename). Set by the
    /// caller that owns snapshot file management, not by `open_durable`.
    pub snapshot_promoted: bool,
    /// Wall-clock time recovery took.
    pub duration: Duration,
}

impl RecoveryReport {
    /// Whether recovery changed (or found suspect) anything at all.
    pub fn acted(&self) -> bool {
        self.frames_replayed > 0
            || self.torn_bytes > 0
            || !self.open_intents.is_empty()
            || self.snapshot_promoted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("edna_wal_{}_{name}", std::process::id()))
    }

    #[test]
    fn record_round_trip() {
        let ops = vec![
            RedoOp::Insert {
                table: "t".into(),
                row_id: 3,
                row: vec![Value::Int(1), Value::Text("x".into())],
            },
            RedoOp::Delete {
                table: "t".into(),
                row_id: 0,
            },
            RedoOp::SetNextAuto {
                table: "t".into(),
                value: 9,
            },
            RedoOp::SetNow { now: -5 },
        ];
        let body = encode_body(7, &WalRecord::Txn { ops });
        let (lsn, rec) = decode_body(&body).unwrap();
        assert_eq!(lsn, 7);
        let WalRecord::Txn { ops } = rec else {
            panic!("wrong kind")
        };
        assert_eq!(ops.len(), 4);
        assert!(matches!(&ops[0], RedoOp::Insert { table, row_id: 3, row }
            if table == "t" && row.len() == 2));

        let body = encode_body(
            8,
            &WalRecord::DisguiseIntent {
                disguise_id: 12,
                user: Value::Int(42),
            },
        );
        let (lsn, rec) = decode_body(&body).unwrap();
        assert_eq!(lsn, 8);
        assert!(
            matches!(rec, WalRecord::DisguiseIntent { disguise_id: 12, user }
            if user == Value::Int(42))
        );
    }

    #[test]
    fn append_scan_and_torn_tail_truncation() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, scan) = Wal::open(&path).unwrap();
            assert!(scan.records.is_empty());
            wal.append(&WalRecord::DisguiseCommit { disguise_id: 1 })
                .unwrap();
            wal.append(&WalRecord::DisguiseCommit { disguise_id: 2 })
                .unwrap();
            assert_eq!(wal.last_lsn(), 2);
        }
        // Tear the tail by appending garbage.
        let mut data = std::fs::read(&path).unwrap();
        let full = data.len();
        data.extend_from_slice(&[0xAB; 9]);
        std::fs::write(&path, &data).unwrap();
        let (wal, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 9);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full as u64);
        // LSNs continue past the recovered tail.
        let lsn = wal
            .append(&WalRecord::DisguiseCommit { disguise_id: 3 })
            .unwrap();
        assert_eq!(lsn, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_hook_styles_and_poisoning() {
        let path = tmp("crash");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 1 })
            .unwrap();
        let base = std::fs::metadata(&path).unwrap().len();

        // BeforeWrite: nothing reaches the file; the log is poisoned.
        wal.set_crash_hook(Some(Arc::new(|i| {
            (i == 0).then_some(WalCrash::BeforeWrite)
        })));
        let err = wal
            .append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap_err();
        assert_eq!(err, Error::FaultInjected(0));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), base);
        assert!(matches!(
            wal.append(&WalRecord::DisguiseCommit { disguise_id: 2 }),
            Err(Error::Wal(_))
        ));

        // TornWrite: a partial frame lands; reopen truncates it away.
        wal.set_crash_hook(Some(Arc::new(|i| (i == 0).then_some(WalCrash::TornWrite))));
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap_err();
        assert!(std::fs::metadata(&path).unwrap().len() > base);
        let (wal, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_bytes > 0);

        // AfterWrite: the frame is durable; only the caller's follow-up dies.
        wal.set_crash_hook(Some(Arc::new(|i| (i == 0).then_some(WalCrash::AfterWrite))));
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap_err();
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_append_restores_known_good_state() {
        let path = tmp("real_fail");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 1 })
            .unwrap();
        let good = std::fs::metadata(&path).unwrap().len();

        // Simulate partially-persisted frame bytes from a failed append
        // (e.g. an fsync that failed after its writes reached the file):
        // garbage past the good boundary, then a write error on the next
        // append, injected by swapping in a read-only handle.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0xEE; 7]).unwrap();
        }
        lock_unpoisoned(&wal.state).file = Some(std::fs::File::open(&path).unwrap());
        let err = wal
            .append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap_err();
        assert!(matches!(err, Error::Wal(_)), "got: {err:?}");

        // The restore truncated back to the last good frame: no torn
        // bytes remain, the log is NOT poisoned, and the next append
        // succeeds with the same LSN the failed one would have used.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
        let lsn = wal
            .append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap();
        assert_eq!(lsn, 2);
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 2, "both frames intact after reopen");
        assert_eq!(scan.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_carries_open_intents() {
        let path = tmp("carry_intents");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::DisguiseIntent {
            disguise_id: 7,
            user: Value::Int(1),
        })
        .unwrap();
        wal.append(&WalRecord::DisguiseIntent {
            disguise_id: 8,
            user: Value::Int(2),
        })
        .unwrap();
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 8 })
            .unwrap();
        wal.append(&WalRecord::Txn { ops: Vec::new() }).unwrap();
        wal.truncate().unwrap();
        // The still-open intent (7) survives the checkpoint, re-appended
        // with a fresh LSN; the matched pair (8) and the Txn frame do not.
        let (wal2, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        let (lsn, rec) = &scan.records[0];
        assert!(*lsn > 4, "re-appended intent keeps counting LSNs");
        assert!(
            matches!(rec, WalRecord::DisguiseIntent { disguise_id: 7, user }
            if *user == Value::Int(1))
        );
        // Committing it (e.g. recovery resolving the intent) then
        // checkpointing empties the log for good.
        wal2.append(&WalRecord::DisguiseCommit { disguise_id: 7 })
            .unwrap();
        wal2.truncate().unwrap();
        assert_eq!(wal2.size_bytes(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn solo_append_flushes_immediately_with_one_fsync() {
        let path = tmp("solo_fsync");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path).unwrap();
        let registry = MetricsRegistry::new();
        wal.bind_metrics(&registry);
        // Under the default group config a solo committer must not wait
        // for co-committers: one append = one immediate fsync, and the
        // frame is on disk before the call returns.
        let lsn = wal
            .append(&WalRecord::DisguiseCommit { disguise_id: 1 })
            .unwrap();
        assert_eq!(lsn, 1);
        let frames = registry.counter("edna_wal_frames_total", "").get();
        let fsyncs = registry.counter("edna_wal_fsyncs_total", "").get();
        assert_eq!(frames, 1);
        assert_eq!(fsyncs, 1, "solo commit fsyncs before returning");
        // Durable without any explicit flush/close: a fresh scan sees it.
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_batches_concurrent_appends() {
        let path = tmp("group_batch");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path).unwrap();
        let registry = MetricsRegistry::new();
        wal.bind_metrics(&registry);
        // A generous accumulation window guarantees the concurrent
        // appends below share batches regardless of scheduling.
        wal.set_group_commit(WalGroupConfig {
            max_frames: 8,
            max_delay: Duration::from_millis(250),
            fsync_floor: Duration::ZERO,
        });
        const N: u64 = 8;
        let mut lsns: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..N)
                .map(|i| {
                    let wal = &wal;
                    s.spawn(move || {
                        wal.append(&WalRecord::DisguiseCommit { disguise_id: i })
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        lsns.sort_unstable();
        assert_eq!(
            lsns,
            (1..=N).collect::<Vec<_>>(),
            "distinct contiguous LSNs"
        );
        let frames = registry.counter("edna_wal_frames_total", "").get();
        let fsyncs = registry.counter("edna_wal_fsyncs_total", "").get();
        let saved = registry
            .counter("edna_wal_group_fsyncs_saved_total", "")
            .get();
        assert_eq!(frames, N);
        assert!(
            fsyncs < N,
            "{N} concurrent appends must share fsyncs, got {fsyncs}"
        );
        assert_eq!(saved, N - fsyncs, "every saved fsync is accounted");
        // Every acked frame is durable and well-formed.
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), N as usize);
        assert_eq!(scan.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_batch_flush_fails_every_waiter_and_restores() {
        let path = tmp("batch_fail");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 1 })
            .unwrap();
        let good = std::fs::metadata(&path).unwrap().len();

        // Stage a whole batch, then make the file handle unwritable so
        // the flush dies with a real I/O error.
        let t1 = wal
            .stage(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap();
        let t2 = wal
            .stage(&WalRecord::DisguiseCommit { disguise_id: 3 })
            .unwrap();
        let t3 = wal.stage(&WalRecord::Txn { ops: Vec::new() }).unwrap();
        assert_eq!((t1.lsn, t2.lsn, t3.lsn), (2, 3, 4));
        lock_unpoisoned(&wal.state).file = Some(std::fs::File::open(&path).unwrap());
        wal.flush_pending().unwrap();
        // Every waiter in the dead batch fails; none hang.
        for t in [t1, t2, t3] {
            assert!(matches!(wal.wait_durable(t), Err(Error::Wal(_))));
        }
        // File restored to the durable boundary, log not poisoned, and
        // the LSN counter rewound: the retry reuses LSN 2.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
        let lsn = wal
            .append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap();
        assert_eq!(lsn, 2);
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn policy_run_markers_round_trip_and_carry_across_truncation() {
        // Encode/decode of the new marker kinds.
        let body = encode_body(
            5,
            &WalRecord::PolicyRunStart {
                policy: "aging".into(),
                now: 1_234,
            },
        );
        let (lsn, rec) = decode_body(&body).unwrap();
        assert_eq!(lsn, 5);
        assert!(
            matches!(rec, WalRecord::PolicyRunStart { ref policy, now: 1_234 }
            if policy == "aging")
        );
        let body = encode_body(
            6,
            &WalRecord::PolicyRunEnd {
                policy: "aging".into(),
            },
        );
        let (_, rec) = decode_body(&body).unwrap();
        assert!(matches!(rec, WalRecord::PolicyRunEnd { ref policy } if policy == "aging"));

        let path = tmp("policy_markers");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path).unwrap();
            // A completed run: start matched by end — not open.
            wal.append(&WalRecord::PolicyRunStart {
                policy: "done".into(),
                now: 10,
            })
            .unwrap();
            wal.append(&WalRecord::PolicyRunEnd {
                policy: "done".into(),
            })
            .unwrap();
            // An interrupted run: start with no end — open.
            wal.append(&WalRecord::PolicyRunStart {
                policy: "cut".into(),
                now: 20,
            })
            .unwrap();
        }
        // A fresh scan rebuilds the open set: only the unmatched start.
        let (wal, _) = Wal::open(&path).unwrap();
        assert_eq!(
            *lock_unpoisoned(&wal.open_policy_runs),
            vec![("cut".to_string(), 20)]
        );
        // Checkpoint truncation must carry the open marker, exactly like
        // an open disguise intent: a crash after the checkpoint still
        // knows the run was in flight.
        wal.truncate().unwrap();
        let (wal, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 1, "carried start marker survives");
        assert_eq!(
            *lock_unpoisoned(&wal.open_policy_runs),
            vec![("cut".to_string(), 20)]
        );
        // The resumed run's end marker closes it; the next checkpoint
        // drops the bracket entirely.
        wal.append(&WalRecord::PolicyRunEnd {
            policy: "cut".into(),
        })
        .unwrap();
        assert!(lock_unpoisoned(&wal.open_policy_runs).is_empty());
        wal.truncate().unwrap();
        let (_, scan) = Wal::open(&path).unwrap();
        assert!(scan.records.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_keeps_lsn_counter() {
        let path = tmp("truncate");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::DisguiseCommit { disguise_id: 1 })
            .unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.size_bytes(), 0);
        let lsn = wal
            .append(&WalRecord::DisguiseCommit { disguise_id: 2 })
            .unwrap();
        assert_eq!(lsn, 2, "LSNs must not reset at checkpoint");
        std::fs::remove_file(&path).unwrap();
    }
}
