//! SQL tokenizer.
//!
//! Produces a flat [`Token`] stream consumed by [`crate::parser`]. Keywords
//! are recognized case-insensitively; identifiers may be back-quoted or
//! double-quoted to escape keywords.

use crate::error::{Error, Result};

/// One lexical token, with its byte offset for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// Byte offset in the source where the token starts.
    pub offset: usize,
}

/// Token payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted word that is not a known keyword, or quoted identifier.
    Ident(String),
    /// Recognized SQL keyword (stored uppercased).
    Keyword(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// Hex blob literal `X'AB'` (decoded).
    Blob(Vec<u8>),
    /// `$name` parameter reference.
    Param(String),
    /// Punctuation or operator: `( ) , . ; * = != <> < <= > >= + - / %  ||`.
    Sym(&'static str),
}

const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "TABLE",
    "INDEX",
    "UNIQUE",
    "PRIMARY",
    "KEY",
    "FOREIGN",
    "REFERENCES",
    "NOT",
    "NULL",
    "AND",
    "OR",
    "IN",
    "IS",
    "LIKE",
    "BETWEEN",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "DEFAULT",
    "AUTO_INCREMENT",
    "ON",
    "CASCADE",
    "RESTRICT",
    "DROP",
    "IF",
    "EXISTS",
    "BEGIN",
    "COMMIT",
    "ROLLBACK",
    "TRUE",
    "FALSE",
    "JOIN",
    "INNER",
    "LEFT",
    "OUTER",
    "AS",
    "DISTINCT",
    "GROUP",
    "HAVING",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "TRANSACTION",
    "ALTER",
    "ADD",
    "COLUMN",
    "RENAME",
    "TO",
    "PII",
];

/// Tokenizes `src` into a vector of [`Token`]s.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment.
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(Error::Lex {
                        position: start,
                        message: "unterminated block comment".to_string(),
                    });
                }
                i += 2;
            }
            '\'' => {
                let (s, next) = lex_quoted(src, i, '\'')?;
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
                i = next;
            }
            '`' | '"' => {
                let (s, next) = lex_quoted(src, i, c)?;
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    offset: start,
                });
                i = next;
            }
            '$' => {
                i += 1;
                let mut name = String::new();
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    name.push(bytes[i] as char);
                    i += 1;
                }
                if name.is_empty() {
                    return Err(Error::Lex {
                        position: start,
                        message: "empty parameter name after '$'".to_string(),
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Param(name),
                    offset: start,
                });
            }
            '0'..='9' => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() {
                    match bytes[end] {
                        b'0'..=b'9' => end += 1,
                        b'.' if !is_float
                            && end + 1 < bytes.len()
                            && bytes[end + 1].is_ascii_digit() =>
                        {
                            is_float = true;
                            end += 1;
                        }
                        b'e' | b'E'
                            if end + 1 < bytes.len()
                                && (bytes[end + 1].is_ascii_digit()
                                    || bytes[end + 1] == b'-'
                                    || bytes[end + 1] == b'+') =>
                        {
                            is_float = true;
                            end += 2;
                        }
                        _ => break,
                    }
                }
                let text = &src[i..end];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| Error::Lex {
                        position: start,
                        message: format!("bad float literal: {text}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| Error::Lex {
                        position: start,
                        message: format!("bad int literal: {text}"),
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = end;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut end = i;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                let word = &src[i..end];
                // `X'AB'` hex blob literal.
                if (word == "X" || word == "x") && bytes.get(end) == Some(&b'\'') {
                    let (hex, next) = lex_quoted(src, end, '\'')?;
                    let blob = decode_hex(&hex).ok_or(Error::Lex {
                        position: start,
                        message: format!("bad hex blob literal: X'{hex}'"),
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Blob(blob),
                        offset: start,
                    });
                    i = next;
                    continue;
                }
                let upper = word.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(word.to_string())
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = end;
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let sym: Option<(&'static str, usize)> = match two {
                    "!=" => Some(("!=", 2)),
                    "<>" => Some(("!=", 2)),
                    "<=" => Some(("<=", 2)),
                    ">=" => Some((">=", 2)),
                    "||" => Some(("||", 2)),
                    _ => match c {
                        '(' => Some(("(", 1)),
                        ')' => Some((")", 1)),
                        ',' => Some((",", 1)),
                        '.' => Some((".", 1)),
                        ';' => Some((";", 1)),
                        '*' => Some(("*", 1)),
                        '=' => Some(("=", 1)),
                        '<' => Some(("<", 1)),
                        '>' => Some((">", 1)),
                        '+' => Some(("+", 1)),
                        '-' => Some(("-", 1)),
                        '/' => Some(("/", 1)),
                        '%' => Some(("%", 1)),
                        _ => None,
                    },
                };
                match sym {
                    Some((s, len)) => {
                        tokens.push(Token {
                            kind: TokenKind::Sym(s),
                            offset: start,
                        });
                        i += len;
                    }
                    None => {
                        return Err(Error::Lex {
                            position: start,
                            message: format!("unexpected character {c:?}"),
                        })
                    }
                }
            }
        }
    }
    Ok(tokens)
}

/// Lexes a quoted run starting at the opening quote; returns the unescaped
/// contents and the index just past the closing quote. A doubled quote
/// escapes itself.
fn lex_quoted(src: &str, start: usize, quote: char) -> Result<(String, usize)> {
    let bytes = src.as_bytes();
    let q = quote as u8;
    debug_assert_eq!(bytes[start], q);
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == q {
            if bytes.get(i + 1) == Some(&q) {
                out.push(quote);
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Copy one UTF-8 scalar.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&src[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(Error::Lex {
        position: start,
        message: format!("unterminated {quote} quote"),
    })
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select() {
        let k = kinds("SELECT * FROM t WHERE a = 1");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Sym("*"),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Keyword("WHERE".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Sym("="),
                TokenKind::Int(1),
            ]
        );
    }

    #[test]
    fn string_escaping_and_params() {
        let k = kinds("'O''Brien' $UID");
        assert_eq!(
            k,
            vec![
                TokenKind::Str("O'Brien".into()),
                TokenKind::Param("UID".into())
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("a -- comment\n /* block */ b");
        assert_eq!(
            k,
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into())]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 4.5 1e3"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(4.5),
                TokenKind::Float(1000.0),
            ]
        );
    }

    #[test]
    fn hex_blob() {
        assert_eq!(kinds("X'DEAD'"), vec![TokenKind::Blob(vec![0xde, 0xad])]);
        assert!(lex("X'BAD'").is_err());
    }

    #[test]
    fn neq_aliases() {
        assert_eq!(kinds("a <> b"), kinds("a != b"));
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn quoted_identifiers_escape_keywords() {
        assert_eq!(kinds("`select`"), vec![TokenKind::Ident("select".into())]);
        assert_eq!(kinds("\"from\""), vec![TokenKind::Ident("from".into())]);
    }
}
