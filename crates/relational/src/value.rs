//! SQL values and data types.
//!
//! [`Value`] is the engine's dynamically typed cell value. Comparisons follow
//! SQL three-valued logic where NULL is involved (see [`Value::sql_eq`] and
//! [`Value::sql_cmp`]); a separate *total* order ([`Value::total_cmp`]) is
//! used for index keys and ORDER BY so that NULLs and mixed types sort
//! deterministically.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// 64-bit IEEE float (`FLOAT`, `DOUBLE`, `REAL`).
    Float,
    /// UTF-8 string (`TEXT`, `VARCHAR(n)` — length is not enforced).
    Text,
    /// Boolean (`BOOL`, `BOOLEAN`).
    Bool,
    /// Raw bytes (`BLOB`).
    Bytes,
}

impl DataType {
    /// Parses a SQL type name, ignoring any length suffix.
    pub fn from_sql_name(name: &str) -> Option<DataType> {
        let base = name.split('(').next().unwrap_or(name).trim();
        match base.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" | "MEDIUMINT" | "TIMESTAMP"
            | "DATETIME" => Some(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => Some(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "MEDIUMTEXT" | "LONGTEXT" | "VARBINARY" => {
                Some(DataType::Text)
            }
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            "BLOB" | "BYTES" | "LONGBLOB" => Some(DataType::Bytes),
            _ => None,
        }
    }

    /// The canonical SQL name of this type.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Bytes => "BLOB",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A dynamically typed SQL cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Byte string.
    Bytes(Vec<u8>),
}

impl Value {
    /// Returns `true` if this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The runtime [`DataType`] of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Bytes(_) => Some(DataType::Bytes),
        }
    }

    /// Coerces this value to the given column type, if a lossless or
    /// conventional SQL coercion exists (e.g. `Int` → `Float`, `Bool` → `Int`).
    pub fn coerce_to(&self, ty: DataType) -> Result<Value> {
        let mismatch = |found: &Value| Error::TypeMismatch {
            expected: ty.sql_name().to_string(),
            found: found
                .data_type()
                .map(|t| t.sql_name().to_string())
                .unwrap_or_else(|| "NULL".to_string()),
        };
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(i), DataType::Int) => Ok(Value::Int(*i)),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Int(i), DataType::Bool) => Ok(Value::Bool(*i != 0)),
            (Value::Int(i), DataType::Text) => Ok(Value::Text(i.to_string())),
            (Value::Float(x), DataType::Float) => Ok(Value::Float(*x)),
            (Value::Float(x), DataType::Int) if x.fract() == 0.0 => Ok(Value::Int(*x as i64)),
            (Value::Bool(b), DataType::Bool) => Ok(Value::Bool(*b)),
            (Value::Bool(b), DataType::Int) => Ok(Value::Int(i64::from(*b))),
            (Value::Text(s), DataType::Text) => Ok(Value::Text(s.clone())),
            (Value::Text(s), DataType::Int) => {
                s.parse::<i64>().map(Value::Int).map_err(|_| mismatch(self))
            }
            (Value::Text(s), DataType::Float) => s
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| mismatch(self)),
            (Value::Bytes(b), DataType::Bytes) => Ok(Value::Bytes(b.clone())),
            (v, _) => Err(mismatch(v)),
        }
    }

    /// SQL equality: returns `None` if either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Bool(a), Value::Int(b)) | (Value::Int(b), Value::Bool(a)) => {
                i64::from(*a) == *b
            }
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            _ => false,
        })
    }

    /// SQL ordering comparison: returns `None` if either side is NULL or the
    /// types are not comparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Bytes(a), Value::Bytes(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// A *total* order over all values, used for index keys and ORDER BY.
    ///
    /// NULL sorts first, then booleans, numbers (ints and floats mixed),
    /// text, and bytes. NaN sorts after all other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
                Value::Bytes(_) => 4,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            _ => Ordering::Equal,
        }
    }

    /// Renders this value as a SQL literal (strings quoted and escaped).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    format!("{x:.1}")
                } else {
                    format!("{x}")
                }
            }
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Bytes(b) => {
                let mut out = String::with_capacity(b.len() * 2 + 3);
                out.push_str("X'");
                for byte in b {
                    out.push_str(&format!("{byte:02X}"));
                }
                out.push('\'');
                out
            }
        }
    }

    /// Extracts an `i64`, coercing bools; errors on other types.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(i64::from(*b)),
            other => Err(Error::TypeMismatch {
                expected: "INT".to_string(),
                found: other
                    .data_type()
                    .map(|t| t.sql_name().to_string())
                    .unwrap_or_else(|| "NULL".to_string()),
            }),
        }
    }

    /// Extracts a `&str`; errors on non-text values.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(Error::TypeMismatch {
                expected: "TEXT".to_string(),
                found: other
                    .data_type()
                    .map(|t| t.sql_name().to_string())
                    .unwrap_or_else(|| "NULL".to_string()),
            }),
        }
    }

    /// Extracts a `bool` using SQL truthiness (nonzero ints are true).
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Int(i) => Ok(*i != 0),
            other => Err(Error::TypeMismatch {
                expected: "BOOL".to_string(),
                found: other
                    .data_type()
                    .map(|t| t.sql_name().to_string())
                    .unwrap_or_else(|| "NULL".to_string()),
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

/// A stored row: one [`Value`] per schema column, in schema order.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_sql_eq() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Float(3.0).sql_eq(&Value::Int(3)), Some(true));
    }

    #[test]
    fn total_order_ranks_null_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(
            Value::Text("a".into()).total_cmp(&Value::Int(9)),
            Ordering::Greater
        );
    }

    #[test]
    fn literal_round_trip_escaping() {
        assert_eq!(Value::Text("O'Brien".into()).to_sql_literal(), "'O''Brien'");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Bytes(vec![0xde, 0xad]).to_sql_literal(), "X'DEAD'");
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Int(1).coerce_to(DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::Text("42".into()).coerce_to(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert!(Value::Text("x".into()).coerce_to(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce_to(DataType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn type_parsing_ignores_length() {
        assert_eq!(
            DataType::from_sql_name("VARCHAR(255)"),
            Some(DataType::Text)
        );
        assert_eq!(DataType::from_sql_name("int"), Some(DataType::Int));
        assert_eq!(DataType::from_sql_name("weird"), None);
    }
}
